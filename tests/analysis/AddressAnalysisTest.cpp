//===- tests/analysis/AddressAnalysisTest.cpp - SCEV-lite tests ----------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "analysis/AddressAnalysis.h"

#include "ir/BasicBlock.h"
#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/Module.h"
#include "parser/Parser.h"

#include <gtest/gtest.h>

using namespace lslp;

namespace {

/// Parses a function and returns the instruction defining %<name>.
struct ParsedFn {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = nullptr;

  explicit ParsedFn(const char *Src) {
    M = parseModuleOrDie(Src, Ctx);
    F = M->functions().front().get();
  }

  Instruction *get(const std::string &Name) {
    for (const auto &BB : *F)
      for (const auto &I : *BB)
        if (I->getName() == Name)
          return I.get();
    return nullptr;
  }
};

TEST(AddressAnalysis, ConstantIndexDecomposition) {
  ParsedFn P(R"(
global @A = [64 x i64]
define void @f() {
entry:
  %p = gep i64, ptr @A, i64 5
  %v = load i64, ptr %p
  ret void
}
)");
  AddressDescriptor D =
      decomposePointer(cast<LoadInst>(P.get("v"))->getPointerOperand());
  ASSERT_TRUE(D.isValid());
  EXPECT_EQ(D.Base, P.M->getGlobal("A"));
  EXPECT_EQ(D.ConstBytes, 40);
  EXPECT_TRUE(D.Terms.empty());
}

TEST(AddressAnalysis, SymbolicAffineIndex) {
  ParsedFn P(R"(
global @A = [64 x i64]
define void @f(i64 %i) {
entry:
  %i2 = mul i64 %i, 2
  %i2p3 = add i64 %i2, 3
  %p = gep i64, ptr @A, i64 %i2p3
  %v = load i64, ptr %p
  ret void
}
)");
  AddressDescriptor D =
      decomposePointer(cast<LoadInst>(P.get("v"))->getPointerOperand());
  ASSERT_TRUE(D.isValid());
  EXPECT_EQ(D.ConstBytes, 24); // 3 elements * 8 bytes.
  ASSERT_EQ(D.Terms.size(), 1u);
  EXPECT_EQ(D.Terms.begin()->second, 16); // 2 * 8 bytes per unit of %i.
}

TEST(AddressAnalysis, ShlAndSubIndices) {
  ParsedFn P(R"(
global @A = [256 x i64]
define void @f(i64 %i) {
entry:
  %i4 = shl i64 %i, 2
  %idx = sub i64 %i4, 1
  %p = gep i64, ptr @A, i64 %idx
  %v = load i64, ptr %p
  ret void
}
)");
  AddressDescriptor D =
      decomposePointer(cast<LoadInst>(P.get("v"))->getPointerOperand());
  ASSERT_TRUE(D.isValid());
  EXPECT_EQ(D.ConstBytes, -8);
  ASSERT_EQ(D.Terms.size(), 1u);
  EXPECT_EQ(D.Terms.begin()->second, 32); // (i << 2) * 8.
}

TEST(AddressAnalysis, NestedGepChains) {
  ParsedFn P(R"(
global @A = [64 x i64]
define void @f(i64 %i) {
entry:
  %p1 = gep i64, ptr @A, i64 %i
  %p2 = gep i64, ptr %p1, i64 3
  %v = load i64, ptr %p2
  ret void
}
)");
  AddressDescriptor D =
      decomposePointer(cast<LoadInst>(P.get("v"))->getPointerOperand());
  ASSERT_TRUE(D.isValid());
  EXPECT_EQ(D.Base, P.M->getGlobal("A"));
  EXPECT_EQ(D.ConstBytes, 24);
  EXPECT_EQ(D.Terms.size(), 1u);
}

TEST(AddressAnalysis, CancellingSymbolicTerms) {
  ParsedFn P(R"(
global @A = [64 x i64]
define void @f(i64 %i) {
entry:
  %neg = sub i64 7, %i
  %sum = add i64 %neg, %i
  %p = gep i64, ptr @A, i64 %sum
  %v = load i64, ptr %p
  ret void
}
)");
  AddressDescriptor D =
      decomposePointer(cast<LoadInst>(P.get("v"))->getPointerOperand());
  ASSERT_TRUE(D.isValid());
  // (7 - i) + i == 7: symbolic terms cancel exactly.
  EXPECT_EQ(D.ConstBytes, 56);
  EXPECT_TRUE(D.Terms.empty());
}

TEST(AddressAnalysis, ConsecutiveDetection) {
  ParsedFn P(R"(
global @A = [64 x i64]
define void @f(i64 %i) {
entry:
  %i1 = add i64 %i, 1
  %i2 = add i64 %i, 2
  %p0 = gep i64, ptr @A, i64 %i
  %p1 = gep i64, ptr @A, i64 %i1
  %p2 = gep i64, ptr @A, i64 %i2
  %v0 = load i64, ptr %p0
  %v1 = load i64, ptr %p1
  %v2 = load i64, ptr %p2
  ret void
}
)");
  Instruction *V0 = P.get("v0"), *V1 = P.get("v1"), *V2 = P.get("v2");
  EXPECT_TRUE(areConsecutiveAccesses(V0, V1));
  EXPECT_TRUE(areConsecutiveAccesses(V1, V2));
  EXPECT_FALSE(areConsecutiveAccesses(V0, V2)); // Distance 2 elements.
  EXPECT_FALSE(areConsecutiveAccesses(V1, V0)); // Wrong direction.
  EXPECT_EQ(byteDistance(V0, V2), std::optional<int64_t>(16));
  EXPECT_EQ(byteDistance(V2, V0), std::optional<int64_t>(-16));
}

TEST(AddressAnalysis, DifferentBasesHaveNoDistance) {
  ParsedFn P(R"(
global @A = [64 x i64]
global @B = [64 x i64]
define void @f(i64 %i) {
entry:
  %pa = gep i64, ptr @A, i64 %i
  %pb = gep i64, ptr @B, i64 %i
  %va = load i64, ptr %pa
  %vb = load i64, ptr %pb
  ret void
}
)");
  EXPECT_EQ(byteDistance(P.get("va"), P.get("vb")), std::nullopt);
  EXPECT_FALSE(areConsecutiveAccesses(P.get("va"), P.get("vb")));
}

TEST(AddressAnalysis, DifferentSymbolicTermsHaveNoDistance) {
  ParsedFn P(R"(
global @A = [64 x i64]
define void @f(i64 %i, i64 %j) {
entry:
  %pi = gep i64, ptr @A, i64 %i
  %pj = gep i64, ptr @A, i64 %j
  %vi = load i64, ptr %pi
  %vj = load i64, ptr %pj
  ret void
}
)");
  EXPECT_EQ(byteDistance(P.get("vi"), P.get("vj")), std::nullopt);
}

TEST(AddressAnalysis, MixedAccessTypesNotConsecutive) {
  ParsedFn P(R"(
global @A = [64 x i64]
define void @f(i64 %i) {
entry:
  %i1 = add i64 %i, 1
  %p0 = gep i64, ptr @A, i64 %i
  %p1 = gep i64, ptr @A, i64 %i1
  %v0 = load i64, ptr %p0
  store i64 %v0, ptr %p1
  ret void
}
)");
  Instruction *Load = P.get("v0");
  Instruction *Store = nullptr;
  for (const auto &I : *P.F->getEntryBlock())
    if (isa<StoreInst>(I.get()))
      Store = I.get();
  ASSERT_NE(Store, nullptr);
  // Same addresses pattern but different instruction kinds: not a chain.
  EXPECT_FALSE(areConsecutiveAccesses(Load, Store));
}

TEST(AddressAnalysis, NonMemoryInstructionsHaveNoPointer) {
  ParsedFn P(R"(
define void @f(i64 %i) {
entry:
  %x = add i64 %i, 1
  ret void
}
)");
  EXPECT_EQ(getPointerOperand(P.get("x")), nullptr);
  EXPECT_EQ(getMemAccessType(P.get("x")), nullptr);
}

TEST(AddressAnalysis, FloatElementStride) {
  ParsedFn P(R"(
global @F = [64 x float]
define void @f(i64 %i) {
entry:
  %i1 = add i64 %i, 1
  %p0 = gep float, ptr @F, i64 %i
  %p1 = gep float, ptr @F, i64 %i1
  %v0 = load float, ptr %p0
  %v1 = load float, ptr %p1
  ret void
}
)");
  // Stride equals the 4-byte float size.
  EXPECT_EQ(byteDistance(P.get("v0"), P.get("v1")),
            std::optional<int64_t>(4));
  EXPECT_TRUE(areConsecutiveAccesses(P.get("v0"), P.get("v1")));
}

} // namespace
