//===- tests/ir/TypeTest.cpp - Type system tests ------------------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ir/Constants.h"
#include "ir/Context.h"
#include "ir/Type.h"

#include <gtest/gtest.h>

using namespace lslp;

namespace {

TEST(Type, IntegerUniquing) {
  Context Ctx;
  EXPECT_EQ(Ctx.getIntTy(64), Ctx.getIntTy(64));
  EXPECT_EQ(Ctx.getInt64Ty(), Ctx.getIntTy(64));
  EXPECT_NE(Ctx.getIntTy(32), Ctx.getIntTy(64));
}

TEST(Type, VectorUniquing) {
  Context Ctx;
  VectorType *V1 = Ctx.getVectorTy(Ctx.getInt64Ty(), 4);
  VectorType *V2 = Ctx.getVectorTy(Ctx.getInt64Ty(), 4);
  EXPECT_EQ(V1, V2);
  EXPECT_NE(V1, Ctx.getVectorTy(Ctx.getInt64Ty(), 2));
  EXPECT_NE(V1, Ctx.getVectorTy(Ctx.getInt32Ty(), 4));
}

TEST(Type, Predicates) {
  Context Ctx;
  EXPECT_TRUE(Ctx.getVoidTy()->isVoidTy());
  EXPECT_TRUE(Ctx.getInt1Ty()->isIntegerTy());
  EXPECT_TRUE(Ctx.getFloatTy()->isFloatingPointTy());
  EXPECT_TRUE(Ctx.getDoubleTy()->isFloatingPointTy());
  EXPECT_TRUE(Ctx.getPtrTy()->isPointerTy());
  EXPECT_TRUE(Ctx.getVectorTy(Ctx.getDoubleTy(), 2)->isVectorTy());
  EXPECT_FALSE(Ctx.getVoidTy()->isFirstClassTy());
  EXPECT_FALSE(Ctx.getLabelTy()->isFirstClassTy());
  EXPECT_TRUE(Ctx.getInt64Ty()->isFirstClassTy());
}

TEST(Type, Sizes) {
  Context Ctx;
  EXPECT_EQ(Ctx.getInt1Ty()->getSizeInBytes(), 1u);
  EXPECT_EQ(Ctx.getInt8Ty()->getSizeInBytes(), 1u);
  EXPECT_EQ(Ctx.getIntTy(12)->getSizeInBytes(), 2u);
  EXPECT_EQ(Ctx.getInt32Ty()->getSizeInBytes(), 4u);
  EXPECT_EQ(Ctx.getInt64Ty()->getSizeInBytes(), 8u);
  EXPECT_EQ(Ctx.getFloatTy()->getSizeInBytes(), 4u);
  EXPECT_EQ(Ctx.getDoubleTy()->getSizeInBytes(), 8u);
  EXPECT_EQ(Ctx.getPtrTy()->getSizeInBytes(), 8u);
  EXPECT_EQ(Ctx.getVectorTy(Ctx.getInt64Ty(), 4)->getSizeInBytes(), 32u);
  EXPECT_EQ(Ctx.getVectorTy(Ctx.getFloatTy(), 8)->getSizeInBytes(), 32u);
}

TEST(Type, Names) {
  Context Ctx;
  EXPECT_EQ(Ctx.getVoidTy()->getName(), "void");
  EXPECT_EQ(Ctx.getInt64Ty()->getName(), "i64");
  EXPECT_EQ(Ctx.getIntTy(17)->getName(), "i17");
  EXPECT_EQ(Ctx.getFloatTy()->getName(), "float");
  EXPECT_EQ(Ctx.getDoubleTy()->getName(), "double");
  EXPECT_EQ(Ctx.getPtrTy()->getName(), "ptr");
  EXPECT_EQ(Ctx.getVectorTy(Ctx.getDoubleTy(), 4)->getName(),
            "<4 x double>");
}

TEST(Type, ScalarType) {
  Context Ctx;
  Type *I64 = Ctx.getInt64Ty();
  EXPECT_EQ(I64->getScalarType(), I64);
  EXPECT_EQ(Ctx.getVectorTy(I64, 2)->getScalarType(), I64);
}

TEST(Type, CastingHierarchy) {
  Context Ctx;
  Type *Ty = Ctx.getVectorTy(Ctx.getInt32Ty(), 4);
  auto *VT = dyn_cast<VectorType>(Ty);
  ASSERT_NE(VT, nullptr);
  EXPECT_EQ(VT->getNumElements(), 4u);
  EXPECT_EQ(VT->getElementType(), Ctx.getInt32Ty());
  EXPECT_EQ(dyn_cast<IntegerType>(Ty), nullptr);
  auto *IT = dyn_cast<IntegerType>(VT->getElementType());
  ASSERT_NE(IT, nullptr);
  EXPECT_EQ(IT->getBitWidth(), 32u);
}

TEST(Constants, IntegerUniquingAndTruncation) {
  Context Ctx;
  EXPECT_EQ(Ctx.getInt64(5), Ctx.getInt64(5));
  EXPECT_NE(Ctx.getInt64(5), Ctx.getInt64(6));
  // Truncation to the type width happens at creation.
  ConstantInt *C = Ctx.getConstantInt(Ctx.getInt8Ty(), 0x1FF);
  EXPECT_EQ(C->getZExtValue(), 0xFFu);
  EXPECT_EQ(C, Ctx.getConstantInt(Ctx.getInt8Ty(), 0xFF));
}

TEST(Constants, SignExtension) {
  Context Ctx;
  ConstantInt *C = Ctx.getConstantInt(Ctx.getInt8Ty(), 0x80);
  EXPECT_EQ(C->getSExtValue(), -128);
  EXPECT_EQ(Ctx.getInt64(~uint64_t(0))->getSExtValue(), -1);
  EXPECT_EQ(Ctx.getInt1(true)->getSExtValue(), -1);
}

TEST(Constants, FPUniquingAndFloatRounding) {
  Context Ctx;
  EXPECT_EQ(Ctx.getConstantFP(Ctx.getDoubleTy(), 1.5),
            Ctx.getConstantFP(Ctx.getDoubleTy(), 1.5));
  // Float-typed constants canonicalize to float precision.
  ConstantFP *F = Ctx.getConstantFP(Ctx.getFloatTy(), 0.1);
  EXPECT_EQ(F->getValue(), double(float(0.1)));
}

TEST(Constants, UndefPerType) {
  Context Ctx;
  EXPECT_EQ(Ctx.getUndef(Ctx.getInt64Ty()), Ctx.getUndef(Ctx.getInt64Ty()));
  EXPECT_NE(Ctx.getUndef(Ctx.getInt64Ty()),
            Ctx.getUndef(Ctx.getDoubleTy()));
}

TEST(Constants, ConstantVector) {
  Context Ctx;
  std::vector<Constant *> Elems = {Ctx.getInt64(1), Ctx.getInt64(2)};
  ConstantVector *CV = Ctx.getConstantVector(Elems);
  EXPECT_EQ(CV->getNumElements(), 2u);
  EXPECT_EQ(CV->getType(), Ctx.getVectorTy(Ctx.getInt64Ty(), 2));
  EXPECT_EQ(CV, Ctx.getConstantVector(Elems));
  EXPECT_NE(CV, Ctx.getConstantVector({Ctx.getInt64(2), Ctx.getInt64(1)}));
  EXPECT_TRUE(isa<Constant>(CV));
}

} // namespace
