//===- tests/ir/VerifierTest.cpp - IR verifier tests ---------------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ir/BasicBlock.h"
#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "ir/Verifier.h"
#include "parser/Parser.h"

#include <gtest/gtest.h>

using namespace lslp;

namespace {

bool verifyIR(const char *Src) {
  Context Ctx;
  auto M = parseModuleOrDie(Src, Ctx);
  std::vector<std::string> Errors;
  return verifyModule(*M, &Errors);
}

TEST(Verifier, AcceptsWellFormedLoop) {
  EXPECT_TRUE(verifyIR(R"(
global @A = [16 x i64]
define void @f(i64 %n) {
entry:
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %next, %loop ]
  %p = gep i64, ptr @A, i64 %i
  %v = load i64, ptr %p
  %w = add i64 %v, 1
  store i64 %w, ptr %p
  %next = add i64 %i, 1
  %c = icmp slt i64 %next, %n
  br i1 %c, label %loop, label %exit
exit:
  ret void
}
)"));
}

TEST(Verifier, RejectsMissingTerminator) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = Function::create(&M, "f", Ctx.getVoidTy(), {}, {});
  BasicBlock *BB = BasicBlock::create(Ctx, "entry", F);
  IRBuilder IRB(BB);
  IRB.createAdd(Ctx.getInt64(1), Ctx.getInt64(2));
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyFunction(*F, &Errors));
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("terminator"), std::string::npos);
}

TEST(Verifier, RejectsEmptyFunction) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = Function::create(&M, "f", Ctx.getVoidTy(), {}, {});
  EXPECT_FALSE(verifyFunction(*F));
}

TEST(Verifier, RejectsTerminatorMidBlock) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = Function::create(&M, "f", Ctx.getVoidTy(), {}, {});
  BasicBlock *BB = BasicBlock::create(Ctx, "entry", F);
  IRBuilder IRB(BB);
  IRB.createRet();
  IRB.createRet();
  EXPECT_FALSE(verifyFunction(*F));
}

TEST(Verifier, RejectsPhiAfterNonPhi) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = Function::create(&M, "f", Ctx.getVoidTy(), {}, {});
  BasicBlock *BB = BasicBlock::create(Ctx, "entry", F);
  IRBuilder IRB(BB);
  IRB.createAdd(Ctx.getInt64(1), Ctx.getInt64(2));
  IRB.createPHI(Ctx.getInt64Ty());
  IRB.createRet();
  EXPECT_FALSE(verifyFunction(*F));
}

TEST(Verifier, RejectsPhiEdgeMismatch) {
  // A block with two predecessors whose phi only lists one incoming edge.
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = Function::create(&M, "f", Ctx.getVoidTy(),
                                 {Ctx.getInt1Ty()}, {"c"});
  BasicBlock *Entry = BasicBlock::create(Ctx, "entry", F);
  BasicBlock *Left = BasicBlock::create(Ctx, "left", F);
  BasicBlock *Join = BasicBlock::create(Ctx, "join", F);
  IRBuilder IRB(Entry);
  IRB.createCondBr(F->getArg(0), Left, Join);
  IRB.setInsertPoint(Left);
  IRB.createBr(Join);
  IRB.setInsertPoint(Join);
  PHINode *Phi = IRB.createPHI(Ctx.getInt64Ty());
  Phi->addIncoming(Ctx.getInt64(1), Left); // Missing the entry edge.
  IRB.createRet();
  EXPECT_FALSE(verifyFunction(*F));
}

TEST(Verifier, RejectsUseBeforeDefInBlock) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = Function::create(&M, "f", Ctx.getVoidTy(), {}, {});
  BasicBlock *BB = BasicBlock::create(Ctx, "entry", F);
  IRBuilder IRB(BB);
  auto *A = cast<Instruction>(IRB.createAdd(Ctx.getInt64(1), Ctx.getInt64(2)));
  auto *B = cast<Instruction>(IRB.createAdd(A, Ctx.getInt64(3)));
  IRB.createRet();
  // Move the user before the def.
  B->moveBefore(A);
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyFunction(*F, &Errors));
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("dominate"), std::string::npos);
}

TEST(Verifier, RejectsNonDominatingCrossBlockUse) {
  EXPECT_FALSE(verifyIR(R"(
define i64 @f(i64 %a) {
entry:
  %c = icmp slt i64 %a, 10
  br i1 %c, label %left, label %join
left:
  %x = add i64 %a, 1
  br label %join
join:
  %y = add i64 %x, 1
  ret i64 %y
}
)"));
}

TEST(Verifier, AcceptsBackEdgePhiUse) {
  // A phi may use a value defined later in the same block when the edge is
  // a back edge: the use point is the end of the predecessor.
  EXPECT_TRUE(verifyIR(R"(
define void @f(i64 %n) {
entry:
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %next, %loop ]
  %next = add i64 %i, 1
  %c = icmp slt i64 %next, %n
  br i1 %c, label %loop, label %exit
exit:
  ret void
}
)"));
}

TEST(Verifier, RejectsEntryWithPredecessors) {
  EXPECT_FALSE(verifyIR(R"(
define void @f() {
entry:
  br label %entry
}
)"));
}

TEST(Verifier, RejectsWrongReturnType) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = Function::create(&M, "f", Ctx.getInt64Ty(), {}, {});
  BasicBlock *BB = BasicBlock::create(Ctx, "entry", F);
  IRBuilder IRB(BB);
  IRB.createRet(); // Missing value for an i64 function.
  EXPECT_FALSE(verifyFunction(*F));
}

TEST(Verifier, RejectsLaneIndexOutOfRange) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = Function::create(
      &M, "f", Ctx.getVoidTy(),
      {Ctx.getVectorTy(Ctx.getInt64Ty(), 2)}, {"v"});
  BasicBlock *BB = BasicBlock::create(Ctx, "entry", F);
  IRBuilder IRB(BB);
  IRB.insert(ExtractElementInst::create(F->getArg(0), Ctx.getInt32(5)));
  IRB.createRet();
  EXPECT_FALSE(verifyFunction(*F));
}

TEST(Verifier, RejectsDuplicateBlockNames) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = Function::create(&M, "f", Ctx.getVoidTy(), {}, {});
  BasicBlock *B1 = BasicBlock::create(Ctx, "bb", F);
  BasicBlock *B2 = BasicBlock::create(Ctx, "bb", F);
  IRBuilder IRB(B1);
  IRB.createBr(B2);
  IRB.setInsertPoint(B2);
  IRB.createRet();
  EXPECT_FALSE(verifyFunction(*F));
}

} // namespace
