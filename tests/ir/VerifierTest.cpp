//===- tests/ir/VerifierTest.cpp - IR verifier tests ---------------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ir/BasicBlock.h"
#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "ir/Verifier.h"
#include "parser/Parser.h"

#include <gtest/gtest.h>

using namespace lslp;

namespace {

bool verifyIR(const char *Src) {
  Context Ctx;
  auto M = parseModuleOrDie(Src, Ctx);
  std::vector<std::string> Errors;
  return verifyModule(*M, &Errors);
}

TEST(Verifier, AcceptsWellFormedLoop) {
  EXPECT_TRUE(verifyIR(R"(
global @A = [16 x i64]
define void @f(i64 %n) {
entry:
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %next, %loop ]
  %p = gep i64, ptr @A, i64 %i
  %v = load i64, ptr %p
  %w = add i64 %v, 1
  store i64 %w, ptr %p
  %next = add i64 %i, 1
  %c = icmp slt i64 %next, %n
  br i1 %c, label %loop, label %exit
exit:
  ret void
}
)"));
}

TEST(Verifier, RejectsMissingTerminator) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = Function::create(&M, "f", Ctx.getVoidTy(), {}, {});
  BasicBlock *BB = BasicBlock::create(Ctx, "entry", F);
  IRBuilder IRB(BB);
  IRB.createAdd(Ctx.getInt64(1), Ctx.getInt64(2));
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyFunction(*F, &Errors));
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("terminator"), std::string::npos);
}

TEST(Verifier, RejectsEmptyFunction) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = Function::create(&M, "f", Ctx.getVoidTy(), {}, {});
  EXPECT_FALSE(verifyFunction(*F));
}

TEST(Verifier, RejectsTerminatorMidBlock) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = Function::create(&M, "f", Ctx.getVoidTy(), {}, {});
  BasicBlock *BB = BasicBlock::create(Ctx, "entry", F);
  IRBuilder IRB(BB);
  IRB.createRet();
  IRB.createRet();
  EXPECT_FALSE(verifyFunction(*F));
}

TEST(Verifier, RejectsPhiAfterNonPhi) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = Function::create(&M, "f", Ctx.getVoidTy(), {}, {});
  BasicBlock *BB = BasicBlock::create(Ctx, "entry", F);
  IRBuilder IRB(BB);
  IRB.createAdd(Ctx.getInt64(1), Ctx.getInt64(2));
  IRB.createPHI(Ctx.getInt64Ty());
  IRB.createRet();
  EXPECT_FALSE(verifyFunction(*F));
}

TEST(Verifier, RejectsPhiEdgeMismatch) {
  // A block with two predecessors whose phi only lists one incoming edge.
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = Function::create(&M, "f", Ctx.getVoidTy(),
                                 {Ctx.getInt1Ty()}, {"c"});
  BasicBlock *Entry = BasicBlock::create(Ctx, "entry", F);
  BasicBlock *Left = BasicBlock::create(Ctx, "left", F);
  BasicBlock *Join = BasicBlock::create(Ctx, "join", F);
  IRBuilder IRB(Entry);
  IRB.createCondBr(F->getArg(0), Left, Join);
  IRB.setInsertPoint(Left);
  IRB.createBr(Join);
  IRB.setInsertPoint(Join);
  PHINode *Phi = IRB.createPHI(Ctx.getInt64Ty());
  Phi->addIncoming(Ctx.getInt64(1), Left); // Missing the entry edge.
  IRB.createRet();
  EXPECT_FALSE(verifyFunction(*F));
}

TEST(Verifier, RejectsUseBeforeDefInBlock) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = Function::create(&M, "f", Ctx.getVoidTy(), {}, {});
  BasicBlock *BB = BasicBlock::create(Ctx, "entry", F);
  IRBuilder IRB(BB);
  auto *A = cast<Instruction>(IRB.createAdd(Ctx.getInt64(1), Ctx.getInt64(2)));
  auto *B = cast<Instruction>(IRB.createAdd(A, Ctx.getInt64(3)));
  IRB.createRet();
  // Move the user before the def.
  B->moveBefore(A);
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyFunction(*F, &Errors));
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("dominate"), std::string::npos);
}

TEST(Verifier, RejectsNonDominatingCrossBlockUse) {
  EXPECT_FALSE(verifyIR(R"(
define i64 @f(i64 %a) {
entry:
  %c = icmp slt i64 %a, 10
  br i1 %c, label %left, label %join
left:
  %x = add i64 %a, 1
  br label %join
join:
  %y = add i64 %x, 1
  ret i64 %y
}
)"));
}

TEST(Verifier, AcceptsBackEdgePhiUse) {
  // A phi may use a value defined later in the same block when the edge is
  // a back edge: the use point is the end of the predecessor.
  EXPECT_TRUE(verifyIR(R"(
define void @f(i64 %n) {
entry:
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %next, %loop ]
  %next = add i64 %i, 1
  %c = icmp slt i64 %next, %n
  br i1 %c, label %loop, label %exit
exit:
  ret void
}
)"));
}

TEST(Verifier, RejectsEntryWithPredecessors) {
  EXPECT_FALSE(verifyIR(R"(
define void @f() {
entry:
  br label %entry
}
)"));
}

TEST(Verifier, RejectsWrongReturnType) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = Function::create(&M, "f", Ctx.getInt64Ty(), {}, {});
  BasicBlock *BB = BasicBlock::create(Ctx, "entry", F);
  IRBuilder IRB(BB);
  IRB.createRet(); // Missing value for an i64 function.
  EXPECT_FALSE(verifyFunction(*F));
}

TEST(Verifier, RejectsLaneIndexOutOfRange) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = Function::create(
      &M, "f", Ctx.getVoidTy(),
      {Ctx.getVectorTy(Ctx.getInt64Ty(), 2)}, {"v"});
  BasicBlock *BB = BasicBlock::create(Ctx, "entry", F);
  IRBuilder IRB(BB);
  IRB.insert(ExtractElementInst::create(F->getArg(0), Ctx.getInt32(5)));
  IRB.createRet();
  EXPECT_FALSE(verifyFunction(*F));
}

TEST(Verifier, RejectsDuplicateBlockNames) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = Function::create(&M, "f", Ctx.getVoidTy(), {}, {});
  BasicBlock *B1 = BasicBlock::create(Ctx, "bb", F);
  BasicBlock *B2 = BasicBlock::create(Ctx, "bb", F);
  IRBuilder IRB(B1);
  IRB.createBr(B2);
  IRB.setInsertPoint(B2);
  IRB.createRet();
  EXPECT_FALSE(verifyFunction(*F));
}

// One negative case per type-checking diagnostic category. These can only
// be built through the C++ API — the parser rejects them earlier — but
// the vectorizer mutates IR through this API, so the verifier is the last
// line of defense for exactly these shapes.

/// Runs the verifier and expects failure with a diagnostic containing
/// \p Needle.
void expectVerifyError(Function *F, const char *Needle) {
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyFunction(*F, &Errors));
  ASSERT_FALSE(Errors.empty());
  bool Found = false;
  for (const std::string &E : Errors)
    Found |= E.find(Needle) != std::string::npos;
  EXPECT_TRUE(Found) << "no diagnostic mentions '" << Needle << "'; got: "
                     << Errors[0];
}

TEST(Verifier, RejectsBinaryOperandTypeMismatch) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = Function::create(&M, "f", Ctx.getVoidTy(),
                                 {Ctx.getInt64Ty(), Ctx.getInt32Ty()},
                                 {"a", "b"});
  BasicBlock *BB = BasicBlock::create(Ctx, "entry", F);
  IRBuilder IRB(BB);
  auto *Add = cast<Instruction>(
      IRB.createAdd(F->getArg(0), Ctx.getInt64(0)));
  Add->setOperand(1, F->getArg(1)); // i64 + i32
  IRB.createRet();
  expectVerifyError(F, "binary operator operand type mismatch");
}

TEST(Verifier, RejectsICmpOperandTypeMismatch) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = Function::create(&M, "f", Ctx.getVoidTy(),
                                 {Ctx.getInt64Ty(), Ctx.getInt32Ty()},
                                 {"a", "b"});
  BasicBlock *BB = BasicBlock::create(Ctx, "entry", F);
  IRBuilder IRB(BB);
  auto *Cmp = cast<Instruction>(IRB.createICmp(
      ICmpInst::Predicate::SLT, F->getArg(0), Ctx.getInt64(0)));
  Cmp->setOperand(1, F->getArg(1));
  IRB.createRet();
  expectVerifyError(F, "icmp operand types differ");
}

TEST(Verifier, RejectsSelectArmTypeMismatch) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = Function::create(
      &M, "f", Ctx.getVoidTy(),
      {Ctx.getInt1Ty(), Ctx.getInt64Ty(), Ctx.getInt32Ty()},
      {"c", "a", "b"});
  BasicBlock *BB = BasicBlock::create(Ctx, "entry", F);
  IRBuilder IRB(BB);
  auto *Sel = cast<Instruction>(IRB.createSelect(
      F->getArg(0), F->getArg(1), Ctx.getInt64(0)));
  Sel->setOperand(2, F->getArg(2));
  IRB.createRet();
  expectVerifyError(F, "select arm type mismatch");
}

TEST(Verifier, RejectsNonPointerLoadAddress) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = Function::create(&M, "f", Ctx.getVoidTy(),
                                 {Ctx.getPtrTy(), Ctx.getInt64Ty()},
                                 {"p", "x"});
  BasicBlock *BB = BasicBlock::create(Ctx, "entry", F);
  IRBuilder IRB(BB);
  auto *L = cast<Instruction>(
      IRB.createLoad(Ctx.getInt64Ty(), F->getArg(0)));
  L->setOperand(0, F->getArg(1)); // load through an i64
  IRB.createRet();
  expectVerifyError(F, "load pointer operand is not ptr-typed");
}

TEST(Verifier, RejectsInvalidCastTypes) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = Function::create(&M, "f", Ctx.getVoidTy(),
                                 {Ctx.getInt64Ty(), Ctx.getInt32Ty()},
                                 {"a", "b"});
  BasicBlock *BB = BasicBlock::create(Ctx, "entry", F);
  IRBuilder IRB(BB);
  // Start from a valid trunc i64 -> i32, then swap in an i32 source:
  // trunc must narrow, so i32 -> i32 is invalid.
  auto *T = cast<Instruction>(
      IRB.createTrunc(F->getArg(0), Ctx.getInt32Ty()));
  T->setOperand(0, F->getArg(1));
  IRB.createRet();
  expectVerifyError(F, "invalid cast source/destination types");
}

} // namespace
