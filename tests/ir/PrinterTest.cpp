//===- tests/ir/PrinterTest.cpp - Textual printer tests ------------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ir/BasicBlock.h"
#include "ir/Constants.h"
#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "ir/Printer.h"

#include <gtest/gtest.h>

using namespace lslp;

namespace {

TEST(Printer, ModuleHeaderAndGlobals) {
  Context Ctx;
  Module M(Ctx, "mod");
  M.createGlobal("A", Ctx.getInt64Ty(), 256);
  M.createGlobal("B", Ctx.getDoubleTy(), 16);
  std::string Text = moduleToString(M);
  EXPECT_NE(Text.find("module \"mod\""), std::string::npos);
  EXPECT_NE(Text.find("global @A = [256 x i64]"), std::string::npos);
  EXPECT_NE(Text.find("global @B = [16 x double]"), std::string::npos);
}

TEST(Printer, InstructionForms) {
  Context Ctx;
  Module M(Ctx, "m");
  GlobalArray *A = M.createGlobal("A", Ctx.getInt64Ty(), 64);
  Function *F = Function::create(&M, "f", Ctx.getVoidTy(),
                                 {Ctx.getInt64Ty()}, {"i"});
  BasicBlock *BB = BasicBlock::create(Ctx, "entry", F);
  IRBuilder IRB(BB);
  GEPInst *P = IRB.createGEP(Ctx.getInt64Ty(), A, F->getArg(0), "p");
  LoadInst *V = IRB.createLoad(Ctx.getInt64Ty(), P, "v");
  Value *S = IRB.createShl(V, Ctx.getInt64(2), "s");
  IRB.createStore(S, P);
  IRB.createRet();

  EXPECT_EQ(instructionToString(*P), "%p = gep i64, ptr @A, i64 %i");
  EXPECT_EQ(instructionToString(*V), "%v = load i64, ptr %p");
  EXPECT_EQ(instructionToString(*cast<Instruction>(S)),
            "%s = shl i64 %v, 2");
  EXPECT_EQ(instructionToString(*BB->getTerminator()), "ret void");
}

TEST(Printer, SlotNumberingForUnnamedValues) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = Function::create(&M, "f", Ctx.getInt64Ty(),
                                 {Ctx.getInt64Ty()}, {"a"});
  BasicBlock *BB = BasicBlock::create(Ctx, "entry", F);
  IRBuilder IRB(BB);
  Value *X = IRB.createAdd(F->getArg(0), Ctx.getInt64(1)); // %0
  Value *Y = IRB.createMul(X, X);                          // %1
  IRB.createRet(Y);
  std::string Text = functionToString(*F);
  EXPECT_NE(Text.find("%0 = add i64 %a, 1"), std::string::npos);
  EXPECT_NE(Text.find("%1 = mul i64 %0, %0"), std::string::npos);
  EXPECT_NE(Text.find("ret i64 %1"), std::string::npos);
}

TEST(Printer, ConstantsRendering) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = Function::create(&M, "f", Ctx.getVoidTy(),
                                 {Ctx.getDoubleTy()}, {"d"});
  BasicBlock *BB = BasicBlock::create(Ctx, "entry", F);
  IRBuilder IRB(BB);
  auto *FAdd = cast<Instruction>(
      IRB.createFAdd(F->getArg(0), Ctx.getConstantFP(Ctx.getDoubleTy(), 2.0)));
  // FP constants carry a ".0" so they re-parse as floats.
  EXPECT_EQ(instructionToString(*FAdd), "%0 = fadd double %d, 2.0");
  auto *Neg = cast<Instruction>(IRB.createFMul(
      F->getArg(0), Ctx.getConstantFP(Ctx.getDoubleTy(), -1.5)));
  EXPECT_EQ(instructionToString(*Neg), "%1 = fmul double %d, -1.5");
}

TEST(Printer, VectorAndControlFlowForms) {
  Context Ctx;
  Module M(Ctx, "m");
  VectorType *V2 = Ctx.getVectorTy(Ctx.getInt64Ty(), 2);
  Function *F =
      Function::create(&M, "f", Ctx.getVoidTy(), {V2, Ctx.getInt1Ty()},
                       {"v", "c"});
  BasicBlock *BB = BasicBlock::create(Ctx, "entry", F);
  BasicBlock *Next = BasicBlock::create(Ctx, "next", F);
  IRBuilder IRB(BB);
  auto *Ins = IRB.createInsertElement(F->getArg(0), Ctx.getInt64(9), 1, "a");
  auto *Ext = IRB.createExtractElement(Ins, 0, "b");
  (void)Ext;
  auto *Shuf = IRB.createShuffleVector(Ins, Ins, {1, -1}, "s");
  (void)Shuf;
  IRB.createCondBr(F->getArg(1), Next, Next);
  IRB.setInsertPoint(Next);
  PHINode *Phi = IRB.createPHI(V2, "p");
  Phi->addIncoming(Ins, BB);
  IRB.createRet();

  std::string Text = functionToString(*F);
  EXPECT_NE(Text.find("%a = insertelement <2 x i64> %v, i64 9, i32 1"),
            std::string::npos);
  EXPECT_NE(Text.find("%b = extractelement <2 x i64> %a, i32 0"),
            std::string::npos);
  EXPECT_NE(
      Text.find("%s = shufflevector <2 x i64> %a, <2 x i64> %a, [1, -1]"),
      std::string::npos);
  EXPECT_NE(Text.find("br i1 %c, label %next, label %next"),
            std::string::npos);
  EXPECT_NE(Text.find("%p = phi <2 x i64> [ %a, %entry ]"),
            std::string::npos);
}

TEST(Printer, ConstantVectorOperands) {
  Context Ctx;
  Module M(Ctx, "m");
  VectorType *V2 = Ctx.getVectorTy(Ctx.getInt64Ty(), 2);
  Function *F = Function::create(&M, "f", Ctx.getVoidTy(), {V2}, {"v"});
  BasicBlock *BB = BasicBlock::create(Ctx, "entry", F);
  IRBuilder IRB(BB);
  ConstantVector *CV =
      Ctx.getConstantVector({Ctx.getInt64(1), Ctx.getInt64(3)});
  auto *Add = cast<Instruction>(IRB.createAdd(F->getArg(0), CV, "r"));
  EXPECT_EQ(instructionToString(*Add),
            "%r = add <2 x i64> %v, <i64 1, i64 3>");
}

TEST(Printer, UndefOperand) {
  Context Ctx;
  Module M(Ctx, "m");
  VectorType *V2 = Ctx.getVectorTy(Ctx.getInt64Ty(), 2);
  Function *F = Function::create(&M, "f", Ctx.getVoidTy(),
                                 {Ctx.getInt64Ty()}, {"x"});
  BasicBlock *BB = BasicBlock::create(Ctx, "entry", F);
  IRBuilder IRB(BB);
  auto *Ins = IRB.createInsertElement(Ctx.getUndef(V2), F->getArg(0), 0, "i");
  EXPECT_EQ(instructionToString(*Ins),
            "%i = insertelement <2 x i64> undef, i64 %x, i32 0");
}

} // namespace
