//===- tests/ir/InstructionTest.cpp - Instruction class tests -----------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ir/BasicBlock.h"
#include "ir/Constants.h"
#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"

#include <gtest/gtest.h>

using namespace lslp;

namespace {

struct InstrFixture : public ::testing::Test {
  Context Ctx;
  Module M{Ctx, "test"};
  Function *F = nullptr;
  BasicBlock *BB = nullptr;
  IRBuilder IRB{Ctx};
  GlobalArray *G = nullptr;

  void SetUp() override {
    F = Function::create(&M, "f", Ctx.getVoidTy(), {Ctx.getInt64Ty()},
                         {"a"});
    BB = BasicBlock::create(Ctx, "entry", F);
    IRB.setInsertPoint(BB);
    G = M.createGlobal("G", Ctx.getInt64Ty(), 64);
  }
};

using InstructionTest = InstrFixture;

TEST_F(InstructionTest, CommutativityMatchesPaperAssumptions) {
  // Integer adds, muls and bitwise ops are commutative; sub/shifts/divs
  // are not. FAdd/FMul count as commutative under fast-math.
  auto IsComm = [](ValueID Opc) {
    return BinaryOperator::isCommutativeOpcode(Opc);
  };
  EXPECT_TRUE(IsComm(ValueID::Add));
  EXPECT_TRUE(IsComm(ValueID::Mul));
  EXPECT_TRUE(IsComm(ValueID::And));
  EXPECT_TRUE(IsComm(ValueID::Or));
  EXPECT_TRUE(IsComm(ValueID::Xor));
  EXPECT_TRUE(IsComm(ValueID::FAdd));
  EXPECT_TRUE(IsComm(ValueID::FMul));
  EXPECT_FALSE(IsComm(ValueID::Sub));
  EXPECT_FALSE(IsComm(ValueID::Shl));
  EXPECT_FALSE(IsComm(ValueID::LShr));
  EXPECT_FALSE(IsComm(ValueID::AShr));
  EXPECT_FALSE(IsComm(ValueID::SDiv));
  EXPECT_FALSE(IsComm(ValueID::UDiv));
  EXPECT_FALSE(IsComm(ValueID::FSub));
  EXPECT_FALSE(IsComm(ValueID::FDiv));
}

TEST_F(InstructionTest, OpcodeNames) {
  EXPECT_STREQ(Instruction::getOpcodeName(ValueID::Add), "add");
  EXPECT_STREQ(Instruction::getOpcodeName(ValueID::FDiv), "fdiv");
  EXPECT_STREQ(Instruction::getOpcodeName(ValueID::Load), "load");
  EXPECT_STREQ(Instruction::getOpcodeName(ValueID::ShuffleVector),
               "shufflevector");
  EXPECT_STREQ(Instruction::getOpcodeName(ValueID::Phi), "phi");
}

TEST_F(InstructionTest, BinaryOperatorTypesAndClassof) {
  Value *Add = IRB.createAdd(F->getArg(0), Ctx.getInt64(1));
  EXPECT_EQ(Add->getType(), Ctx.getInt64Ty());
  EXPECT_TRUE(isa<BinaryOperator>(Add));
  EXPECT_TRUE(cast<Instruction>(Add)->isBinaryOp());
  EXPECT_FALSE(cast<Instruction>(Add)->isTerminator());
}

TEST_F(InstructionTest, MemoryInstructions) {
  GEPInst *GEP = IRB.createGEP(Ctx.getInt64Ty(), G, int64_t(3));
  EXPECT_EQ(GEP->getType(), Ctx.getPtrTy());
  EXPECT_EQ(GEP->getElementType(), Ctx.getInt64Ty());
  LoadInst *L = IRB.createLoad(Ctx.getInt64Ty(), GEP);
  EXPECT_EQ(L->getAccessType(), Ctx.getInt64Ty());
  EXPECT_TRUE(L->mayReadFromMemory());
  EXPECT_FALSE(L->mayWriteToMemory());
  StoreInst *S = IRB.createStore(L, GEP);
  EXPECT_TRUE(S->getType()->isVoidTy());
  EXPECT_TRUE(S->mayWriteToMemory());
  EXPECT_EQ(S->getValueOperand(), L);
  EXPECT_EQ(S->getPointerOperand(), GEP);
  EXPECT_EQ(S->getAccessType(), Ctx.getInt64Ty());
}

TEST_F(InstructionTest, ICmpAndSelect) {
  ICmpInst *Cmp =
      IRB.createICmp(ICmpInst::SLT, F->getArg(0), Ctx.getInt64(10));
  EXPECT_EQ(Cmp->getType(), Ctx.getInt1Ty());
  EXPECT_EQ(Cmp->getPredicate(), ICmpInst::SLT);
  EXPECT_STREQ(ICmpInst::getPredicateName(ICmpInst::UGE), "uge");
  SelectInst *Sel =
      IRB.createSelect(Cmp, F->getArg(0), Ctx.getInt64(0));
  EXPECT_EQ(Sel->getType(), Ctx.getInt64Ty());
  EXPECT_EQ(Sel->getCondition(), Cmp);
}

TEST_F(InstructionTest, VectorInstructions) {
  VectorType *V2 = Ctx.getVectorTy(Ctx.getInt64Ty(), 2);
  Value *Undef = Ctx.getUndef(V2);
  InsertElementInst *Ins =
      IRB.createInsertElement(Undef, F->getArg(0), 0);
  EXPECT_EQ(Ins->getType(), V2);
  ExtractElementInst *Ext = IRB.createExtractElement(Ins, 1);
  EXPECT_EQ(Ext->getType(), Ctx.getInt64Ty());
  ShuffleVectorInst *Shuf =
      IRB.createShuffleVector(Ins, Ins, {1, 0});
  EXPECT_EQ(Shuf->getType(), V2);
  EXPECT_EQ(Shuf->getMask(), (std::vector<int>{1, 0}));
  // Widening shuffle changes the lane count.
  ShuffleVectorInst *Wide =
      IRB.createShuffleVector(Ins, Ins, {0, 1, 2, 3});
  EXPECT_EQ(Wide->getType(), Ctx.getVectorTy(Ctx.getInt64Ty(), 4));
}

TEST_F(InstructionTest, BranchesAndTerminators) {
  BasicBlock *T = BasicBlock::create(Ctx, "t", F);
  BasicBlock *E = BasicBlock::create(Ctx, "e", F);
  ICmpInst *Cmp =
      IRB.createICmp(ICmpInst::EQ, F->getArg(0), Ctx.getInt64(0));
  BranchInst *Br = IRB.createCondBr(Cmp, T, E);
  EXPECT_TRUE(Br->isTerminator());
  EXPECT_TRUE(Br->isConditional());
  EXPECT_EQ(Br->getNumSuccessors(), 2u);
  EXPECT_EQ(Br->getSuccessor(0), T);
  EXPECT_EQ(Br->getSuccessor(1), E);
  EXPECT_EQ(Br->getCondition(), Cmp);

  IRB.setInsertPoint(T);
  BranchInst *UBr = IRB.createBr(E);
  EXPECT_FALSE(UBr->isConditional());
  EXPECT_EQ(UBr->getNumSuccessors(), 1u);
  EXPECT_EQ(UBr->getSuccessor(0), E);

  IRB.setInsertPoint(E);
  ReturnInst *Ret = IRB.createRet();
  EXPECT_TRUE(Ret->isTerminator());
  EXPECT_EQ(Ret->getReturnValue(), nullptr);

  // CFG queries derived from branch operands/uses.
  EXPECT_EQ(BB->successors(), (std::vector<BasicBlock *>{T, E}));
  EXPECT_EQ(E->predecessors().size(), 2u);
  EXPECT_EQ(BB->getTerminator(), Br);
}

TEST_F(InstructionTest, ComesBeforeAndMove) {
  auto *I1 = cast<Instruction>(IRB.createAdd(F->getArg(0), Ctx.getInt64(1)));
  auto *I2 = cast<Instruction>(IRB.createAdd(F->getArg(0), Ctx.getInt64(2)));
  auto *I3 = cast<Instruction>(IRB.createAdd(F->getArg(0), Ctx.getInt64(3)));
  EXPECT_TRUE(I1->comesBefore(I2));
  EXPECT_TRUE(I2->comesBefore(I3));
  EXPECT_FALSE(I3->comesBefore(I1));
  EXPECT_FALSE(I1->comesBefore(I1));
  I3->moveBefore(I1);
  EXPECT_TRUE(I3->comesBefore(I1));
  EXPECT_TRUE(I1->comesBefore(I2));
}

TEST_F(InstructionTest, InsertBefore) {
  auto *I1 = cast<Instruction>(IRB.createAdd(F->getArg(0), Ctx.getInt64(1)));
  IRB.setInsertPoint(I1);
  auto *I0 = cast<Instruction>(IRB.createAdd(F->getArg(0), Ctx.getInt64(0)));
  EXPECT_TRUE(I0->comesBefore(I1));
  EXPECT_EQ(BB->front(), I0);
}

TEST_F(InstructionTest, ReturnWithValue) {
  Function *G2 = Function::create(&M, "g", Ctx.getInt64Ty(), {}, {});
  BasicBlock *B2 = BasicBlock::create(Ctx, "entry", G2);
  IRBuilder IRB2(B2);
  ReturnInst *Ret = IRB2.createRet(Ctx.getInt64(42));
  EXPECT_EQ(Ret->getReturnValue(), Ctx.getInt64(42));
}

} // namespace
