//===- tests/ir/CloningTest.cpp - Function cloning / takeBody tests ------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// cloneFunctionDetached + Function::takeBody back the vectorizer's
// transform-then-commit scheme: snapshot, mutate freely, and on failure
// restore a body that prints byte-identically to the original.
//
//===----------------------------------------------------------------------===//

#include "ir/BasicBlock.h"
#include "ir/Cloning.h"
#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/IRBuilder.h"
#include "ir/Instruction.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "parser/Parser.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

using namespace lslp;

namespace {

const char *LoopSrc = R"(global @A = [16 x i64]
define i64 @sum(i64 %n) {
entry:
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %next, %loop ]
  %acc = phi i64 [ 0, %entry ], [ %acc2, %loop ]
  %p = gep i64, ptr @A, i64 %i
  %v = load i64, ptr %p
  %acc2 = add i64 %acc, %v
  %next = add i64 %i, 1
  %c = icmp slt i64 %next, %n
  br i1 %c, label %loop, label %exit
exit:
  ret i64 %acc2
}
)";

/// A deliberately messy mutation standing in for a half-finished
/// vectorization: junk instructions appended past the terminator.
void wreckFunction(Context &Ctx, Function &F) {
  IRBuilder IRB(F.getEntryBlock());
  IRB.createAdd(Ctx.getInt64(1), Ctx.getInt64(2), "junk");
  IRB.createMul(Ctx.getInt64(3), Ctx.getInt64(4), "junk2");
}

TEST(Cloning, ClonePrintsIdentically) {
  Context Ctx;
  auto M = parseModuleOrDie(LoopSrc, Ctx);
  Function *F = M->getFunction("sum");
  ASSERT_NE(F, nullptr);
  std::string Before = functionToString(*F);

  std::unique_ptr<Function> Clone = cloneFunctionDetached(*F);
  ASSERT_NE(Clone, nullptr);
  EXPECT_EQ(Clone->getParent(), nullptr);
  EXPECT_EQ(functionToString(*Clone), Before);
  // The original is untouched by taking the snapshot.
  EXPECT_EQ(functionToString(*F), Before);
}

TEST(Cloning, CloneIsDeepNotAliased) {
  Context Ctx;
  auto M = parseModuleOrDie(LoopSrc, Ctx);
  Function *F = M->getFunction("sum");
  std::unique_ptr<Function> Clone = cloneFunctionDetached(*F);
  std::string Snapshot = functionToString(*Clone);

  wreckFunction(Ctx, *F);
  ASSERT_NE(functionToString(*F), Snapshot);
  // The detached clone is unaffected.
  EXPECT_EQ(functionToString(*Clone), Snapshot);
}

TEST(Cloning, TakeBodyRestoresByteIdenticalFunction) {
  Context Ctx;
  auto M = parseModuleOrDie(LoopSrc, Ctx);
  Function *F = M->getFunction("sum");
  std::string Before = moduleToString(*M);

  std::unique_ptr<Function> Backup = cloneFunctionDetached(*F);
  wreckFunction(Ctx, *F);
  ASSERT_NE(moduleToString(*M), Before);

  F->takeBody(*Backup);
  EXPECT_TRUE(verifyModule(*M));
  EXPECT_EQ(moduleToString(*M), Before);
}

TEST(Cloning, RestoredBodyRoundTripsThroughParser) {
  Context Ctx;
  auto M = parseModuleOrDie(LoopSrc, Ctx);
  Function *F = M->getFunction("sum");
  std::unique_ptr<Function> Backup = cloneFunctionDetached(*F);
  wreckFunction(Ctx, *F);
  F->takeBody(*Backup);

  // The restored module is structurally sound, not just pretty-printable.
  Context Ctx2;
  std::string Err;
  auto Back = parseModule(moduleToString(*M), Ctx2, Err);
  ASSERT_NE(Back, nullptr) << Err;
  EXPECT_TRUE(verifyModule(*Back));
}

TEST(Cloning, SharesConstantsAndGlobals) {
  Context Ctx;
  auto M = parseModuleOrDie(LoopSrc, Ctx);
  Function *F = M->getFunction("sum");
  std::unique_ptr<Function> Clone = cloneFunctionDetached(*F);

  // Find the gep's global operand in both; they must be the same object
  // (globals/constants are shared, only instructions are copied).
  auto FindGlobalOperand = [](Function &Fn) -> Value * {
    for (const auto &BB : Fn)
      for (const auto &I : *BB)
        for (unsigned Op = 0; Op != I->getNumOperands(); ++Op)
          if (isa<GlobalArray>(I->getOperand(Op)))
            return I->getOperand(Op);
    return nullptr;
  };
  Value *Orig = FindGlobalOperand(*F);
  Value *Copy = FindGlobalOperand(*Clone);
  ASSERT_NE(Orig, nullptr);
  EXPECT_EQ(Orig, Copy);
}

} // namespace
