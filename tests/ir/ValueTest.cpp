//===- tests/ir/ValueTest.cpp - Use-def chain tests ----------------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ir/BasicBlock.h"
#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"

#include <gtest/gtest.h>

using namespace lslp;

namespace {

/// Fresh module with one void function and an entry block ready to build
/// into.
struct IRFixture : public ::testing::Test {
  Context Ctx;
  Module M{Ctx, "test"};
  Function *F = nullptr;
  BasicBlock *BB = nullptr;
  IRBuilder IRB{Ctx};

  void SetUp() override {
    F = Function::create(&M, "f", Ctx.getVoidTy(),
                         {Ctx.getInt64Ty(), Ctx.getInt64Ty()}, {"a", "b"});
    BB = BasicBlock::create(Ctx, "entry", F);
    IRB.setInsertPoint(BB);
  }
};

using ValueTest = IRFixture;

TEST_F(ValueTest, UseListsTrackOperands) {
  Argument *A = F->getArg(0);
  Argument *B = F->getArg(1);
  Value *Add = IRB.createAdd(A, B);
  EXPECT_EQ(A->getNumUses(), 1u);
  EXPECT_EQ(B->getNumUses(), 1u);
  EXPECT_TRUE(A->hasOneUse());
  EXPECT_EQ(A->uses()[0].TheUser, Add);
  EXPECT_EQ(A->uses()[0].OperandNo, 0u);
  EXPECT_EQ(B->uses()[0].OperandNo, 1u);
}

TEST_F(ValueTest, SameValueTwiceCountsTwoUses) {
  Argument *A = F->getArg(0);
  Value *Add = IRB.createAdd(A, A);
  (void)Add;
  EXPECT_EQ(A->getNumUses(), 2u);
  EXPECT_FALSE(A->hasOneUse());
}

TEST_F(ValueTest, SetOperandRewiresUseLists) {
  Argument *A = F->getArg(0);
  Argument *B = F->getArg(1);
  auto *Add = cast<Instruction>(IRB.createAdd(A, A));
  Add->setOperand(1, B);
  EXPECT_EQ(A->getNumUses(), 1u);
  EXPECT_EQ(B->getNumUses(), 1u);
  EXPECT_EQ(Add->getOperand(0), A);
  EXPECT_EQ(Add->getOperand(1), B);
}

TEST_F(ValueTest, ReplaceAllUsesWith) {
  Argument *A = F->getArg(0);
  Argument *B = F->getArg(1);
  auto *Add1 = cast<Instruction>(IRB.createAdd(A, B));
  auto *Add2 = cast<Instruction>(IRB.createAdd(A, A));
  Value *C = Ctx.getInt64(7);
  A->replaceAllUsesWith(C);
  EXPECT_EQ(A->getNumUses(), 0u);
  EXPECT_EQ(C->getNumUses(), 3u);
  EXPECT_EQ(Add1->getOperand(0), C);
  EXPECT_EQ(Add2->getOperand(0), C);
  EXPECT_EQ(Add2->getOperand(1), C);
}

TEST_F(ValueTest, EraseDropsUses) {
  Argument *A = F->getArg(0);
  auto *Add = cast<Instruction>(IRB.createAdd(A, A));
  EXPECT_EQ(A->getNumUses(), 2u);
  Add->eraseFromParent();
  EXPECT_EQ(A->getNumUses(), 0u);
  EXPECT_TRUE(BB->empty());
}

TEST_F(ValueTest, PhiRemoveOperandRenumbersUses) {
  // removeOperand must renumber later uses; exercised through the phi
  // operand layout (value/block pairs).
  BasicBlock *Other = BasicBlock::create(Ctx, "other", F);
  IRBuilder IRB2(Other);
  Value *C1 = Ctx.getInt64(1);
  PHINode *Phi = IRB2.createPHI(Ctx.getInt64Ty(), "p");
  Phi->addIncoming(C1, BB);
  Phi->addIncoming(F->getArg(0), Other);
  EXPECT_EQ(Phi->getNumIncoming(), 2u);
  EXPECT_EQ(Phi->getIncomingValueForBlock(BB), C1);
  EXPECT_EQ(Phi->getIncomingValueForBlock(Other), F->getArg(0));
  EXPECT_EQ(Phi->getIncomingValueForBlock(nullptr), nullptr);
}

TEST_F(ValueTest, Names) {
  Value *Add = IRB.createAdd(F->getArg(0), F->getArg(1), "sum");
  EXPECT_TRUE(Add->hasName());
  EXPECT_EQ(Add->getName(), "sum");
  Value *Anon = IRB.createAdd(F->getArg(0), F->getArg(1));
  EXPECT_FALSE(Anon->hasName());
}

TEST_F(ValueTest, UserClassof) {
  Value *Add = IRB.createAdd(F->getArg(0), F->getArg(1));
  EXPECT_TRUE(isa<User>(Add));
  EXPECT_FALSE(isa<User>(static_cast<Value *>(F->getArg(0))));
}

} // namespace
