//===- tests/ir/DominatorsTest.cpp - Dominator tree tests ---------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ir/BasicBlock.h"
#include "ir/Context.h"
#include "ir/Dominators.h"
#include "ir/Function.h"
#include "ir/Module.h"
#include "parser/Parser.h"

#include <gtest/gtest.h>

using namespace lslp;

namespace {

const char *DiamondIR = R"(
define i64 @f(i64 %a) {
entry:
  %c = icmp slt i64 %a, 10
  br i1 %c, label %left, label %right
left:
  %x = add i64 %a, 1
  br label %join
right:
  %y = add i64 %a, 2
  br label %join
join:
  %p = phi i64 [ %x, %left ], [ %y, %right ]
  ret i64 %p
}
)";

TEST(Dominators, Diamond) {
  Context Ctx;
  auto M = parseModuleOrDie(DiamondIR, Ctx);
  Function *F = M->getFunction("f");
  DominatorTree DT(*F);
  BasicBlock *Entry = F->getBlockByName("entry");
  BasicBlock *Left = F->getBlockByName("left");
  BasicBlock *Right = F->getBlockByName("right");
  BasicBlock *Join = F->getBlockByName("join");

  EXPECT_TRUE(DT.dominates(Entry, Entry));
  EXPECT_TRUE(DT.dominates(Entry, Left));
  EXPECT_TRUE(DT.dominates(Entry, Right));
  EXPECT_TRUE(DT.dominates(Entry, Join));
  EXPECT_FALSE(DT.dominates(Left, Join));
  EXPECT_FALSE(DT.dominates(Right, Join));
  EXPECT_FALSE(DT.dominates(Left, Right));
  EXPECT_EQ(DT.getIDom(Join), Entry);
  EXPECT_EQ(DT.getIDom(Left), Entry);
  EXPECT_EQ(DT.getIDom(Entry), nullptr);
}

TEST(Dominators, Loop) {
  Context Ctx;
  auto M = parseModuleOrDie(R"(
define void @f(i64 %n) {
entry:
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %next, %loop ]
  %next = add i64 %i, 1
  %c = icmp slt i64 %next, %n
  br i1 %c, label %loop, label %exit
exit:
  ret void
}
)",
                            Ctx);
  Function *F = M->getFunction("f");
  DominatorTree DT(*F);
  BasicBlock *Entry = F->getBlockByName("entry");
  BasicBlock *Loop = F->getBlockByName("loop");
  BasicBlock *Exit = F->getBlockByName("exit");
  EXPECT_TRUE(DT.dominates(Entry, Loop));
  EXPECT_TRUE(DT.dominates(Loop, Exit));
  EXPECT_FALSE(DT.dominates(Exit, Loop));
  EXPECT_EQ(DT.getIDom(Exit), Loop);
}

TEST(Dominators, UnreachableBlock) {
  Context Ctx;
  auto M = parseModuleOrDie(R"(
define void @f() {
entry:
  ret void
dead:
  br label %dead2
dead2:
  ret void
}
)",
                            Ctx);
  Function *F = M->getFunction("f");
  DominatorTree DT(*F);
  BasicBlock *Entry = F->getBlockByName("entry");
  BasicBlock *Dead = F->getBlockByName("dead");
  EXPECT_TRUE(DT.isReachable(Entry));
  EXPECT_FALSE(DT.isReachable(Dead));
  // LLVM convention: everything dominates an unreachable block.
  EXPECT_TRUE(DT.dominates(Entry, Dead));
  EXPECT_FALSE(DT.dominates(Dead, Entry));
}

TEST(Dominators, InstructionLevel) {
  Context Ctx;
  auto M = parseModuleOrDie(DiamondIR, Ctx);
  Function *F = M->getFunction("f");
  DominatorTree DT(*F);
  BasicBlock *Entry = F->getBlockByName("entry");
  BasicBlock *Left = F->getBlockByName("left");
  BasicBlock *Join = F->getBlockByName("join");

  const Instruction *Cmp = Entry->front();
  const Instruction *X = Left->front();
  const Instruction *Phi = Join->front();
  const Instruction *Ret = Join->back();

  // Within-block ordering.
  EXPECT_TRUE(DT.dominates(Cmp, Entry->back()));
  EXPECT_FALSE(DT.dominates(Entry->back(), Cmp));
  // Cross-block: defs dominate uses along the CFG.
  EXPECT_TRUE(DT.dominates(Cmp, Ret));
  EXPECT_FALSE(DT.dominates(X, Cmp));
  // Phi uses are checked at the end of the incoming block.
  EXPECT_TRUE(DT.dominates(X, Phi));
  // Non-instruction values dominate everything.
  EXPECT_TRUE(DT.dominates(F->getArg(0), Ret));
  EXPECT_TRUE(DT.dominates(Ctx.getInt64(1), Phi));
}

} // namespace
