//===- tests/ir/LocalTest.cpp - DCE utility tests -------------------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ir/Local.h"

#include "ir/BasicBlock.h"
#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/Module.h"
#include "ir/Verifier.h"
#include "parser/Parser.h"

#include <gtest/gtest.h>

using namespace lslp;

namespace {

TEST(Local, ErasesDeadChains) {
  Context Ctx;
  auto M = parseModuleOrDie(R"(
global @A = [8 x i64]
define void @f(i64 %i) {
entry:
  %p = gep i64, ptr @A, i64 %i
  %v = load i64, ptr %p
  %x = add i64 %v, 1
  %y = mul i64 %x, 2
  ret void
}
)",
                            Ctx);
  Function *F = M->getFunction("f");
  // The whole chain is dead: y has no uses, then x, v, p in turn.
  EXPECT_EQ(removeTriviallyDeadInstructions(*F), 4u);
  EXPECT_EQ(F->getInstructionCount(), 1u); // Only ret remains.
  EXPECT_TRUE(verifyFunction(*F));
}

TEST(Local, KeepsStoresAndTheirInputs) {
  Context Ctx;
  auto M = parseModuleOrDie(R"(
global @A = [8 x i64]
define void @f(i64 %i) {
entry:
  %p = gep i64, ptr @A, i64 %i
  %v = load i64, ptr %p
  %x = add i64 %v, 1
  store i64 %x, ptr %p
  ret void
}
)",
                            Ctx);
  Function *F = M->getFunction("f");
  EXPECT_EQ(removeTriviallyDeadInstructions(*F), 0u);
  EXPECT_EQ(F->getInstructionCount(), 5u);
}

TEST(Local, IsTriviallyDeadPredicates) {
  Context Ctx;
  auto M = parseModuleOrDie(R"(
global @A = [8 x i64]
define void @f(i64 %i) {
entry:
  %p = gep i64, ptr @A, i64 %i
  %dead = add i64 %i, 1
  store i64 %i, ptr %p
  ret void
}
)",
                            Ctx);
  BasicBlock *BB = M->getFunction("f")->getEntryBlock();
  const Instruction *Gep = BB->front();
  const Instruction *Term = BB->getTerminator();
  Instruction *Dead = nullptr;
  Instruction *Store = nullptr;
  for (const auto &I : *BB) {
    if (I->getName() == "dead")
      Dead = I.get();
    if (isa<StoreInst>(I.get()))
      Store = I.get();
  }
  EXPECT_FALSE(isTriviallyDead(Gep));   // Used by the store.
  EXPECT_TRUE(isTriviallyDead(Dead));   // Pure, unused.
  EXPECT_FALSE(isTriviallyDead(Store)); // Side effect.
  EXPECT_FALSE(isTriviallyDead(Term));  // Terminator.
}

TEST(Local, CrossBlockUsesKeepValuesAlive) {
  Context Ctx;
  auto M = parseModuleOrDie(R"(
define i64 @f(i64 %a) {
entry:
  %x = add i64 %a, 1
  br label %next
next:
  ret i64 %x
}
)",
                            Ctx);
  Function *F = M->getFunction("f");
  EXPECT_EQ(removeTriviallyDeadInstructions(*F), 0u);
}

} // namespace
