//===- tests/ir/FunctionModuleTest.cpp - Function/Module/Block API tests --------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ir/BasicBlock.h"
#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"

#include <gtest/gtest.h>

using namespace lslp;

namespace {

TEST(Module, GlobalCreationAndLookup) {
  Context Ctx;
  Module M(Ctx, "m");
  GlobalArray *A = M.createGlobal("A", Ctx.getInt64Ty(), 128);
  GlobalArray *B = M.createGlobal("B", Ctx.getDoubleTy(), 16);
  EXPECT_EQ(M.getGlobal("A"), A);
  EXPECT_EQ(M.getGlobal("B"), B);
  EXPECT_EQ(M.getGlobal("C"), nullptr);
  EXPECT_EQ(A->getType(), Ctx.getPtrTy());
  EXPECT_EQ(A->getSizeInBytes(), 1024u);
  EXPECT_EQ(B->getSizeInBytes(), 128u);
  EXPECT_EQ(M.globals().size(), 2u);
}

TEST(Module, FunctionLookup) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = Function::create(&M, "foo", Ctx.getVoidTy(), {}, {});
  EXPECT_EQ(M.getFunction("foo"), F);
  EXPECT_EQ(M.getFunction("bar"), nullptr);
  EXPECT_EQ(F->getParent(), &M);
}

TEST(Function, ArgumentsAndBlocks) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = Function::create(&M, "f", Ctx.getInt64Ty(),
                                 {Ctx.getInt64Ty(), Ctx.getPtrTy()},
                                 {"n", "p"});
  EXPECT_EQ(F->getNumArgs(), 2u);
  EXPECT_EQ(F->getArg(0)->getName(), "n");
  EXPECT_EQ(F->getArg(1)->getType(), Ctx.getPtrTy());
  EXPECT_EQ(F->getArgByName("p"), F->getArg(1));
  EXPECT_EQ(F->getArgByName("q"), nullptr);
  EXPECT_EQ(F->getArg(1)->getArgNo(), 1u);

  EXPECT_TRUE(F->empty());
  BasicBlock *Entry = BasicBlock::create(Ctx, "entry", F);
  BasicBlock *Exit = BasicBlock::create(Ctx, "exit", F);
  EXPECT_EQ(F->size(), 2u);
  EXPECT_EQ(F->getEntryBlock(), Entry);
  EXPECT_EQ(F->getBlockByName("exit"), Exit);
  EXPECT_EQ(F->getBlockByName("nope"), nullptr);
}

TEST(Function, InstructionCount) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = Function::create(&M, "f", Ctx.getVoidTy(), {}, {});
  BasicBlock *BB1 = BasicBlock::create(Ctx, "a", F);
  BasicBlock *BB2 = BasicBlock::create(Ctx, "b", F);
  IRBuilder IRB(BB1);
  IRB.createAdd(Ctx.getInt64(1), Ctx.getInt64(2));
  IRB.createBr(BB2);
  IRB.setInsertPoint(BB2);
  IRB.createRet();
  EXPECT_EQ(F->getInstructionCount(), 3u);
}

TEST(BasicBlock, DetachAndReinsert) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = Function::create(&M, "f", Ctx.getVoidTy(), {}, {});
  BasicBlock *BB = BasicBlock::create(Ctx, "entry", F);
  IRBuilder IRB(BB);
  auto *I1 = cast<Instruction>(IRB.createAdd(Ctx.getInt64(1), Ctx.getInt64(1)));
  auto *I2 = cast<Instruction>(IRB.createAdd(Ctx.getInt64(2), Ctx.getInt64(2)));
  EXPECT_EQ(BB->size(), 2u);

  std::unique_ptr<Instruction> Owned = BB->detach(I2);
  EXPECT_EQ(BB->size(), 1u);
  EXPECT_EQ(Owned->getParent(), nullptr);
  BB->insertBefore(Owned.release(), I1);
  EXPECT_EQ(BB->size(), 2u);
  EXPECT_EQ(BB->front(), I2);
  EXPECT_TRUE(I2->comesBefore(I1));
}

TEST(BasicBlock, TerminatorQueries) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = Function::create(&M, "f", Ctx.getVoidTy(), {}, {});
  BasicBlock *BB = BasicBlock::create(Ctx, "entry", F);
  EXPECT_EQ(BB->getTerminator(), nullptr);
  IRBuilder IRB(BB);
  IRB.createAdd(Ctx.getInt64(1), Ctx.getInt64(1));
  EXPECT_EQ(BB->getTerminator(), nullptr); // Last inst is not a terminator.
  Instruction *Ret = IRB.createRet();
  EXPECT_EQ(BB->getTerminator(), Ret);
}

TEST(BasicBlock, PredecessorsWithRepeatedEdges) {
  // A conditional branch with both targets equal contributes a single
  // predecessor entry.
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = Function::create(&M, "f", Ctx.getInt1Ty() != nullptr
                                              ? Ctx.getVoidTy()
                                              : Ctx.getVoidTy(),
                                 {Ctx.getInt1Ty()}, {"c"});
  BasicBlock *Entry = BasicBlock::create(Ctx, "entry", F);
  BasicBlock *Next = BasicBlock::create(Ctx, "next", F);
  IRBuilder IRB(Entry);
  IRB.createCondBr(F->getArg(0), Next, Next);
  IRB.setInsertPoint(Next);
  IRB.createRet();
  EXPECT_EQ(Next->predecessors().size(), 1u);
  EXPECT_EQ(Entry->successors().size(), 2u); // One per edge.
}

TEST(GlobalArray, Properties) {
  Context Ctx;
  Module M(Ctx, "m");
  GlobalArray *G = M.createGlobal("X", Ctx.getFloatTy(), 10);
  EXPECT_EQ(G->getElementType(), Ctx.getFloatTy());
  EXPECT_EQ(G->getNumElements(), 10u);
  EXPECT_EQ(G->getSizeInBytes(), 40u);
  EXPECT_TRUE(isa<GlobalArray>(static_cast<Value *>(G)));
}

} // namespace
