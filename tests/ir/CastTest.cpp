//===- tests/ir/CastTest.cpp - Cast instruction tests ---------------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "costmodel/TargetTransformInfo.h"
#include "interp/Interpreter.h"
#include "ir/BasicBlock.h"
#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "parser/Parser.h"
#include "vectorizer/SLPVectorizerPass.h"

#include <gtest/gtest.h>

using namespace lslp;

namespace {

TEST(Cast, Validity) {
  Context Ctx;
  Type *I32 = Ctx.getInt32Ty(), *I64 = Ctx.getInt64Ty();
  Type *F64 = Ctx.getDoubleTy();
  EXPECT_TRUE(CastInst::castIsValid(ValueID::SExt, I32, I64));
  EXPECT_FALSE(CastInst::castIsValid(ValueID::SExt, I64, I32));
  EXPECT_FALSE(CastInst::castIsValid(ValueID::SExt, I64, I64));
  EXPECT_TRUE(CastInst::castIsValid(ValueID::Trunc, I64, I32));
  EXPECT_FALSE(CastInst::castIsValid(ValueID::Trunc, I32, I64));
  EXPECT_TRUE(CastInst::castIsValid(ValueID::SIToFP, I64, F64));
  EXPECT_FALSE(CastInst::castIsValid(ValueID::SIToFP, F64, I64));
  EXPECT_TRUE(CastInst::castIsValid(ValueID::FPToSI, F64, I32));
  // Vectors: lane counts must match.
  Type *V2I32 = Ctx.getVectorTy(I32, 2), *V2I64 = Ctx.getVectorTy(I64, 2);
  Type *V4I64 = Ctx.getVectorTy(I64, 4);
  EXPECT_TRUE(CastInst::castIsValid(ValueID::SExt, V2I32, V2I64));
  EXPECT_FALSE(CastInst::castIsValid(ValueID::SExt, V2I32, V4I64));
  EXPECT_FALSE(CastInst::castIsValid(ValueID::SExt, V2I32, I64));
}

TEST(Cast, PrintParseRoundTrip) {
  const char *Src = R"(
define double @f(i32 %a) {
entry:
  %w = sext i32 %a to i64
  %z = zext i32 %a to i64
  %t = trunc i64 %w to i16
  %d = sitofp i64 %w to double
  %back = fptosi double %d to i64
  %sum = add i64 %z, %back
  %d2 = sitofp i64 %sum to double
  ret double %d2
}
)";
  Context Ctx;
  auto M = parseModuleOrDie(Src, Ctx);
  EXPECT_TRUE(verifyModule(*M));
  std::string Printed = moduleToString(*M);
  EXPECT_NE(Printed.find("%w = sext i32 %a to i64"), std::string::npos);
  EXPECT_NE(Printed.find("%t = trunc i64 %w to i16"), std::string::npos);
  Context Ctx2;
  auto M2 = parseModuleOrDie(Printed, Ctx2);
  EXPECT_EQ(moduleToString(*M2), Printed);
}

TEST(Cast, ParserRejectsInvalidCasts) {
  Context Ctx;
  std::string Err;
  EXPECT_EQ(parseModule(R"(
define void @f(i64 %a) {
entry:
  %x = sext i64 %a to i32
  ret void
}
)",
                        Ctx, Err),
            nullptr);
  EXPECT_NE(Err.find("invalid sext"), std::string::npos);
}

TEST(Cast, InterpreterSemantics) {
  Context Ctx;
  auto M = parseModuleOrDie(R"(
define i64 @f(i64 %a) {
entry:
  %t8 = trunc i64 %a to i8
  %s = sext i8 %t8 to i64
  ret i64 %s
}
)",
                            Ctx);
  Interpreter Interp(*M);
  auto Run = [&](uint64_t V) {
    return Interp
        .run(M->getFunction("f"), {RuntimeValue::makeInt(Ctx.getInt64Ty(), V)})
        .ReturnValue.asSInt();
  };
  EXPECT_EQ(Run(0x7F), 127);
  EXPECT_EQ(Run(0x80), -128); // Sign bit of i8 extends.
  EXPECT_EQ(Run(0x1FF), -1);  // Truncation keeps the low byte 0xFF.
}

TEST(Cast, IntFloatConversions) {
  Context Ctx;
  auto M = parseModuleOrDie(R"(
define i64 @f(i64 %a) {
entry:
  %d = sitofp i64 %a to double
  %h = fmul double %d, 0.5
  %r = fptosi double %h to i64
  ret i64 %r
}
)",
                            Ctx);
  Interpreter Interp(*M);
  auto Run = [&](int64_t V) {
    return Interp
        .run(M->getFunction("f"),
             {RuntimeValue::makeInt(Ctx.getInt64Ty(),
                                    static_cast<uint64_t>(V))})
        .ReturnValue.asSInt();
  };
  EXPECT_EQ(Run(10), 5);
  EXPECT_EQ(Run(-7), -3); // fptosi truncates toward zero.
}

TEST(Cast, VerifierCatchesManuallyBrokenCast) {
  // The verifier re-checks cast validity structurally: build via the
  // builder (valid), then swap the operand to one of another type through
  // setOperand, which no constructor re-checks.
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = Function::create(&M, "f", Ctx.getVoidTy(),
                                 {Ctx.getInt32Ty(), Ctx.getInt64Ty()},
                                 {"a", "b"});
  BasicBlock *BB = BasicBlock::create(Ctx, "entry", F);
  IRBuilder IRB(BB);
  CastInst *C = IRB.createSExt(F->getArg(0), Ctx.getInt64Ty());
  IRB.createRet();
  EXPECT_TRUE(verifyFunction(*F));
  C->setOperand(0, F->getArg(1)); // i64 -> i64 sext: invalid.
  EXPECT_FALSE(verifyFunction(*F));
}

TEST(Cast, SLPVectorizesCastGroups) {
  // Widening loads: i32 data extended to i64 before the arithmetic — the
  // sext group must vectorize along with everything else.
  const char *Src = R"(
global @A = [64 x i32]
global @E = [64 x i64]
define void @f(i64 %i) {
entry:
  %i1 = add i64 %i, 1
  %pa0 = gep i32, ptr @A, i64 %i
  %pa1 = gep i32, ptr @A, i64 %i1
  %l0 = load i32, ptr %pa0
  %l1 = load i32, ptr %pa1
  %w0 = sext i32 %l0 to i64
  %w1 = sext i32 %l1 to i64
  %x0 = mul i64 %w0, 3
  %x1 = mul i64 %w1, 3
  %pe0 = gep i64, ptr @E, i64 %i
  %pe1 = gep i64, ptr @E, i64 %i1
  store i64 %x0, ptr %pe0
  store i64 %x1, ptr %pe1
  ret void
}
)";
  SkylakeTTI TTI;
  uint64_t Sums[2];
  for (int Pass = 0; Pass < 2; ++Pass) {
    Context Ctx;
    auto M = parseModuleOrDie(Src, Ctx);
    if (Pass == 1) {
      SLPVectorizerPass VP(VectorizerConfig::slp(), TTI);
      ModuleReport R = VP.runOnModule(*M);
      EXPECT_EQ(R.numAccepted(), 1u);
      ASSERT_TRUE(verifyModule(*M)) << moduleToString(*M);
      bool SawVectorCast = false;
      for (const auto &I : *M->getFunction("f")->getEntryBlock())
        SawVectorCast |= isa<CastInst>(I.get()) &&
                         I->getType()->isVectorTy();
      EXPECT_TRUE(SawVectorCast);
    }
    Interpreter Interp(*M, &TTI);
    for (uint64_t K = 0; K < 64; ++K)
      Interp.writeGlobalInt("A", K, (K * 2654435761u) & 0xFFFFFFFFu);
    Interp.run(M->getFunction("f"),
               {RuntimeValue::makeInt(Ctx.getInt64Ty(), 32)});
    uint64_t Hash = 0;
    for (uint64_t K = 0; K < 64; ++K)
      Hash = Hash * 31 + Interp.readGlobalInt("E", K);
    Sums[Pass] = Hash;
  }
  EXPECT_EQ(Sums[0], Sums[1]);
}

TEST(Cast, MixedSourceTypesGather) {
  // sext from i32 in lane 0 but from i16 in lane 1: the group must not
  // form.
  Context Ctx;
  auto M = parseModuleOrDie(R"(
global @E = [64 x i64]
define void @f(i64 %i, i32 %a, i16 %b) {
entry:
  %i1 = add i64 %i, 1
  %w0 = sext i32 %a to i64
  %w1 = sext i16 %b to i64
  %pe0 = gep i64, ptr @E, i64 %i
  %pe1 = gep i64, ptr @E, i64 %i1
  store i64 %w0, ptr %pe0
  store i64 %w1, ptr %pe1
  ret void
}
)",
                            Ctx);
  SkylakeTTI TTI;
  SLPVectorizerPass VP(VectorizerConfig::lslp(), TTI);
  ModuleReport R = VP.runOnModule(*M);
  // The store group alone saves 1 but the sext gather costs +2: rejected.
  EXPECT_EQ(R.numAccepted(), 0u);
  EXPECT_TRUE(verifyModule(*M));
}

} // namespace
