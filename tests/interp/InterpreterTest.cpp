//===- tests/interp/InterpreterTest.cpp - Interpreter tests --------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "costmodel/TargetTransformInfo.h"
#include "interp/Interpreter.h"
#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/Module.h"
#include "parser/Parser.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace lslp;

namespace {

/// Runs @f from the given module source with i64 arguments and returns the
/// (i64) result.
uint64_t evalI64(const char *Src, std::vector<uint64_t> Args = {}) {
  Context Ctx;
  auto M = parseModuleOrDie(Src, Ctx);
  Interpreter Interp(*M);
  std::vector<RuntimeValue> RTArgs;
  for (uint64_t A : Args)
    RTArgs.push_back(RuntimeValue::makeInt(Ctx.getInt64Ty(), A));
  return Interp.run(M->getFunction("f"), RTArgs).ReturnValue.asUInt();
}

double evalF64(const char *Src, std::vector<double> Args = {}) {
  Context Ctx;
  auto M = parseModuleOrDie(Src, Ctx);
  Interpreter Interp(*M);
  std::vector<RuntimeValue> RTArgs;
  for (double A : Args)
    RTArgs.push_back(RuntimeValue::makeFP(Ctx.getDoubleTy(), A));
  return Interp.run(M->getFunction("f"), RTArgs).ReturnValue.asFP();
}

//===----------------------------------------------------------------------===//
// Integer arithmetic (parameterized over operations)
//===----------------------------------------------------------------------===//

struct BinOpCase {
  const char *Opcode;
  uint64_t A, B, Expected;
};

class IntBinOpTest : public ::testing::TestWithParam<BinOpCase> {};

TEST_P(IntBinOpTest, Evaluates) {
  const BinOpCase &C = GetParam();
  std::string Src = std::string("define i64 @f(i64 %a, i64 %b) {\n"
                                "entry:\n  %r = ") +
                    C.Opcode + " i64 %a, %b\n  ret i64 %r\n}\n";
  EXPECT_EQ(evalI64(Src.c_str(), {C.A, C.B}), C.Expected)
      << C.Opcode << " " << C.A << ", " << C.B;
}

INSTANTIATE_TEST_SUITE_P(
    Arithmetic, IntBinOpTest,
    ::testing::Values(
        BinOpCase{"add", 3, 4, 7},
        BinOpCase{"add", UINT64_MAX, 1, 0}, // Wraps.
        BinOpCase{"sub", 3, 5, uint64_t(-2)},
        BinOpCase{"mul", 7, 6, 42},
        BinOpCase{"mul", 1ULL << 63, 2, 0}, // Wraps.
        BinOpCase{"udiv", 42, 5, 8},
        BinOpCase{"sdiv", uint64_t(-42), 5, uint64_t(-8)},
        BinOpCase{"and", 0b1100, 0b1010, 0b1000},
        BinOpCase{"or", 0b1100, 0b1010, 0b1110},
        BinOpCase{"xor", 0b1100, 0b1010, 0b0110},
        BinOpCase{"shl", 1, 10, 1024},
        BinOpCase{"shl", 1, 64, 0}, // Oversized shift yields zero.
        BinOpCase{"lshr", 1024, 3, 128},
        BinOpCase{"lshr", uint64_t(-1), 63, 1},
        BinOpCase{"ashr", uint64_t(-8), 1, uint64_t(-4)},
        BinOpCase{"ashr", uint64_t(-1), 70, uint64_t(-1)}));

//===----------------------------------------------------------------------===//
// ICmp predicates (parameterized)
//===----------------------------------------------------------------------===//

struct CmpCase {
  const char *Pred;
  uint64_t A, B;
  bool Expected;
};

class ICmpTest : public ::testing::TestWithParam<CmpCase> {};

TEST_P(ICmpTest, Evaluates) {
  const CmpCase &C = GetParam();
  std::string Src = std::string("define i64 @f(i64 %a, i64 %b) {\n"
                                "entry:\n  %c = icmp ") +
                    C.Pred +
                    " i64 %a, %b\n"
                    "  %r = select i1 %c, i64 1, i64 0\n  ret i64 %r\n}\n";
  EXPECT_EQ(evalI64(Src.c_str(), {C.A, C.B}), C.Expected ? 1u : 0u)
      << C.Pred << " " << C.A << ", " << C.B;
}

INSTANTIATE_TEST_SUITE_P(
    Predicates, ICmpTest,
    ::testing::Values(CmpCase{"eq", 4, 4, true}, CmpCase{"eq", 4, 5, false},
                      CmpCase{"ne", 4, 5, true}, CmpCase{"ne", 4, 4, false},
                      CmpCase{"slt", uint64_t(-1), 0, true},
                      CmpCase{"slt", 0, uint64_t(-1), false},
                      CmpCase{"sle", 3, 3, true},
                      CmpCase{"sgt", 0, uint64_t(-1), true},
                      CmpCase{"sge", uint64_t(-2), uint64_t(-2), true},
                      CmpCase{"ult", 0, uint64_t(-1), true},
                      CmpCase{"ult", uint64_t(-1), 0, false},
                      CmpCase{"ule", 7, 7, true},
                      CmpCase{"ugt", uint64_t(-1), 0, true},
                      CmpCase{"uge", 8, 9, false}));

//===----------------------------------------------------------------------===//
// Floating point
//===----------------------------------------------------------------------===//

TEST(Interpreter, FPArithmetic) {
  EXPECT_DOUBLE_EQ(evalF64(R"(
define double @f(double %a, double %b) {
entry:
  %s = fadd double %a, %b
  %d = fsub double %s, 1.0
  %m = fmul double %d, %b
  %q = fdiv double %m, 2.0
  ret double %q
}
)",
                           {2.5, 4.0}),
                   ((2.5 + 4.0 - 1.0) * 4.0) / 2.0);
}

TEST(Interpreter, FloatPrecisionIsSingle) {
  // Float-typed arithmetic must round to binary32 on every operation.
  Context Ctx;
  auto M = parseModuleOrDie(R"(
global @F = [4 x float]
define void @f() {
entry:
  %p = gep float, ptr @F, i64 0
  %v = load float, ptr %p
  %r = fmul float %v, %v
  %q = gep float, ptr @F, i64 1
  store float %r, ptr %q
  ret void
}
)",
                            Ctx);
  Interpreter Interp(*M);
  Interp.writeGlobalFP("F", 0, 1.1);
  Interp.run(M->getFunction("f"));
  float Expected = float(1.1) * float(1.1);
  EXPECT_EQ(Interp.readGlobalFP("F", 1), double(Expected));
}

//===----------------------------------------------------------------------===//
// Memory and globals
//===----------------------------------------------------------------------===//

TEST(Interpreter, GlobalReadWrite) {
  Context Ctx;
  auto M = parseModuleOrDie(R"(
global @A = [8 x i64]
define void @f() {
entry:
  %p0 = gep i64, ptr @A, i64 0
  %p1 = gep i64, ptr @A, i64 1
  %v = load i64, ptr %p0
  %w = add i64 %v, 5
  store i64 %w, ptr %p1
  ret void
}
)",
                            Ctx);
  Interpreter Interp(*M);
  Interp.writeGlobalInt("A", 0, 37);
  Interp.run(M->getFunction("f"));
  EXPECT_EQ(Interp.readGlobalInt("A", 1), 42u);
}

TEST(Interpreter, DistinctGlobalsAreDisjoint) {
  Context Ctx;
  auto M = parseModuleOrDie(R"(
global @A = [4 x i64]
global @B = [4 x i64]
define void @f() {
entry:
  %pa = gep i64, ptr @A, i64 0
  store i64 1, ptr %pa
  %pb = gep i64, ptr @B, i64 0
  store i64 2, ptr %pb
  ret void
}
)",
                            Ctx);
  Interpreter Interp(*M);
  Interp.run(M->getFunction("f"));
  EXPECT_EQ(Interp.readGlobalInt("A", 0), 1u);
  EXPECT_EQ(Interp.readGlobalInt("B", 0), 2u);
  EXPECT_NE(Interp.getGlobalAddress("A"), Interp.getGlobalAddress("B"));
}

TEST(Interpreter, NarrowMemoryAccess) {
  Context Ctx;
  auto M = parseModuleOrDie(R"(
global @A = [8 x i8]
define void @f() {
entry:
  %p = gep i8, ptr @A, i64 3
  store i8 200, ptr %p
  ret void
}
)",
                            Ctx);
  Interpreter Interp(*M);
  Interp.run(M->getFunction("f"));
  EXPECT_EQ(Interp.readGlobalInt("A", 3), 200u);
  EXPECT_EQ(Interp.readGlobalInt("A", 2), 0u); // Neighbors untouched.
  EXPECT_EQ(Interp.readGlobalInt("A", 4), 0u);
}

//===----------------------------------------------------------------------===//
// Control flow
//===----------------------------------------------------------------------===//

TEST(Interpreter, LoopSum) {
  // Sum 0..n-1 through memory.
  Context Ctx;
  auto M = parseModuleOrDie(R"(
global @S = [1 x i64]
define void @f(i64 %n) {
entry:
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %next, %loop ]
  %p = gep i64, ptr @S, i64 0
  %acc = load i64, ptr %p
  %acc2 = add i64 %acc, %i
  store i64 %acc2, ptr %p
  %next = add i64 %i, 1
  %c = icmp slt i64 %next, %n
  br i1 %c, label %loop, label %exit
exit:
  ret void
}
)",
                            Ctx);
  Interpreter Interp(*M);
  Interp.run(M->getFunction("f"),
             {RuntimeValue::makeInt(Ctx.getInt64Ty(), 10)});
  EXPECT_EQ(Interp.readGlobalInt("S", 0), 45u);
}

TEST(Interpreter, PhiSwapIsParallel) {
  // The classic swap idiom: both phis must read the previous iteration's
  // values (simultaneous assignment), not the in-flight ones.
  EXPECT_EQ(evalI64(R"(
define i64 @f(i64 %n) {
entry:
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %next, %loop ]
  %x = phi i64 [ 1, %entry ], [ %y, %loop ]
  %y = phi i64 [ 2, %entry ], [ %x, %loop ]
  %next = add i64 %i, 1
  %c = icmp slt i64 %next, %n
  br i1 %c, label %loop, label %exit
exit:
  %r = mul i64 %x, 10
  %r2 = add i64 %r, %y
  ret i64 %r2
}
)",
                    {3}),
            // Three iterations: (x,y) goes (1,2) -> (2,1) -> (1,2).
            12u);
}

TEST(Interpreter, ConditionalBranching) {
  const char *Src = R"(
define i64 @f(i64 %a) {
entry:
  %c = icmp sgt i64 %a, 10
  br i1 %c, label %big, label %small
big:
  br label %done
small:
  br label %done
done:
  %r = phi i64 [ 100, %big ], [ 7, %small ]
  ret i64 %r
}
)";
  EXPECT_EQ(evalI64(Src, {50}), 100u);
  EXPECT_EQ(evalI64(Src, {3}), 7u);
}

//===----------------------------------------------------------------------===//
// Vector operations
//===----------------------------------------------------------------------===//

TEST(Interpreter, VectorLoadComputeStore) {
  Context Ctx;
  auto M = parseModuleOrDie(R"(
global @A = [8 x i64]
define void @f() {
entry:
  %p = gep i64, ptr @A, i64 0
  %v = load <4 x i64>, ptr %p
  %w = mul <4 x i64> %v, <i64 1, i64 2, i64 3, i64 4>
  %q = gep i64, ptr @A, i64 4
  store <4 x i64> %w, ptr %q
  ret void
}
)",
                            Ctx);
  Interpreter Interp(*M);
  for (uint64_t I = 0; I < 4; ++I)
    Interp.writeGlobalInt("A", I, 10 + I);
  Interp.run(M->getFunction("f"));
  EXPECT_EQ(Interp.readGlobalInt("A", 4), 10u);
  EXPECT_EQ(Interp.readGlobalInt("A", 5), 22u);
  EXPECT_EQ(Interp.readGlobalInt("A", 6), 36u);
  EXPECT_EQ(Interp.readGlobalInt("A", 7), 52u);
}

TEST(Interpreter, InsertExtractShuffle) {
  EXPECT_EQ(evalI64(R"(
define i64 @f(i64 %a, i64 %b) {
entry:
  %v0 = insertelement <2 x i64> undef, i64 %a, i32 0
  %v1 = insertelement <2 x i64> %v0, i64 %b, i32 1
  %sw = shufflevector <2 x i64> %v1, <2 x i64> %v1, [1, 0]
  %x = extractelement <2 x i64> %sw, i32 0
  %y = extractelement <2 x i64> %sw, i32 1
  %r = sub i64 %x, %y
  ret i64 %r
}
)",
                    {3, 10}),
            7u);
}

TEST(Interpreter, ShuffleSelectsAcrossInputs) {
  EXPECT_EQ(evalI64(R"(
define i64 @f(i64 %a, i64 %b) {
entry:
  %v0 = insertelement <2 x i64> undef, i64 %a, i32 0
  %v1 = insertelement <2 x i64> %v0, i64 %a, i32 1
  %w0 = insertelement <2 x i64> undef, i64 %b, i32 0
  %w1 = insertelement <2 x i64> %w0, i64 %b, i32 1
  %m = shufflevector <2 x i64> %v1, <2 x i64> %w1, [0, 3]
  %x = extractelement <2 x i64> %m, i32 0
  %y = extractelement <2 x i64> %m, i32 1
  %r = add i64 %x, %y
  ret i64 %r
}
)",
                    {5, 11}),
            16u);
}

//===----------------------------------------------------------------------===//
// Cost accounting
//===----------------------------------------------------------------------===//

TEST(Interpreter, CostAccountingCountsDynamicInstructions) {
  Context Ctx;
  auto M = parseModuleOrDie(R"(
define void @f(i64 %n) {
entry:
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %next, %loop ]
  %next = add i64 %i, 1
  %c = icmp slt i64 %next, %n
  br i1 %c, label %loop, label %exit
exit:
  ret void
}
)",
                            Ctx);
  SkylakeTTI TTI;
  Interpreter Interp(*M, &TTI);
  auto R10 = Interp.run(M->getFunction("f"),
                        {RuntimeValue::makeInt(Ctx.getInt64Ty(), 10)});
  auto R20 = Interp.run(M->getFunction("f"),
                        {RuntimeValue::makeInt(Ctx.getInt64Ty(), 20)});
  // br(entry) + 10*(phi,add,icmp,br) + ret = 42 dynamic instructions.
  EXPECT_EQ(R10.DynamicInsts, 1 + 10 * 4 + 1u);
  EXPECT_GT(R20.TotalCost, R10.TotalCost);
  // phi costs 0, add/icmp/br cost 1 each: 1 + 10*3 + 1.
  EXPECT_EQ(R10.TotalCost, 1 + 10 * 3 + 1u);
}

TEST(Interpreter, VectorFloatingPointOps) {
  Context Ctx;
  auto M = parseModuleOrDie(R"(
global @A = [8 x double]
define void @f() {
entry:
  %p = gep double, ptr @A, i64 0
  %v = load <2 x double>, ptr %p
  %m = fmul <2 x double> %v, <double 2.0, double 0.5>
  %a = fadd <2 x double> %m, <double 1.0, double -1.0>
  %d = fdiv <2 x double> %a, <double 2.0, double 2.0>
  %s = fsub <2 x double> %d, %v
  %q = gep double, ptr @A, i64 2
  store <2 x double> %s, ptr %q
  ret void
}
)",
                            Ctx);
  Interpreter Interp(*M);
  Interp.writeGlobalFP("A", 0, 3.0);
  Interp.writeGlobalFP("A", 1, 8.0);
  Interp.run(M->getFunction("f"));
  EXPECT_DOUBLE_EQ(Interp.readGlobalFP("A", 2), (3.0 * 2.0 + 1.0) / 2.0 - 3.0);
  EXPECT_DOUBLE_EQ(Interp.readGlobalFP("A", 3), (8.0 * 0.5 - 1.0) / 2.0 - 8.0);
}

TEST(Interpreter, WideFloatVectors) {
  // 8 x float (the full 256-bit register for f32).
  Context Ctx;
  auto M = parseModuleOrDie(R"(
global @F = [16 x float]
define void @f() {
entry:
  %p = gep float, ptr @F, i64 0
  %v = load <8 x float>, ptr %p
  %w = fadd <8 x float> %v, %v
  %q = gep float, ptr @F, i64 8
  store <8 x float> %w, ptr %q
  ret void
}
)",
                            Ctx);
  Interpreter Interp(*M);
  for (uint64_t I = 0; I < 8; ++I)
    Interp.writeGlobalFP("F", I, 0.25 * static_cast<double>(I));
  Interp.run(M->getFunction("f"));
  for (uint64_t I = 0; I < 8; ++I)
    EXPECT_EQ(Interp.readGlobalFP("F", 8 + I),
              0.5 * static_cast<double>(I));
}

TEST(Interpreter, OpcodeStatsCollection) {
  Context Ctx;
  auto M = parseModuleOrDie(R"(
global @A = [8 x i64]
define void @f() {
entry:
  %p = gep i64, ptr @A, i64 0
  %v = load <4 x i64>, ptr %p
  %w = add <4 x i64> %v, <i64 1, i64 1, i64 1, i64 1>
  store <4 x i64> %w, ptr %p
  %x = add i64 1, 2
  ret void
}
)",
                            Ctx);
  SkylakeTTI TTI;
  Interpreter Interp(*M, &TTI);
  Interp.setCollectStats(true);
  auto R = Interp.run(M->getFunction("f"));
  EXPECT_EQ(R.VectorOpCounts[ValueID::Load], 1u);
  EXPECT_EQ(R.VectorOpCounts[ValueID::Add], 1u);
  EXPECT_EQ(R.VectorOpCounts[ValueID::Store], 1u);
  EXPECT_EQ(R.ScalarOpCounts[ValueID::Add], 1u);
  EXPECT_EQ(R.ScalarOpCounts[ValueID::Gep], 1u);
  EXPECT_EQ(R.ScalarOpCounts.count(ValueID::Load), 0u);
}

TEST(Interpreter, StatsOffByDefault) {
  Context Ctx;
  auto M = parseModuleOrDie(R"(
define void @f() {
entry:
  %x = add i64 1, 2
  ret void
}
)",
                            Ctx);
  Interpreter Interp(*M);
  auto R = Interp.run(M->getFunction("f"));
  EXPECT_TRUE(R.ScalarOpCounts.empty());
  EXPECT_TRUE(R.VectorOpCounts.empty());
}

TEST(Interpreter, StepLimitTrapsCleanly) {
  Context Ctx;
  auto M = parseModuleOrDie(R"(
define void @f() {
entry:
  br label %loop
loop:
  br label %loop
}
)",
                            Ctx);
  Interpreter Interp(*M);
  Interp.setStepLimit(1000);
  ExecStats S = Interp.run(M->getFunction("f"));
  EXPECT_TRUE(S.Trapped);
  EXPECT_EQ(S.TrapReason, "step limit exceeded (infinite loop?)");
}

TEST(Interpreter, DivisionByZeroTrapsCleanly) {
  Context Ctx;
  auto M = parseModuleOrDie(R"(
define i64 @f(i64 %a) {
entry:
  %r = udiv i64 %a, 0
  ret i64 %r
}
)",
                            Ctx);
  Interpreter Interp(*M);
  ExecStats S = Interp.run(M->getFunction("f"),
                           {RuntimeValue::makeInt(Ctx.getInt64Ty(), 1)});
  EXPECT_TRUE(S.Trapped);
  EXPECT_EQ(S.TrapReason, "udiv by zero");
  // The trap is a result, not an abort: the interpreter object stays
  // usable for further runs.
  ExecStats S2 = Interp.run(M->getFunction("f"),
                            {RuntimeValue::makeInt(Ctx.getInt64Ty(), 0)});
  EXPECT_TRUE(S2.Trapped);
}

TEST(Interpreter, ArgumentMismatchTrapsCleanly) {
  Context Ctx;
  auto M = parseModuleOrDie(R"(
define i64 @f(i64 %a) {
entry:
  ret i64 %a
}
)",
                            Ctx);
  Interpreter Interp(*M);
  ExecStats S = Interp.run(M->getFunction("f"), {});
  EXPECT_TRUE(S.Trapped);
  EXPECT_EQ(S.TrapReason, "argument count mismatch calling @f");
}

} // namespace
