//===- tests/transforms/IfConversionTest.cpp - If-conversion tests -------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "transforms/IfConversion.h"

#include "costmodel/TargetTransformInfo.h"
#include "diag/RemarkEngine.h"
#include "interp/Interpreter.h"
#include "ir/BasicBlock.h"
#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "kernels/Kernels.h"
#include "parser/Parser.h"
#include "vectorizer/SLPVectorizerPass.h"

#include <gtest/gtest.h>

using namespace lslp;

namespace {

struct PassResult {
  unsigned Converted = 0;
  std::string IR;
  std::vector<Remark> Remarks;
};

PassResult runIC(Module &M) {
  RemarkEngine Engine;
  Engine.setKeepRemarks(true);
  PassResult Out;
  Out.Converted = runIfConversion(M, &Engine);
  EXPECT_TRUE(verifyModule(M));
  Out.IR = moduleToString(M);
  Out.Remarks = Engine.remarks();
  return Out;
}

const Remark *findKind(const std::vector<Remark> &Rs, RemarkKind K) {
  for (const Remark &R : Rs)
    if (R.Kind == K)
      return &R;
  return nullptr;
}

std::string argStr(const Remark &R, const std::string &Key) {
  for (const RemarkArg &A : R.Args)
    if (A.Key == Key)
      return A.Str;
  return "";
}

const char *DiamondSrc = R"(
global @A = [8 x i64]
global @O = [8 x i64]
define void @f() {
entry:
  %p = gep i64, ptr @A, i64 0
  %v = load i64, ptr %p
  %c = icmp slt i64 %v, 10
  br i1 %c, label %then, label %else
then:
  %t = add i64 %v, 1
  br label %join
else:
  %e = mul i64 %v, 3
  br label %join
join:
  %m = phi i64 [ %t, %then ], [ %e, %else ]
  %q = gep i64, ptr @O, i64 0
  store i64 %m, ptr %q
  ret void
}
)";

TEST(IfConversion, DiamondBecomesSelect) {
  Context Ctx;
  auto M = parseModuleOrDie(DiamondSrc, Ctx);
  PassResult R = runIC(*M);
  EXPECT_EQ(R.Converted, 1u);
  // The whole function collapses into one straight-line block holding the
  // hoisted arms, the select, and the join's store.
  Function *F = M->getFunction("f");
  EXPECT_EQ(F->size(), 1u);
  EXPECT_NE(R.IR.find("select i1 %c"), std::string::npos);
  const Remark *Conv = findKind(R.Remarks, RemarkKind::IfConverted);
  ASSERT_NE(Conv, nullptr);
  EXPECT_EQ(argStr(*Conv, "shape"), "diamond");
}

TEST(IfConversion, TriangleConverts) {
  Context Ctx;
  auto M = parseModuleOrDie(R"(
global @A = [8 x i64]
global @O = [8 x i64]
define void @f() {
entry:
  %p = gep i64, ptr @A, i64 0
  %v = load i64, ptr %p
  %c = icmp eq i64 %v, 0
  br i1 %c, label %then, label %join
then:
  %t = shl i64 %v, 2
  br label %join
join:
  %m = phi i64 [ %t, %then ], [ %v, %entry ]
  %q = gep i64, ptr @O, i64 1
  store i64 %m, ptr %q
  ret void
}
)",
                            Ctx);
  PassResult R = runIC(*M);
  EXPECT_EQ(R.Converted, 1u);
  EXPECT_EQ(M->getFunction("f")->size(), 1u);
  const Remark *Conv = findKind(R.Remarks, RemarkKind::IfConverted);
  ASSERT_NE(Conv, nullptr);
  EXPECT_EQ(argStr(*Conv, "shape"), "triangle");
}

TEST(IfConversion, StoreInArmBailsWithRemark) {
  Context Ctx;
  auto M = parseModuleOrDie(R"(
global @A = [8 x i64]
global @O = [8 x i64]
define void @f(i1 %c) {
entry:
  br i1 %c, label %then, label %else
then:
  %q = gep i64, ptr @O, i64 0
  store i64 7, ptr %q
  br label %join
else:
  br label %join
join:
  ret void
}
)",
                            Ctx);
  PassResult R = runIC(*M);
  EXPECT_EQ(R.Converted, 0u);
  EXPECT_EQ(M->getFunction("f")->size(), 4u); // CFG untouched.
  const Remark *Skip = findKind(R.Remarks, RemarkKind::IfConversionSkipped);
  ASSERT_NE(Skip, nullptr);
  EXPECT_EQ(argStr(*Skip, "reason"), "store-in-arm");
  // The fixpoint loop re-scans the function; the skip is reported once.
  unsigned Skips = 0;
  for (const Remark &Rm : R.Remarks)
    if (Rm.Kind == RemarkKind::IfConversionSkipped)
      ++Skips;
  EXPECT_EQ(Skips, 1u);
}

TEST(IfConversion, LoadInArmBails) {
  // Hoisting the load would run it unconditionally; the engines
  // bounds-check memory, so the guard may be all that prevents a trap.
  Context Ctx;
  auto M = parseModuleOrDie(R"(
global @A = [8 x i64]
global @O = [8 x i64]
define void @f(i1 %c, i64 %i) {
entry:
  br i1 %c, label %then, label %join
then:
  %p = gep i64, ptr @A, i64 %i
  %v = load i64, ptr %p
  br label %join
join:
  %m = phi i64 [ %v, %then ], [ 0, %entry ]
  %q = gep i64, ptr @O, i64 0
  store i64 %m, ptr %q
  ret void
}
)",
                            Ctx);
  PassResult R = runIC(*M);
  EXPECT_EQ(R.Converted, 0u);
  const Remark *Skip = findKind(R.Remarks, RemarkKind::IfConversionSkipped);
  ASSERT_NE(Skip, nullptr);
  EXPECT_EQ(argStr(*Skip, "reason"), "load-in-arm");
}

TEST(IfConversion, TrappingDivideBailsConstantDivideConverts) {
  const char *Fmt = R"(
global @O = [8 x i64]
define void @f(i1 %c, i64 %a, i64 %b) {
entry:
  br i1 %c, label %then, label %else
then:
  %t = sdiv i64 %a, DIVISOR
  br label %join
else:
  %e = add i64 %a, 1
  br label %join
join:
  %m = phi i64 [ %t, %then ], [ %e, %else ]
  %q = gep i64, ptr @O, i64 0
  store i64 %m, ptr %q
  ret void
}
)";
  struct Case {
    const char *Divisor;
    bool Converts;
  } Cases[] = {
      {"%b", false}, // Unknown divisor: may be 0.
      {"0", false},  // Certain trap.
      {"-1", false}, // INT_MIN / -1 overflow-traps in LaneOps.
      {"3", true},   // Constant non-zero, non-minus-one: speculatable.
  };
  for (const Case &C : Cases) {
    SCOPED_TRACE(C.Divisor);
    std::string Src(Fmt);
    Src.replace(Src.find("DIVISOR"), 7, C.Divisor);
    Context Ctx;
    auto M = parseModuleOrDie(Src, Ctx);
    PassResult R = runIC(*M);
    EXPECT_EQ(R.Converted, C.Converts ? 1u : 0u);
    if (!C.Converts) {
      const Remark *Skip =
          findKind(R.Remarks, RemarkKind::IfConversionSkipped);
      ASSERT_NE(Skip, nullptr);
      EXPECT_EQ(argStr(*Skip, "reason"), "trapping-divide");
    }
  }
}

TEST(IfConversion, NestedDiamondsCollapseToOneBlock) {
  // An inner diamond inside the outer's then-arm: the fixpoint converts
  // the inner one first (flattening the arm into a legal block), then the
  // outer one.
  Context Ctx;
  auto M = parseModuleOrDie(R"(
global @A = [8 x i64]
global @O = [8 x i64]
define void @f() {
entry:
  %p = gep i64, ptr @A, i64 0
  %v = load i64, ptr %p
  %c0 = icmp slt i64 %v, 100
  br i1 %c0, label %outer.then, label %outer.join
outer.then:
  %c1 = icmp slt i64 %v, 10
  br i1 %c1, label %inner.then, label %inner.else
inner.then:
  %a = add i64 %v, 1
  br label %inner.join
inner.else:
  %b = add i64 %v, 2
  br label %inner.join
inner.join:
  %inner = phi i64 [ %a, %inner.then ], [ %b, %inner.else ]
  br label %outer.join
outer.join:
  %m = phi i64 [ %inner, %inner.join ], [ %v, %entry ]
  %q = gep i64, ptr @O, i64 0
  store i64 %m, ptr %q
  ret void
}
)",
                            Ctx);
  PassResult R = runIC(*M);
  EXPECT_EQ(R.Converted, 2u);
  EXPECT_EQ(M->getFunction("f")->size(), 1u);
}

TEST(IfConversion, PreservesSemantics) {
  // The flattened function must compute exactly what the branchy one did,
  // for inputs driving both sides of every branch.
  SkylakeTTI TTI;
  uint64_t Sums[2];
  for (int Pass = 0; Pass < 2; ++Pass) {
    Context Ctx;
    auto M = parseModuleOrDie(DiamondSrc, Ctx);
    if (Pass == 1) {
      EXPECT_EQ(runIfConversion(*M), 1u);
    }
    Interpreter Interp(*M, &TTI);
    initKernelMemory(Interp, *M);
    Interp.run(M->getFunction("f"), {});
    Sums[Pass] = checksumGlobal(Interp, *M, "O");
  }
  EXPECT_EQ(Sums[0], Sums[1]);
}

TEST(IfConversion, BranchyKernelNowVectorizes) {
  // Four diamond-merged values stored to adjacent slots. With the CFG
  // intact the seed collector sees four single-store blocks' worth of
  // nothing; flattened, it sees a 4-wide store group fed by selects.
  const char *Src = R"(
global @A = [8 x i64]
global @B = [8 x i64]
global @O = [8 x i64]
define void @f() {
entry:
  %pa0 = gep i64, ptr @A, i64 0
  %pa1 = gep i64, ptr @A, i64 1
  %pa2 = gep i64, ptr @A, i64 2
  %pa3 = gep i64, ptr @A, i64 3
  %a0 = load i64, ptr %pa0
  %a1 = load i64, ptr %pa1
  %a2 = load i64, ptr %pa2
  %a3 = load i64, ptr %pa3
  %pb0 = gep i64, ptr @B, i64 0
  %b0 = load i64, ptr %pb0
  %c = icmp slt i64 %b0, 16
  br i1 %c, label %then, label %else
then:
  %t0 = add i64 %a0, 1
  %t1 = add i64 %a1, 1
  %t2 = add i64 %a2, 1
  %t3 = add i64 %a3, 1
  br label %join
else:
  %e0 = mul i64 %a0, 3
  %e1 = mul i64 %a1, 3
  %e2 = mul i64 %a2, 3
  %e3 = mul i64 %a3, 3
  br label %join
join:
  %m0 = phi i64 [ %t0, %then ], [ %e0, %else ]
  %m1 = phi i64 [ %t1, %then ], [ %e1, %else ]
  %m2 = phi i64 [ %t2, %then ], [ %e2, %else ]
  %m3 = phi i64 [ %t3, %then ], [ %e3, %else ]
  %q0 = gep i64, ptr @O, i64 0
  %q1 = gep i64, ptr @O, i64 1
  %q2 = gep i64, ptr @O, i64 2
  %q3 = gep i64, ptr @O, i64 3
  store i64 %m0, ptr %q0
  store i64 %m1, ptr %q1
  store i64 %m2, ptr %q2
  store i64 %m3, ptr %q3
  ret void
}
)";
  SkylakeTTI TTI;
  uint64_t Sums[2];
  for (int Pass = 0; Pass < 2; ++Pass) {
    Context Ctx;
    auto M = parseModuleOrDie(Src, Ctx);
    SLPVectorizerPass VP(VectorizerConfig::lslp(), TTI);
    if (Pass == 0) {
      // Branchy: the phis keep the trees out of reach.
      EXPECT_EQ(VP.runOnModule(*M).numAccepted(), 0u);
    } else {
      EXPECT_EQ(runIfConversion(*M), 1u);
      EXPECT_GT(VP.runOnModule(*M).numAccepted(), 0u);
    }
    ASSERT_TRUE(verifyModule(*M));
    Interpreter Interp(*M, &TTI);
    initKernelMemory(Interp, *M);
    Interp.run(M->getFunction("f"), {});
    Sums[Pass] = checksumGlobal(Interp, *M, "O");
  }
  EXPECT_EQ(Sums[0], Sums[1]);
}

TEST(IfConversion, DeterministicAcrossRuns) {
  // Two independent runs over the same input produce byte-identical IR —
  // the property the CI determinism gate checks end to end.
  std::string IRs[2];
  for (int Run = 0; Run < 2; ++Run) {
    Context Ctx;
    auto M = parseModuleOrDie(DiamondSrc, Ctx);
    runIfConversion(*M);
    IRs[Run] = moduleToString(*M);
  }
  EXPECT_EQ(IRs[0], IRs[1]);
}

} // namespace
