//===- tests/transforms/CFGCorpusTest.cpp - Branchy/loop corpus replay ----===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A curated corpus of branchy and loop-carrying kernels replayed through the
/// differential oracle with the CFG pipeline (if-conversion + unroll) pinned
/// on and three-way engine parity enabled. Each entry is executed scalar
/// (untransformed) and transformed on the tree-walker, the vm, and — when the
/// host supports it — the native jit; every output byte, return lane, and
/// ExecStats field must agree across all of them. The corpus covers both
/// sides of every legality rule: shapes the passes convert/unroll and shapes
/// they must refuse.
///
//===----------------------------------------------------------------------===//

#include "fuzz/DifferentialOracle.h"

#include "costmodel/TargetTransformInfo.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "parser/Parser.h"
#include "transforms/IfConversion.h"
#include "transforms/LoopUnroll.h"
#include "vectorizer/SLPVectorizerPass.h"

#include <gtest/gtest.h>

using namespace lslp;

namespace {

struct CorpusEntry {
  const char *Name;
  const char *Src;
  /// Whether the CFG pipeline is expected to unlock at least one accepted
  /// pack that the plain vectorizer cannot find.
  bool UnlocksVectorization;
};

/// Four independent diamonds feeding four adjacent stores: branchy until
/// if-conversion flattens the block, then a textbook 4-wide store seed.
const char *BranchyQuad = R"(
global @A = [16 x i64]
global @B = [16 x i64]
global @O = [16 x i64]
define void @f() {
entry:
  %p0 = gep i64, ptr @A, i64 0
  %a0 = load i64, ptr %p0
  %p1 = gep i64, ptr @A, i64 1
  %a1 = load i64, ptr %p1
  %p2 = gep i64, ptr @A, i64 2
  %a2 = load i64, ptr %p2
  %p3 = gep i64, ptr @A, i64 3
  %a3 = load i64, ptr %p3
  %c = icmp slt i64 %a0, 100
  br i1 %c, label %then, label %else
then:
  %t0 = add i64 %a0, 7
  %t1 = add i64 %a1, 7
  %t2 = add i64 %a2, 7
  %t3 = add i64 %a3, 7
  br label %join
else:
  %e0 = mul i64 %a0, 3
  %e1 = mul i64 %a1, 3
  %e2 = mul i64 %a2, 3
  %e3 = mul i64 %a3, 3
  br label %join
join:
  %m0 = phi i64 [ %t0, %then ], [ %e0, %else ]
  %m1 = phi i64 [ %t1, %then ], [ %e1, %else ]
  %m2 = phi i64 [ %t2, %then ], [ %e2, %else ]
  %m3 = phi i64 [ %t3, %then ], [ %e3, %else ]
  %q0 = gep i64, ptr @O, i64 0
  store i64 %m0, ptr %q0
  %q1 = gep i64, ptr @O, i64 1
  store i64 %m1, ptr %q1
  %q2 = gep i64, ptr @O, i64 2
  store i64 %m2, ptr %q2
  %q3 = gep i64, ptr @O, i64 3
  store i64 %m3, ptr %q3
  ret void
}
)";

/// Triangle: the false edge jumps straight to the join.
const char *Triangle = R"(
global @A = [16 x i64]
global @O = [16 x i64]
define void @f() {
entry:
  %p = gep i64, ptr @A, i64 0
  %a = load i64, ptr %p
  %c = icmp sgt i64 %a, 0
  br i1 %c, label %then, label %join
then:
  %t = sub i64 0, %a
  br label %join
join:
  %m = phi i64 [ %t, %then ], [ %a, %entry ]
  %q = gep i64, ptr @O, i64 0
  store i64 %m, ptr %q
  ret void
}
)";

/// Two nested diamonds; the fixpoint loop must flatten both.
const char *NestedDiamonds = R"(
global @A = [16 x i64]
global @O = [16 x i64]
define void @f() {
entry:
  %p = gep i64, ptr @A, i64 0
  %a = load i64, ptr %p
  %c0 = icmp slt i64 %a, 10
  br i1 %c0, label %t0, label %e0
t0:
  %c1 = icmp slt i64 %a, 5
  br i1 %c1, label %t1, label %e1
t1:
  %x1 = add i64 %a, 1
  br label %j1
e1:
  %y1 = add i64 %a, 2
  br label %j1
j1:
  %m1 = phi i64 [ %x1, %t1 ], [ %y1, %e1 ]
  br label %j0
e0:
  %y0 = mul i64 %a, 5
  br label %j0
j0:
  %m0 = phi i64 [ %m1, %j1 ], [ %y0, %e0 ]
  %q = gep i64, ptr @O, i64 0
  store i64 %m0, ptr %q
  ret void
}
)";

/// A store inside an arm: if-conversion must refuse (the arm's store is
/// conditional), and the refused module must still execute identically.
const char *StoreArmBailout = R"(
global @A = [16 x i64]
global @O = [16 x i64]
define void @f() {
entry:
  %p = gep i64, ptr @A, i64 0
  %a = load i64, ptr %p
  %c = icmp slt i64 %a, 50
  br i1 %c, label %then, label %join
then:
  %q0 = gep i64, ptr @O, i64 0
  store i64 %a, ptr %q0
  br label %join
join:
  %q = gep i64, ptr @O, i64 1
  store i64 %a, ptr %q
  ret void
}
)";

/// Division by a runtime value in an arm: speculating it could introduce a
/// trap the original program never reached. Must bail, must still run.
const char *TrappingDivBailout = R"(
global @A = [16 x i64]
global @O = [16 x i64]
define void @f() {
entry:
  %p0 = gep i64, ptr @A, i64 0
  %a = load i64, ptr %p0
  %p1 = gep i64, ptr @A, i64 1
  %b = load i64, ptr %p1
  %c = icmp sgt i64 %b, 0
  br i1 %c, label %then, label %else
then:
  %t = sdiv i64 %a, %b
  br label %join
else:
  br label %join
join:
  %m = phi i64 [ %t, %then ], [ 0, %else ]
  %q = gep i64, ptr @O, i64 0
  store i64 %m, ptr %q
  ret void
}
)";

/// OUT[i] = IN0[i] + IN1[i], trip 8: one lane per iteration until the
/// unroller replicates the body into a 4-wide adjacent store group.
const char *CountedAddLoop = R"(
global @IN0 = [16 x i64]
global @IN1 = [16 x i64]
global @OUT = [16 x i64]
define void @f() {
entry:
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %next, %loop ]
  %p0 = gep i64, ptr @IN0, i64 %i
  %p1 = gep i64, ptr @IN1, i64 %i
  %a = load i64, ptr %p0
  %b = load i64, ptr %p1
  %s = add i64 %a, %b
  %q = gep i64, ptr @OUT, i64 %i
  store i64 %s, ptr %q
  %next = add i64 %i, 1
  %c = icmp ult i64 %next, 8
  br i1 %c, label %loop, label %exit
exit:
  ret void
}
)";

/// Trip 6 with factor 4 requested: the pass falls back to factor 3.
const char *FallbackFactorLoop = R"(
global @IN = [16 x i64]
global @OUT = [16 x i64]
define void @f() {
entry:
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %next, %loop ]
  %p = gep i64, ptr @IN, i64 %i
  %v = load i64, ptr %p
  %x = xor i64 %v, 255
  %q = gep i64, ptr @OUT, i64 %i
  store i64 %x, ptr %q
  %next = add i64 %i, 1
  %c = icmp ult i64 %next, 6
  br i1 %c, label %loop, label %exit
exit:
  ret void
}
)";

/// Prime trip 7 below the factor: the unroller must skip, and the untouched
/// loop must still execute in lockstep across engines.
const char *PrimeTripLoop = R"(
global @IN = [16 x i64]
global @OUT = [16 x i64]
define void @f() {
entry:
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %next, %loop ]
  %p = gep i64, ptr @IN, i64 %i
  %v = load i64, ptr %p
  %x = mul i64 %v, 9
  %q = gep i64, ptr @OUT, i64 %i
  store i64 %x, ptr %q
  %next = add i64 %i, 1
  %c = icmp eq i64 %next, 7
  br i1 %c, label %exit, label %loop
exit:
  ret void
}
)";

/// Accumulator live-out: the unroller's external-use rewrite is on the
/// execution path (the exit block stores %acc.next).
const char *LiveOutAccLoop = R"(
global @IN = [16 x i64]
global @OUT = [16 x i64]
define void @f() {
entry:
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %next, %loop ]
  %acc = phi i64 [ 1, %entry ], [ %acc.next, %loop ]
  %p = gep i64, ptr @IN, i64 %i
  %v = load i64, ptr %p
  %acc.next = add i64 %acc, %v
  %q = gep i64, ptr @OUT, i64 %i
  store i64 %acc.next, ptr %q
  %next = add i64 %i, 1
  %c = icmp ult i64 %next, 8
  br i1 %c, label %loop, label %exit
exit:
  %q2 = gep i64, ptr @OUT, i64 8
  store i64 %acc.next, ptr %q2
  ret void
}
)";

/// Diamond feeding a counted loop: both passes fire in one function, in
/// pipeline order (flatten first, then unroll).
const char *DiamondThenLoop = R"(
global @A = [16 x i64]
global @OUT = [16 x i64]
define void @f() {
entry:
  %pa = gep i64, ptr @A, i64 0
  %a = load i64, ptr %pa
  %c = icmp slt i64 %a, 20
  br i1 %c, label %then, label %else
then:
  %t = add i64 %a, 11
  br label %join
else:
  %e = sub i64 %a, 11
  br label %join
join:
  %bias = phi i64 [ %t, %then ], [ %e, %else ]
  br label %loop
loop:
  %i = phi i64 [ 0, %join ], [ %next, %loop ]
  %p = gep i64, ptr @A, i64 %i
  %v = load i64, ptr %p
  %s = add i64 %v, %bias
  %q = gep i64, ptr @OUT, i64 %i
  store i64 %s, ptr %q
  %next = add i64 %i, 1
  %c2 = icmp ult i64 %next, 8
  br i1 %c2, label %loop, label %exit
exit:
  ret void
}
)";

const CorpusEntry Corpus[] = {
    {"branchy-quad", BranchyQuad, true},
    {"triangle", Triangle, false},
    {"nested-diamonds", NestedDiamonds, false},
    {"store-arm-bailout", StoreArmBailout, false},
    {"trapping-div-bailout", TrappingDivBailout, false},
    {"counted-add-loop", CountedAddLoop, true},
    {"fallback-factor-loop", FallbackFactorLoop, false},
    {"prime-trip-loop", PrimeTripLoop, false},
    {"live-out-acc-loop", LiveOutAccLoop, false},
    {"diamond-then-loop", DiamondThenLoop, true},
};

OracleOptions cfgOracleOptions() {
  OracleOptions Opts;
  VectorizerConfig Cfg = VectorizerConfig::lslp();
  Cfg.EnableIfConversion = true;
  Cfg.EnableLoopUnroll = true;
  Cfg.Name = "LSLP-cfg";
  Opts.Configs = {Cfg};
  Opts.CheckEngineParity = true;
  // The strategy axis is covered by the fuzz tier; here the budget goes to
  // the three-way engine replay.
  Opts.SweepStrategies = false;
  return Opts;
}

TEST(CFGCorpus, ThreeWayEngineParityAcrossCorpus) {
  DifferentialOracle Oracle(cfgOracleOptions());
  for (const CorpusEntry &E : Corpus) {
    OracleVerdict V = Oracle.check(E.Src);
    EXPECT_TRUE(V.Passed) << E.Name << " [" << V.ConfigName
                          << "]: " << V.Reason << "\n"
                          << V.VectorizedIR;
  }
}

TEST(CFGCorpus, PipelineUnlocksVectorization) {
  // The corpus is only a meaningful parity gate if the pipeline actually
  // produces vector code on the entries built for it: without the CFG
  // passes the vectorizer finds nothing, with them it packs.
  SkylakeTTI TTI;
  for (const CorpusEntry &E : Corpus) {
    if (!E.UnlocksVectorization)
      continue;
    unsigned Accepted[2];
    for (int WithPipeline = 0; WithPipeline < 2; ++WithPipeline) {
      Context Ctx;
      auto M = parseModuleOrDie(E.Src, Ctx);
      if (WithPipeline) {
        runIfConversion(*M);
        runLoopUnroll(*M, 4);
      }
      SLPVectorizerPass VP(VectorizerConfig::lslp(), TTI);
      Accepted[WithPipeline] = VP.runOnModule(*M).numAccepted();
    }
    EXPECT_EQ(Accepted[0], 0u) << E.Name;
    EXPECT_GT(Accepted[1], 0u) << E.Name;
  }
}

TEST(CFGCorpus, DefaultSweepIncludesCFGConfig) {
  // The fuzzer's standing sweep must carry the CFG-enabled configuration so
  // every generated module exercises the new passes, not just this corpus.
  bool Found = false;
  for (const VectorizerConfig &C : DifferentialOracle::defaultConfigs())
    if (C.EnableIfConversion && C.EnableLoopUnroll) {
      Found = true;
      EXPECT_EQ(C.Name, "LSLP-cfg");
    }
  EXPECT_TRUE(Found);
}

} // namespace
