//===- tests/transforms/EarlyCSETest.cpp - CSE pass tests ----------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "transforms/EarlyCSE.h"

#include "costmodel/TargetTransformInfo.h"
#include "interp/Interpreter.h"
#include "ir/BasicBlock.h"
#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/Module.h"
#include "ir/Verifier.h"
#include "kernels/Kernels.h"
#include "parser/Parser.h"
#include "vectorizer/SLPVectorizerPass.h"

#include <gtest/gtest.h>

using namespace lslp;

namespace {

unsigned countInsts(Function *F) { return F->getInstructionCount(); }

TEST(EarlyCSE, MergesPureDuplicates) {
  Context Ctx;
  auto M = parseModuleOrDie(R"(
define i64 @f(i64 %a, i64 %b) {
entry:
  %x = add i64 %a, %b
  %y = add i64 %a, %b
  %z = mul i64 %x, %y
  ret i64 %z
}
)",
                            Ctx);
  Function *F = M->getFunction("f");
  EXPECT_EQ(runEarlyCSE(*F), 1u);
  EXPECT_TRUE(verifyFunction(*F));
  EXPECT_EQ(countInsts(F), 3u);
  // %z now multiplies %x by itself.
  Instruction *Z = nullptr;
  for (const auto &I : *F->getEntryBlock())
    if (I->getName() == "z")
      Z = I.get();
  ASSERT_NE(Z, nullptr);
  EXPECT_EQ(Z->getOperand(0), Z->getOperand(1));
}

TEST(EarlyCSE, RespectsOperandOrderAndOpcode) {
  Context Ctx;
  auto M = parseModuleOrDie(R"(
define void @f(i64 %a, i64 %b) {
entry:
  %x = sub i64 %a, %b
  %y = sub i64 %b, %a
  %z = add i64 %a, %b
  ret void
}
)",
                            Ctx);
  // Nothing merges: different operand order / different opcode.
  EXPECT_EQ(runEarlyCSE(*M->getFunction("f")), 0u);
}

TEST(EarlyCSE, MergesLoadsUntilAStoreIntervenes) {
  Context Ctx;
  auto M = parseModuleOrDie(R"(
global @A = [8 x i64]
define void @f(i64 %i) {
entry:
  %p = gep i64, ptr @A, i64 %i
  %v1 = load i64, ptr %p
  %v2 = load i64, ptr %p
  store i64 %v1, ptr %p
  %v3 = load i64, ptr %p
  %v4 = load i64, ptr %p
  ret void
}
)",
                            Ctx);
  Function *F = M->getFunction("f");
  // v2 merges into v1; v4 into v3; the store separates the pairs.
  EXPECT_EQ(runEarlyCSE(*F), 2u);
  EXPECT_TRUE(verifyFunction(*F));
}

TEST(EarlyCSE, DistinguishesICmpPredicates) {
  Context Ctx;
  auto M = parseModuleOrDie(R"(
define void @f(i64 %a, i64 %b) {
entry:
  %c1 = icmp slt i64 %a, %b
  %c2 = icmp sgt i64 %a, %b
  %c3 = icmp slt i64 %a, %b
  ret void
}
)",
                            Ctx);
  EXPECT_EQ(runEarlyCSE(*M->getFunction("f")), 1u); // Only c3 -> c1.
}

TEST(EarlyCSE, DistinguishesGepElementTypes) {
  Context Ctx;
  auto M = parseModuleOrDie(R"(
global @A = [64 x i64]
define void @f(i64 %i) {
entry:
  %p1 = gep i64, ptr @A, i64 %i
  %p2 = gep i32, ptr @A, i64 %i
  %p3 = gep i64, ptr @A, i64 %i
  ret void
}
)",
                            Ctx);
  EXPECT_EQ(runEarlyCSE(*M->getFunction("f")), 1u); // Only p3 -> p1.
}

TEST(EarlyCSE, PreservesSemanticsOnKernels) {
  SkylakeTTI TTI;
  for (const KernelSpec &Spec : getAllKernels()) {
    SCOPED_TRACE(Spec.Name);
    uint64_t Sums[2];
    for (int Pass = 0; Pass < 2; ++Pass) {
      Context Ctx;
      auto M = buildKernelModule(Spec, Ctx);
      if (Pass == 1) {
        runEarlyCSE(*M);
        ASSERT_TRUE(verifyModule(*M));
      }
      Interpreter Interp(*M, &TTI);
      initKernelMemory(Interp, *M);
      Interp.run(M->getFunction(Spec.EntryFunction),
                 {RuntimeValue::makeInt(Ctx.getInt64Ty(), 64)});
      Sums[Pass] = checksumGlobals(Interp, *M, Spec.OutputArrays);
    }
    EXPECT_EQ(Sums[0], Sums[1]);
  }
}

TEST(EarlyCSE, ComposesWithVectorizer) {
  // Redundant loads written naively; CSE turns them into shared values,
  // after which the vectorizer still produces equivalent code.
  const char *Src = R"(
global @A = [64 x i64]
global @E = [64 x i64]
define void @f(i64 %i) {
entry:
  %i1 = add i64 %i, 1
  %pa0 = gep i64, ptr @A, i64 %i
  %pa0b = gep i64, ptr @A, i64 %i
  %pa1 = gep i64, ptr @A, i64 %i1
  %l0 = load i64, ptr %pa0
  %l0b = load i64, ptr %pa0b
  %l1 = load i64, ptr %pa1
  %x0 = mul i64 %l0, %l0b
  %x1 = mul i64 %l1, %l1
  %pe0 = gep i64, ptr @E, i64 %i
  %pe1 = gep i64, ptr @E, i64 %i1
  store i64 %x0, ptr %pe0
  store i64 %x1, ptr %pe1
  ret void
}
)";
  SkylakeTTI TTI;
  uint64_t Sums[2];
  for (int Pass = 0; Pass < 2; ++Pass) {
    Context Ctx;
    auto M = parseModuleOrDie(Src, Ctx);
    if (Pass == 1) {
      EXPECT_EQ(runEarlyCSE(*M), 2u); // pa0b and l0b merge away.
      SLPVectorizerPass VP(VectorizerConfig::lslp(), TTI);
      EXPECT_GT(VP.runOnModule(*M).numAccepted(), 0u);
      ASSERT_TRUE(verifyModule(*M));
    }
    Interpreter Interp(*M, &TTI);
    initKernelMemory(Interp, *M);
    Interp.run(M->getFunction("f"),
               {RuntimeValue::makeInt(Ctx.getInt64Ty(), 7)});
    Sums[Pass] = checksumGlobal(Interp, *M, "E");
  }
  EXPECT_EQ(Sums[0], Sums[1]);
}

} // namespace
