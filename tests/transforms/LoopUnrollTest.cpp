//===- tests/transforms/LoopUnrollTest.cpp - Loop unroll tests -----------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "transforms/LoopUnroll.h"

#include "costmodel/TargetTransformInfo.h"
#include "diag/RemarkEngine.h"
#include "interp/Interpreter.h"
#include "ir/BasicBlock.h"
#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/Instruction.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "kernels/Kernels.h"
#include "parser/Parser.h"
#include "transforms/IfConversion.h"
#include "vectorizer/SLPVectorizerPass.h"

#include <gtest/gtest.h>

using namespace lslp;

namespace {

struct PassResult {
  unsigned Unrolled = 0;
  std::string IR;
  std::vector<Remark> Remarks;
};

PassResult runUnroll(Module &M, unsigned Factor) {
  RemarkEngine Engine;
  Engine.setKeepRemarks(true);
  PassResult Out;
  Out.Unrolled = runLoopUnroll(M, Factor, &Engine);
  EXPECT_TRUE(verifyModule(M));
  Out.IR = moduleToString(M);
  Out.Remarks = Engine.remarks();
  return Out;
}

const Remark *findKind(const std::vector<Remark> &Rs, RemarkKind K) {
  for (const Remark &R : Rs)
    if (R.Kind == K)
      return &R;
  return nullptr;
}

std::string argStr(const Remark &R, const std::string &Key) {
  for (const RemarkArg &A : R.Args)
    if (A.Key == Key)
      return A.Str;
  return "";
}

uint64_t argUInt(const Remark &R, const std::string &Key) {
  for (const RemarkArg &A : R.Args)
    if (A.Key == Key)
      return A.UInt;
  return ~uint64_t(0);
}

unsigned countOpcode(BasicBlock *BB, ValueID Opc) {
  unsigned N = 0;
  for (const auto &IPtr : *BB)
    if (IPtr->getOpcode() == Opc)
      ++N;
  return N;
}

/// OUT[i] = 3 * IN[i] over i in [0, 8): the canonical counted loop.
const char *CountedSrc = R"(
global @IN = [16 x i64]
global @OUT = [16 x i64]
define void @f() {
entry:
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %next, %loop ]
  %p = gep i64, ptr @IN, i64 %i
  %v = load i64, ptr %p
  %x = mul i64 %v, 3
  %q = gep i64, ptr @OUT, i64 %i
  store i64 %x, ptr %q
  %next = add i64 %i, 1
  %c = icmp ult i64 %next, 8
  br i1 %c, label %loop, label %exit
exit:
  ret void
}
)";

TEST(LoopUnroll, CountedLoopUnrollsByFactor) {
  Context Ctx;
  auto M = parseModuleOrDie(CountedSrc, Ctx);
  PassResult R = runUnroll(*M, 4);
  EXPECT_EQ(R.Unrolled, 1u);
  BasicBlock *Body = M->getFunction("f")->getBlockByName("loop");
  ASSERT_NE(Body, nullptr);
  // Four replicas of the store, but the intermediate exit compares are
  // dropped: the trip count divides evenly, so only the last one remains.
  EXPECT_EQ(countOpcode(Body, ValueID::Store), 4u);
  EXPECT_EQ(countOpcode(Body, ValueID::ICmp), 1u);
  const Remark *Rm = findKind(R.Remarks, RemarkKind::LoopUnrolled);
  ASSERT_NE(Rm, nullptr);
  EXPECT_EQ(argUInt(*Rm, "trip-count"), 8u);
  EXPECT_EQ(argUInt(*Rm, "factor"), 4u);
}

TEST(LoopUnroll, FactorFallsBackToLargestDivisor) {
  // Trip count 6, requested factor 4: 4 and 5 do not divide 6, so the
  // pass settles on 3 rather than emitting an epilogue.
  std::string Src(CountedSrc);
  Src.replace(Src.find("%next, 8"), 8, "%next, 6");
  Context Ctx;
  auto M = parseModuleOrDie(Src, Ctx);
  PassResult R = runUnroll(*M, 4);
  EXPECT_EQ(R.Unrolled, 1u);
  const Remark *Rm = findKind(R.Remarks, RemarkKind::LoopUnrolled);
  ASSERT_NE(Rm, nullptr);
  EXPECT_EQ(argUInt(*Rm, "trip-count"), 6u);
  EXPECT_EQ(argUInt(*Rm, "factor"), 3u);
}

TEST(LoopUnroll, PrimeTripCountBelowFactorSkips) {
  // Trip count 5 with requested factor 4 has no dividing factor >= 2.
  std::string Src(CountedSrc);
  Src.replace(Src.find("%next, 8"), 8, "%next, 5");
  Context Ctx;
  auto M = parseModuleOrDie(Src, Ctx);
  PassResult R = runUnroll(*M, 4);
  EXPECT_EQ(R.Unrolled, 0u);
  const Remark *Rm = findKind(R.Remarks, RemarkKind::LoopUnrollSkipped);
  ASSERT_NE(Rm, nullptr);
  EXPECT_EQ(argStr(*Rm, "reason"), "no-dividing-factor");
  EXPECT_EQ(argUInt(*Rm, "trip-count"), 5u);
  // Requesting the full trip count unrolls completely.
  Context Ctx2;
  auto M2 = parseModuleOrDie(Src, Ctx2);
  PassResult R2 = runUnroll(*M2, 5);
  EXPECT_EQ(R2.Unrolled, 1u);
  BasicBlock *Body = M2->getFunction("f")->getBlockByName("loop");
  EXPECT_EQ(countOpcode(Body, ValueID::Store), 5u);
}

TEST(LoopUnroll, ArgumentBoundSkipsAsUnknown) {
  Context Ctx;
  auto M = parseModuleOrDie(R"(
global @OUT = [16 x i64]
define void @f(i64 %n) {
entry:
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %next, %loop ]
  %q = gep i64, ptr @OUT, i64 0
  store i64 %i, ptr %q
  %next = add i64 %i, 1
  %c = icmp ult i64 %next, %n
  br i1 %c, label %loop, label %exit
exit:
  ret void
}
)",
                            Ctx);
  PassResult R = runUnroll(*M, 4);
  EXPECT_EQ(R.Unrolled, 0u);
  const Remark *Rm = findKind(R.Remarks, RemarkKind::LoopUnrollSkipped);
  ASSERT_NE(Rm, nullptr);
  EXPECT_EQ(argStr(*Rm, "reason"), "trip-count-unknown");
}

TEST(LoopUnroll, FactorBelowTwoDisables) {
  Context Ctx;
  auto M = parseModuleOrDie(CountedSrc, Ctx);
  EXPECT_EQ(runLoopUnroll(*M, 1), 0u);
  EXPECT_EQ(runLoopUnroll(*M, 0), 0u);
}

TEST(LoopUnroll, PreservesSemanticsWithLiveOut) {
  // An accumulator observed after the loop: external uses must be
  // rewritten to the last replica's value.
  const char *Src = R"(
global @IN = [16 x i64]
global @OUT = [16 x i64]
define void @f() {
entry:
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %next, %loop ]
  %acc = phi i64 [ 5, %entry ], [ %acc.next, %loop ]
  %p = gep i64, ptr @IN, i64 %i
  %v = load i64, ptr %p
  %acc.next = add i64 %acc, %v
  %next = add i64 %i, 1
  %c = icmp eq i64 %next, 8
  br i1 %c, label %exit, label %loop
exit:
  %q = gep i64, ptr @OUT, i64 0
  store i64 %acc.next, ptr %q
  ret void
}
)";
  SkylakeTTI TTI;
  uint64_t Sums[2];
  for (int Pass = 0; Pass < 2; ++Pass) {
    Context Ctx;
    auto M = parseModuleOrDie(Src, Ctx);
    if (Pass == 1) {
      EXPECT_EQ(runLoopUnroll(*M, 4), 1u);
    }
    ASSERT_TRUE(verifyModule(*M));
    Interpreter Interp(*M, &TTI);
    initKernelMemory(Interp, *M);
    Interp.run(M->getFunction("f"), {});
    Sums[Pass] = checksumGlobal(Interp, *M, "OUT");
  }
  EXPECT_EQ(Sums[0], Sums[1]);
}

TEST(LoopUnroll, UnrolledLoopNowVectorizes) {
  // OUT[i] = IN0[i] + IN1[i] one element per iteration: nothing for the
  // seed collector. Unrolled by 4, the body holds a 4-wide adjacent store
  // group over isomorphic load+add trees.
  const char *Src = R"(
global @IN0 = [16 x i64]
global @IN1 = [16 x i64]
global @OUT = [16 x i64]
define void @f() {
entry:
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %next, %loop ]
  %p0 = gep i64, ptr @IN0, i64 %i
  %p1 = gep i64, ptr @IN1, i64 %i
  %a = load i64, ptr %p0
  %b = load i64, ptr %p1
  %s = add i64 %a, %b
  %q = gep i64, ptr @OUT, i64 %i
  store i64 %s, ptr %q
  %next = add i64 %i, 1
  %c = icmp ult i64 %next, 8
  br i1 %c, label %loop, label %exit
exit:
  ret void
}
)";
  SkylakeTTI TTI;
  uint64_t Sums[2];
  for (int Pass = 0; Pass < 2; ++Pass) {
    Context Ctx;
    auto M = parseModuleOrDie(Src, Ctx);
    SLPVectorizerPass VP(VectorizerConfig::lslp(), TTI);
    if (Pass == 0) {
      EXPECT_EQ(VP.runOnModule(*M).numAccepted(), 0u);
    } else {
      EXPECT_EQ(runLoopUnroll(*M, 4), 1u);
      EXPECT_GT(VP.runOnModule(*M).numAccepted(), 0u);
    }
    ASSERT_TRUE(verifyModule(*M));
    Interpreter Interp(*M, &TTI);
    initKernelMemory(Interp, *M);
    Interp.run(M->getFunction("f"), {});
    Sums[Pass] = checksumGlobal(Interp, *M, "OUT");
  }
  EXPECT_EQ(Sums[0], Sums[1]);
}

TEST(LoopUnroll, PipelineDeterministicAcrossRunsAndJobs) {
  // The full CFG pipeline plus the vectorizer at --jobs=1 and --jobs=4
  // must print byte-identical modules (the CI determinism gate's
  // property, checked here at the API level).
  SkylakeTTI TTI;
  std::string IRs[2];
  for (int Run = 0; Run < 2; ++Run) {
    Context Ctx;
    auto M = parseModuleOrDie(CountedSrc, Ctx);
    runIfConversion(*M);
    runLoopUnroll(*M, 4);
    SLPVectorizerPass VP(VectorizerConfig::lslp(), TTI);
    VP.runOnModule(*M, Run == 0 ? 1u : 4u);
    IRs[Run] = moduleToString(*M);
  }
  EXPECT_EQ(IRs[0], IRs[1]);
}

} // namespace
