//===- tests/smoke/SmokeTest.cpp - End-to-end pipeline smoke test ------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "costmodel/TargetTransformInfo.h"
#include "interp/Interpreter.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "kernels/Kernels.h"
#include "vectorizer/SLPVectorizerPass.h"

#include <gtest/gtest.h>

using namespace lslp;

namespace {

struct RunOutcome {
  uint64_t Checksum;
  uint64_t Cost;
  int StaticCost;
  unsigned Accepted;
};

RunOutcome runKernel(const KernelSpec &Spec, const VectorizerConfig *Config) {
  Context Ctx;
  SkylakeTTI TTI;
  std::unique_ptr<Module> M = buildKernelModule(Spec, Ctx);
  std::vector<std::string> Errors;
  EXPECT_TRUE(verifyModule(*M, &Errors)) << "pre-vectorize verify failed";
  for (const std::string &E : Errors)
    ADD_FAILURE() << E;

  int StaticCost = 0;
  unsigned Accepted = 0;
  if (Config) {
    SLPVectorizerPass Pass(*Config, TTI);
    ModuleReport Report = Pass.runOnModule(*M);
    StaticCost = Report.acceptedCost();
    Accepted = Report.numAccepted();
    Errors.clear();
    EXPECT_TRUE(verifyModule(*M, &Errors))
        << "post-vectorize verify failed:\n" << moduleToString(*M);
    for (const std::string &E : Errors)
      ADD_FAILURE() << E;
  }

  Interpreter Interp(*M, &TTI);
  initKernelMemory(Interp, *M);
  Function *F = M->getFunction(Spec.EntryFunction);
  EXPECT_NE(F, nullptr);
  auto Result = Interp.run(
      F, {RuntimeValue::makeInt(Ctx.getInt64Ty(), Spec.DefaultN)});
  return {checksumGlobals(Interp, *M, Spec.OutputArrays), Result.TotalCost,
          StaticCost, Accepted};
}

TEST(Smoke, MotivationLoadsMatchesPaperCosts) {
  const KernelSpec *Spec = findKernel("motivation-loads");
  ASSERT_NE(Spec, nullptr);

  RunOutcome O3 = runKernel(*Spec, nullptr);

  VectorizerConfig SLP = VectorizerConfig::slp();
  RunOutcome SLPRun = runKernel(*Spec, &SLP);
  // Paper Figure 2(c): the vanilla SLP graph has cost 0 -> not vectorized.
  EXPECT_EQ(SLPRun.Accepted, 0u);
  EXPECT_EQ(SLPRun.Checksum, O3.Checksum);

  VectorizerConfig LSLP = VectorizerConfig::lslp();
  RunOutcome LSLPRun = runKernel(*Spec, &LSLP);
  // Paper Figure 2(d): LSLP vectorizes with cost -6.
  EXPECT_EQ(LSLPRun.Accepted, 1u);
  EXPECT_EQ(LSLPRun.StaticCost, -6);
  EXPECT_EQ(LSLPRun.Checksum, O3.Checksum);
  EXPECT_LT(LSLPRun.Cost, O3.Cost);
}

TEST(Smoke, AllKernelsSemanticallyEquivalentUnderLSLP) {
  VectorizerConfig LSLP = VectorizerConfig::lslp();
  for (const KernelSpec &Spec : getAllKernels()) {
    SCOPED_TRACE(Spec.Name);
    RunOutcome O3 = runKernel(Spec, nullptr);
    RunOutcome L = runKernel(Spec, &LSLP);
    EXPECT_EQ(L.Checksum, O3.Checksum);
  }
}

} // namespace
