//===- tests/diag/RemarkPipelineTest.cpp - Decision-trace integration ----------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Runs the motivating kernel (paper Figure 2) through the real pipeline
// with a retaining RemarkEngine attached and asserts the exact sequence of
// decision remarks under SLP vs LSLP. This pins the paper's story in the
// remark stream itself: plain operand reordering cannot untangle the
// crossed B/C loads (gathers, cost-rejected), while look-ahead resolves
// the shl tie and the whole tree vectorizes (cost-accepted).
//
//===----------------------------------------------------------------------===//

#include "costmodel/TargetTransformInfo.h"
#include "diag/RemarkEngine.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "parser/Parser.h"
#include "vectorizer/Config.h"
#include "vectorizer/SLPVectorizerPass.h"

#include <gtest/gtest.h>

using namespace lslp;

namespace {

const char *Figure2 = R"(
module "figure2"

global @A = [8 x i64]
global @B = [8 x i64]
global @C = [8 x i64]

define void @figure2(i64 %i) {
entry:
  %i1 = add i64 %i, 1
  %pb0 = gep i64, ptr @B, i64 %i
  %pc0 = gep i64, ptr @C, i64 %i
  %pb1 = gep i64, ptr @B, i64 %i1
  %pc1 = gep i64, ptr @C, i64 %i1
  %b0 = load i64, ptr %pb0
  %c0 = load i64, ptr %pc0
  %c1 = load i64, ptr %pc1
  %b1 = load i64, ptr %pb1
  %sh0l = shl i64 %b0, 1
  %sh0r = shl i64 %c0, 2
  %sh1l = shl i64 %c1, 3
  %sh1r = shl i64 %b1, 4
  %and0 = and i64 %sh0l, %sh0r
  %and1 = and i64 %sh1l, %sh1r
  %pa0 = gep i64, ptr @A, i64 %i
  %pa1 = gep i64, ptr @A, i64 %i1
  store i64 %and0, ptr %pa0
  store i64 %and1, ptr %pa1
  ret void
}
)";

/// Runs Figure 2 under \p Config and returns the retained remark stream.
std::vector<Remark> traceFigure2(const VectorizerConfig &Base,
                                 RemarkEngine &Engine) {
  Context Ctx;
  auto M = parseModuleOrDie(Figure2, Ctx);
  Engine.setKeepRemarks(true);
  VectorizerConfig Config = Base;
  Config.Remarks = &Engine;
  SkylakeTTI TTI;
  SLPVectorizerPass Pass(Config, TTI);
  Pass.runOnModule(*M);
  return Engine.remarks();
}

std::vector<RemarkKind> kindsOf(const std::vector<Remark> &Remarks) {
  std::vector<RemarkKind> Kinds;
  for (const Remark &R : Remarks)
    Kinds.push_back(R.Kind);
  return Kinds;
}

TEST(RemarkPipeline, Figure2UnderSLPGathersAndRejects) {
  RemarkEngine Engine;
  std::vector<Remark> Trace = traceFigure2(VectorizerConfig::slp(), Engine);
  // Plain reordering: the and-node reorders (no look-ahead scores), the
  // crossed loads degrade to gathers, and the graph is cost-rejected.
  std::vector<RemarkKind> Expected = {
      RemarkKind::SeedFound,
      RemarkKind::NodeBuilt,      // store bundle
      RemarkKind::NodeBuilt,      // and bundle
      RemarkKind::ReorderChoice,  // opcode-only reordering, no look-ahead
      RemarkKind::NodeBuilt,      // shl bundle (left operands)
      RemarkKind::GatherFallback, // crossed loads: non-consecutive
      RemarkKind::GatherFallback, // constant shift amounts
      RemarkKind::NodeBuilt,      // shl bundle (right operands)
      RemarkKind::GatherFallback,
      RemarkKind::GatherFallback,
      RemarkKind::CostNode,
      RemarkKind::CostNode,
      RemarkKind::CostNode,
      RemarkKind::CostNode,
      RemarkKind::CostNode,
      RemarkKind::CostNode,
      RemarkKind::CostNode,
      RemarkKind::CostNode,
      RemarkKind::CostRejected,
  };
  EXPECT_EQ(kindsOf(Trace), Expected);
  EXPECT_EQ(Engine.count(RemarkKind::LookAheadScore), 0u);

  // The gather reasons are part of the contract, not free text.
  for (const Remark &R : Trace)
    if (R.Kind == RemarkKind::GatherFallback) {
      const RemarkArg *Reason = R.getArg("reason");
      ASSERT_NE(Reason, nullptr);
      EXPECT_TRUE(Reason->Str == "non-consecutive-loads" ||
                  Reason->Str == "non-instruction-lane")
          << Reason->Str;
    }
}

TEST(RemarkPipeline, Figure2UnderLSLPLookAheadAccepts) {
  RemarkEngine Engine;
  std::vector<Remark> Trace = traceFigure2(VectorizerConfig::lslp(), Engine);
  // Look-ahead scores both shl operand orders, picks the one that lines up
  // the B/C loads, and the whole tree vectorizes: both load bundles become
  // real nodes and the only remaining gather is the constant shift amounts.
  std::vector<RemarkKind> Expected = {
      RemarkKind::SeedFound,
      RemarkKind::NodeBuilt,       // store bundle
      RemarkKind::NodeBuilt,       // and bundle
      RemarkKind::LookAheadScore,  // candidate: keep order
      RemarkKind::LookAheadScore,  // candidate: swap lane 1
      RemarkKind::ReorderChoice,
      RemarkKind::NodeBuilt,       // shl bundle (left)
      RemarkKind::NodeBuilt,       // B-load bundle
      RemarkKind::GatherFallback,  // constant shift amounts
      RemarkKind::NodeBuilt,       // shl bundle (right)
      RemarkKind::NodeBuilt,       // C-load bundle
      RemarkKind::GatherFallback,  // constant shift amounts
      RemarkKind::CostNode,
      RemarkKind::CostNode,
      RemarkKind::CostNode,
      RemarkKind::CostNode,
      RemarkKind::CostNode,
      RemarkKind::CostNode,
      RemarkKind::CostNode,
      RemarkKind::CostNode,
      RemarkKind::CostAccepted,
  };
  EXPECT_EQ(kindsOf(Trace), Expected);

  // Exactly one look-ahead candidate was chosen.
  unsigned Chosen = 0;
  for (const Remark &R : Trace)
    if (R.Kind == RemarkKind::LookAheadScore) {
      const RemarkArg *C = R.getArg("chosen");
      ASSERT_NE(C, nullptr);
      Chosen += C->Flag;
    }
  EXPECT_EQ(Chosen, 1u);

  // Under LSLP the only gathers left are the constant shift amounts.
  for (const Remark &R : Trace)
    if (R.Kind == RemarkKind::GatherFallback) {
      EXPECT_EQ(R.getArg("reason")->Str, "non-instruction-lane");
    }

  // The final verdict carries the paper's accepted cost.
  const Remark &Verdict = Trace.back();
  ASSERT_NE(Verdict.getArg("cost"), nullptr);
  EXPECT_LT(Verdict.getArg("cost")->Int, 0);
}

TEST(RemarkPipeline, StreamIsDeterministicAcrossRuns) {
  RemarkEngine E1, E2;
  std::vector<Remark> T1 = traceFigure2(VectorizerConfig::lslp(), E1);
  std::vector<Remark> T2 = traceFigure2(VectorizerConfig::lslp(), E2);
  ASSERT_EQ(T1.size(), T2.size());
  for (size_t I = 0; I < T1.size(); ++I) {
    EXPECT_TRUE(T1[I] == T2[I]) << "remark " << I << " differs";
    EXPECT_EQ(T1[I].toJSON(), T2[I].toJSON());
  }
}

TEST(RemarkPipeline, AnchorsNameRealInstructions) {
  // Every anchored remark must point inside @figure2/entry with a sane
  // instruction index (the block has 20 instructions including ret, and
  // all remarks anchor before codegen rewrites the block). The only
  // unanchored remarks are the cost lines for the two constant-lane
  // gathers (shift amounts), which have no instruction to point at.
  RemarkEngine Engine;
  for (const Remark &R : traceFigure2(VectorizerConfig::lslp(), Engine)) {
    if (R.Function.empty()) {
      EXPECT_EQ(R.Kind, RemarkKind::CostNode);
      EXPECT_EQ(R.getArg("node")->Str, "gather");
      EXPECT_EQ(R.InstIndex, -1);
      continue;
    }
    EXPECT_EQ(R.Function, "figure2");
    EXPECT_EQ(R.Block, "entry");
    if (R.InstIndex >= 0) {
      EXPECT_LT(R.InstIndex, 20);
    }
  }
}

} // namespace
