//===- tests/diag/StrategyTraceTest.cpp - Strategy-differential trace ----------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The exact-trace regression test for the packing strategies on the
// motivating kernel (paper Figure 2), under the vanilla-SLP config where
// greedy provably picks the worse pack set: opcode-only reordering leaves
// the crossed B/C loads in place and the graph is cost-rejected, while
// the global pack-set solver finds the lane-1 swap and commits at cost
// -6. Both full remark traces are pinned kind-for-kind — the greedy trace
// must be byte-identical to the pre-strategy pipeline's (the strategy
// knob may not perturb greedy by a single remark), and the global trace
// must be the greedy-shaped rebuild of the winning plan plus exactly one
// global-packing-solved remark with the solver's accounting.
//
//===----------------------------------------------------------------------===//

#include "costmodel/TargetTransformInfo.h"
#include "diag/RemarkEngine.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "parser/Parser.h"
#include "vectorizer/Config.h"
#include "vectorizer/SLPVectorizerPass.h"

#include <gtest/gtest.h>

using namespace lslp;

namespace {

const char *Figure2 = R"(
module "figure2"

global @A = [8 x i64]
global @B = [8 x i64]
global @C = [8 x i64]

define void @figure2(i64 %i) {
entry:
  %i1 = add i64 %i, 1
  %pb0 = gep i64, ptr @B, i64 %i
  %pc0 = gep i64, ptr @C, i64 %i
  %pb1 = gep i64, ptr @B, i64 %i1
  %pc1 = gep i64, ptr @C, i64 %i1
  %b0 = load i64, ptr %pb0
  %c0 = load i64, ptr %pc0
  %c1 = load i64, ptr %pc1
  %b1 = load i64, ptr %pb1
  %sh0l = shl i64 %b0, 1
  %sh0r = shl i64 %c0, 2
  %sh1l = shl i64 %c1, 3
  %sh1r = shl i64 %b1, 4
  %and0 = and i64 %sh0l, %sh0r
  %and1 = and i64 %sh1l, %sh1r
  %pa0 = gep i64, ptr @A, i64 %i
  %pa1 = gep i64, ptr @A, i64 %i1
  store i64 %and0, ptr %pa0
  store i64 %and1, ptr %pa1
  ret void
}
)";

std::vector<Remark> trace(VectorizerConfig::PackingStrategyKind Strategy,
                          RemarkEngine &Engine, int *AcceptedCost = nullptr) {
  Context Ctx;
  auto M = parseModuleOrDie(Figure2, Ctx);
  Engine.setKeepRemarks(true);
  VectorizerConfig Config = VectorizerConfig::slp();
  Config.Strategy = Strategy;
  Config.Remarks = &Engine;
  SkylakeTTI TTI;
  SLPVectorizerPass Pass(Config, TTI);
  ModuleReport Report = Pass.runOnModule(*M);
  if (AcceptedCost)
    *AcceptedCost = Report.acceptedCost();
  return Engine.remarks();
}

std::vector<RemarkKind> kindsOf(const std::vector<Remark> &Remarks) {
  std::vector<RemarkKind> Kinds;
  for (const Remark &R : Remarks)
    Kinds.push_back(R.Kind);
  return Kinds;
}

TEST(StrategyTrace, GreedyRejectsTheCrossedPackSet) {
  // Identical to the historical SLP trace: the strategy knob must not
  // perturb greedy's decision stream by a single remark.
  RemarkEngine Engine;
  int Cost = 0;
  std::vector<Remark> T =
      trace(VectorizerConfig::PackingStrategyKind::Greedy, Engine, &Cost);
  std::vector<RemarkKind> Expected = {
      RemarkKind::SeedFound,
      RemarkKind::NodeBuilt,      // store bundle
      RemarkKind::NodeBuilt,      // and bundle
      RemarkKind::ReorderChoice,  // opcode-only, leaves the cross in place
      RemarkKind::NodeBuilt,      // shl bundle (left operands)
      RemarkKind::GatherFallback, // crossed loads: non-consecutive
      RemarkKind::GatherFallback, // constant shift amounts
      RemarkKind::NodeBuilt,      // shl bundle (right operands)
      RemarkKind::GatherFallback,
      RemarkKind::GatherFallback,
      RemarkKind::CostNode,
      RemarkKind::CostNode,
      RemarkKind::CostNode,
      RemarkKind::CostNode,
      RemarkKind::CostNode,
      RemarkKind::CostNode,
      RemarkKind::CostNode,
      RemarkKind::CostNode,
      RemarkKind::CostRejected,
  };
  EXPECT_EQ(kindsOf(T), Expected);
  EXPECT_EQ(Cost, 0); // nothing committed
  EXPECT_EQ(Engine.count(RemarkKind::GlobalPackingSolved), 0u);
  EXPECT_EQ(Engine.count(RemarkKind::GlobalPackingBudget), 0u);
}

TEST(StrategyTrace, GlobalCommitsTheSwappedPackSetAtLowerCost) {
  // The winning plan's rebuild has greedy's trace shape — seed, nodes,
  // one reorder-choice (now marked strategy=global and changed), the two
  // load bundles as real nodes, only the constant shift amounts left as
  // gathers — plus exactly one global-packing-solved remark between the
  // build and the cost walk.
  RemarkEngine Engine;
  int Cost = 0;
  std::vector<Remark> T =
      trace(VectorizerConfig::PackingStrategyKind::Global, Engine, &Cost);
  std::vector<RemarkKind> Expected = {
      RemarkKind::SeedFound,
      RemarkKind::NodeBuilt,           // store bundle
      RemarkKind::NodeBuilt,           // and bundle
      RemarkKind::ReorderChoice,       // the solver's lane-1 swap
      RemarkKind::NodeBuilt,           // shl bundle (left)
      RemarkKind::NodeBuilt,           // B-load bundle
      RemarkKind::GatherFallback,      // constant shift amounts
      RemarkKind::NodeBuilt,           // shl bundle (right)
      RemarkKind::NodeBuilt,           // C-load bundle
      RemarkKind::GatherFallback,      // constant shift amounts
      RemarkKind::GlobalPackingSolved, // 2 candidates, 1 site, delta -6
      RemarkKind::CostNode,
      RemarkKind::CostNode,
      RemarkKind::CostNode,
      RemarkKind::CostNode,
      RemarkKind::CostNode,
      RemarkKind::CostNode,
      RemarkKind::CostNode,
      RemarkKind::CostNode,
      RemarkKind::CostAccepted,
  };
  EXPECT_EQ(kindsOf(T), Expected);
  EXPECT_LT(Cost, 0); // the strategy axis's whole point

  for (const Remark &R : T) {
    if (R.Kind == RemarkKind::ReorderChoice) {
      EXPECT_EQ(R.getArg("strategy")->Str, "global");
      EXPECT_TRUE(R.getArg("changed")->Flag);
    }
    if (R.Kind == RemarkKind::GatherFallback)
      EXPECT_EQ(R.getArg("reason")->Str, "non-instruction-lane");
    if (R.Kind == RemarkKind::GlobalPackingSolved) {
      // The solver's accounting: the greedy baseline plus the single
      // lane-1 swap alternative of the one 2-slot site.
      EXPECT_EQ(R.getArg("candidates")->UInt, 2u);
      EXPECT_EQ(R.getArg("sites")->UInt, 1u);
      EXPECT_EQ(R.getArg("greedy-cost")->Int, 0);
      EXPECT_EQ(R.getArg("cost")->Int, -6);
      EXPECT_EQ(R.getArg("delta")->Int, -6);
      EXPECT_TRUE(R.getArg("improved")->Flag);
    }
  }

  // And the verdict itself carries the solved cost.
  const Remark &Verdict = T.back();
  EXPECT_EQ(Verdict.getArg("cost")->Int, -6);
}

TEST(StrategyTrace, GlobalCostBeatsGreedyCost) {
  RemarkEngine E1, E2;
  int GreedyCost = 0, GlobalCost = 0;
  trace(VectorizerConfig::PackingStrategyKind::Greedy, E1, &GreedyCost);
  trace(VectorizerConfig::PackingStrategyKind::Global, E2, &GlobalCost);
  EXPECT_LT(GlobalCost, GreedyCost);
}

TEST(StrategyTrace, GlobalStreamIsDeterministicAcrossRuns) {
  RemarkEngine E1, E2;
  std::vector<Remark> T1 =
      trace(VectorizerConfig::PackingStrategyKind::Global, E1);
  std::vector<Remark> T2 =
      trace(VectorizerConfig::PackingStrategyKind::Global, E2);
  ASSERT_EQ(T1.size(), T2.size());
  for (size_t I = 0; I < T1.size(); ++I) {
    EXPECT_TRUE(T1[I] == T2[I]) << "remark " << I << " differs";
    EXPECT_EQ(T1[I].toJSON(), T2[I].toJSON());
  }
}

} // namespace
