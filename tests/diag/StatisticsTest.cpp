//===- tests/diag/StatisticsTest.cpp - Counter registry tests ------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "diag/Statistics.h"

#include "support/OStream.h"

#include <gtest/gtest.h>

using namespace lslp;

namespace {

// Translation-unit-local counters, exactly as pass code declares them.
LSLP_STATISTIC(NumTestBumps, "diag-test", "Counter bumped by the unit test");
LSLP_STATISTIC(NumTestMax, "diag-test", "updateMax probe");

TEST(StatisticsTest, BumpAndAddRegisterLazily) {
  ++NumTestBumps;
  NumTestBumps += 4;
  EXPECT_EQ(NumTestBumps.value(), 5u);

  // Once touched, the counter shows up in the registry's sorted dump.
  bool Found = false;
  for (const Statistic *S : StatisticsRegistry::instance().all())
    if (std::string(S->getName()) == "NumTestBumps") {
      Found = true;
      EXPECT_STREQ(S->getComponent(), "diag-test");
      EXPECT_EQ(S->value(), 5u);
    }
  EXPECT_TRUE(Found);
}

TEST(StatisticsTest, UpdateMaxKeepsMaximum) {
  NumTestMax.updateMax(3);
  NumTestMax.updateMax(9);
  NumTestMax.updateMax(5);
  EXPECT_EQ(NumTestMax.value(), 9u);
}

TEST(StatisticsTest, ResetAllZeroesButKeepsRegistration) {
  ++NumTestBumps;
  ASSERT_GT(NumTestBumps.value(), 0u);
  StatisticsRegistry::instance().resetAll();
  EXPECT_EQ(NumTestBumps.value(), 0u);
  EXPECT_EQ(NumTestMax.value(), 0u);

  // Registration survives: the counter is still listed, still bumpable,
  // and the registry reports all-zero until the next bump.
  bool Listed = false;
  for (const Statistic *S : StatisticsRegistry::instance().all())
    Listed |= std::string(S->getName()) == "NumTestBumps";
  EXPECT_TRUE(Listed);

  ++NumTestBumps;
  EXPECT_EQ(NumTestBumps.value(), 1u);
  EXPECT_TRUE(StatisticsRegistry::instance().anyNonZero());
}

TEST(StatisticsTest, DumpOrderIsSortedAndDeterministic) {
  ++NumTestBumps;
  ++NumTestMax;
  std::string A, B;
  {
    StringOStream OS(A);
    StatisticsRegistry::instance().printJSON(OS);
  }
  {
    StringOStream OS(B);
    StatisticsRegistry::instance().printJSON(OS);
  }
  EXPECT_EQ(A, B);
  // JSON keys are "component.name" and include our counters.
  EXPECT_NE(A.find("\"diag-test.NumTestBumps\""), std::string::npos) << A;
  EXPECT_NE(A.find("\"diag-test.NumTestMax\""), std::string::npos) << A;
  // Sorted by key: NumTestBumps precedes NumTestMax.
  EXPECT_LT(A.find("NumTestBumps"), A.find("NumTestMax"));
}

TEST(StatisticsTest, TextTableOmitsZeroCounters) {
  StatisticsRegistry::instance().resetAll();
  ++NumTestBumps; // NumTestMax stays zero.
  std::string Text;
  StringOStream OS(Text);
  StatisticsRegistry::instance().printText(OS);
  // The table lists value/component/description for non-zero counters only.
  EXPECT_NE(Text.find("Counter bumped by the unit test"), std::string::npos)
      << Text;
  EXPECT_EQ(Text.find("updateMax probe"), std::string::npos) << Text;
}

} // namespace
