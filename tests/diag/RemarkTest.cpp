//===- tests/diag/RemarkTest.cpp - Remark record and sink tests ----------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "diag/Remark.h"
#include "diag/RemarkEngine.h"

#include "support/OStream.h"

#include <gtest/gtest.h>

using namespace lslp;

namespace {

Remark makeFullRemark() {
  return Remark(RemarkKind::MultiNodeFormed, "graph-builder")
      .inFunction("foo")
      .inBlock("entry")
      .atIndex(7)
      .arg("opcode", "and")
      .arg("lanes", 2)
      .arg("chain", static_cast<uint64_t>(3))
      .arg("score", 2.5)
      .arg("changed", true);
}

TEST(RemarkKindNames, RoundTripAllKinds) {
  // Every enumerator must have a stable name that parses back to itself.
  for (int K = 0; K <= static_cast<int>(RemarkKind::CSEHit); ++K) {
    RemarkKind Kind = static_cast<RemarkKind>(K);
    RemarkKind Back;
    ASSERT_TRUE(remarkKindFromName(remarkKindName(Kind), Back));
    EXPECT_EQ(Kind, Back);
  }
  RemarkKind Unused;
  EXPECT_FALSE(remarkKindFromName("not-a-kind", Unused));
  EXPECT_FALSE(remarkKindFromName("", Unused));
}

TEST(RemarkJSON, RoundTripLosslessly) {
  Remark R = makeFullRemark();
  std::string Line = R.toJSON();
  ASSERT_FALSE(Line.empty());
  EXPECT_EQ(Line.back(), '\n');

  Remark Back;
  std::string Err;
  ASSERT_TRUE(Remark::fromJSON(Line, Back, Err)) << Err;
  EXPECT_TRUE(R == Back);
  // And a second serialization is byte-identical (determinism contract).
  EXPECT_EQ(Line, Back.toJSON());
}

TEST(RemarkJSON, RoundTripMinimalRemark) {
  // No function/block/anchor/args: the degenerate record still round-trips.
  Remark R(RemarkKind::SeedRejected, "seed-collector");
  Remark Back;
  std::string Err;
  ASSERT_TRUE(Remark::fromJSON(R.toJSON(), Back, Err)) << Err;
  EXPECT_TRUE(R == Back);
  EXPECT_EQ(Back.InstIndex, -1);
  EXPECT_TRUE(Back.Args.empty());
}

TEST(RemarkJSON, EscapesSpecialCharacters) {
  Remark R = Remark(RemarkKind::SeedFound, "p")
                 .inFunction("we\"ird\\name")
                 .arg("text", std::string("tab\there\nline"));
  Remark Back;
  std::string Err;
  ASSERT_TRUE(Remark::fromJSON(R.toJSON(), Back, Err)) << Err;
  EXPECT_TRUE(R == Back);
}

TEST(RemarkJSON, RejectsMalformedInput) {
  Remark Out;
  std::string Err;
  EXPECT_FALSE(Remark::fromJSON("", Out, Err));
  EXPECT_FALSE(Remark::fromJSON("not json", Out, Err));
  EXPECT_FALSE(Remark::fromJSON("{\"kind\":\"bogus-kind\",\"pass\":\"p\"}",
                                Out, Err));
  EXPECT_FALSE(Remark::fromJSON("{\"pass\":\"p\"}", Out, Err));
}

TEST(RemarkArgs, GetArgFindsByKey) {
  Remark R = makeFullRemark();
  const RemarkArg *Lanes = R.getArg("lanes");
  ASSERT_NE(Lanes, nullptr);
  EXPECT_EQ(Lanes->Ty, RemarkArg::Type::Int);
  EXPECT_EQ(Lanes->Int, 2);
  EXPECT_EQ(R.getArg("no-such-key"), nullptr);
}

TEST(RemarkEngineTest, FansOutToAllSinks) {
  std::string Text, JSON;
  StringOStream TextOS(Text), JSONOS(JSON);
  RemarkEngine Engine;
  Engine.setTextStream(&TextOS);
  Engine.setJSONStream(&JSONOS);
  Engine.setKeepRemarks(true);

  Engine.emit(makeFullRemark());
  Engine.emit(Remark(RemarkKind::SeedFound, "seed-collector"));

  EXPECT_EQ(Engine.numEmitted(), 2u);
  EXPECT_EQ(Engine.count(RemarkKind::SeedFound), 1u);
  EXPECT_EQ(Engine.count(RemarkKind::MultiNodeFormed), 1u);
  EXPECT_EQ(Engine.count(RemarkKind::CostRejected), 0u);
  ASSERT_EQ(Engine.remarks().size(), 2u);

  // Text sink: one "remark:" line per emission, with the anchor spelled out.
  EXPECT_NE(Text.find("remark:"), std::string::npos);
  EXPECT_NE(Text.find("@foo/entry+7"), std::string::npos);
  EXPECT_NE(Text.find("multinode-formed"), std::string::npos);

  // JSONL sink: every line parses back to the retained remark.
  size_t Start = 0, LineNo = 0;
  while (Start < JSON.size()) {
    size_t End = JSON.find('\n', Start);
    ASSERT_NE(End, std::string::npos) << "JSONL line missing newline";
    Remark Back;
    std::string Err;
    ASSERT_TRUE(
        Remark::fromJSON(JSON.substr(Start, End - Start), Back, Err))
        << Err;
    EXPECT_TRUE(Engine.remarks()[LineNo] == Back);
    Start = End + 1;
    ++LineNo;
  }
  EXPECT_EQ(LineNo, 2u);
}

TEST(RemarkEngineTest, ClearForgetsRemarksButKeepsSinks) {
  std::string JSON;
  StringOStream JSONOS(JSON);
  RemarkEngine Engine;
  Engine.setJSONStream(&JSONOS);
  Engine.setKeepRemarks(true);
  Engine.emit(Remark(RemarkKind::SeedFound, "p"));
  Engine.clear();
  EXPECT_EQ(Engine.numEmitted(), 0u);
  EXPECT_TRUE(Engine.remarks().empty());
  EXPECT_EQ(Engine.count(RemarkKind::SeedFound), 0u);
  Engine.emit(Remark(RemarkKind::SeedFound, "p"));
  EXPECT_EQ(Engine.numEmitted(), 1u); // Sink still attached and counting.
}

TEST(RemarkEngineTest, SummaryMentionsCounts) {
  RemarkEngine Engine;
  Engine.emit(Remark(RemarkKind::SeedFound, "p"));
  Engine.emit(Remark(RemarkKind::CostAccepted, "p"));
  Engine.emit(Remark(RemarkKind::CostRejected, "p"));
  std::string S = Engine.summary();
  EXPECT_NE(S.find("1 seed(s)"), std::string::npos) << S;
  EXPECT_NE(S.find("1 accepted"), std::string::npos) << S;
  EXPECT_NE(S.find("1 rejected"), std::string::npos) << S;
}

} // namespace
