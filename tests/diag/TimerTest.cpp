//===- tests/diag/TimerTest.cpp - Timer and TimerGroup tests -------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "diag/Timer.h"

#include "support/OStream.h"

#include <gtest/gtest.h>

using namespace lslp;

namespace {

TEST(TimerTest, AccumulatesActivations) {
  Timer T("t");
  EXPECT_EQ(T.activations(), 0u);
  T.start();
  EXPECT_TRUE(T.isRunning());
  T.stop();
  T.start();
  T.stop();
  EXPECT_FALSE(T.isRunning());
  EXPECT_EQ(T.activations(), 2u);
  EXPECT_GE(T.seconds(), 0.0);
  T.reset();
  EXPECT_EQ(T.activations(), 0u);
  EXPECT_EQ(T.seconds(), 0.0);
}

TEST(TimerGroupTest, GetTimerIsIdempotent) {
  TimerGroup TG("g");
  Timer &A = TG.getTimer("parse");
  Timer &B = TG.getTimer("vectorize");
  EXPECT_NE(&A, &B);
  EXPECT_EQ(&A, &TG.getTimer("parse")); // Same name, same timer.
  EXPECT_EQ(TG.timers().size(), 2u);
  // Creation order (pipeline order) is preserved, not alphabetical.
  EXPECT_EQ(TG.timers()[0]->getName(), "parse");
  EXPECT_EQ(TG.timers()[1]->getName(), "vectorize");
}

TEST(TimerGroupTest, NullTimeRegionIsNoOp) {
  // Call sites pass null when timing is disabled; must not crash.
  TimeRegion R(nullptr);
}

TEST(TimerGroupTest, TimeRegionDrivesTimer) {
  TimerGroup TG("g");
  Timer &T = TG.getTimer("work");
  {
    TimeRegion R(&T);
    EXPECT_TRUE(T.isRunning());
  }
  EXPECT_FALSE(T.isRunning());
  EXPECT_EQ(T.activations(), 1u);
}

TEST(TimerGroupTest, PrintMentionsTimers) {
  TimerGroup TG("lslpc");
  {
    TimeRegion R(&TG.getTimer("parse"));
  }
  std::string Text, JSON;
  {
    StringOStream OS(Text);
    TG.printText(OS);
  }
  {
    StringOStream OS(JSON);
    TG.printJSON(OS);
  }
  EXPECT_NE(Text.find("parse"), std::string::npos) << Text;
  EXPECT_NE(JSON.find("\"group\":\"lslpc\""), std::string::npos) << JSON;
  EXPECT_NE(JSON.find("\"parse\""), std::string::npos) << JSON;
  EXPECT_NE(JSON.find("\"activations\":1"), std::string::npos) << JSON;
}

} // namespace
