//===- tests/integration/StrategyFlagTest.cpp - Strategy flag parsing ----------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The strategy flag surface (`lslpc --slp-strategy=` and bench
// `-strategy=`) funnels through parsePackingStrategy. Unknown names must
// be rejected — never silently defaulted — so a typo in a CI matrix
// entry fails the job instead of quietly re-running greedy.
//
//===----------------------------------------------------------------------===//

#include "vectorizer/Config.h"

#include <gtest/gtest.h>

using namespace lslp;

namespace {

TEST(StrategyFlag, AcceptsTheTwoKnownNames) {
  VectorizerConfig::PackingStrategyKind K =
      VectorizerConfig::PackingStrategyKind::Global;
  EXPECT_TRUE(parsePackingStrategy("greedy", K));
  EXPECT_EQ(K, VectorizerConfig::PackingStrategyKind::Greedy);
  EXPECT_TRUE(parsePackingStrategy("global", K));
  EXPECT_EQ(K, VectorizerConfig::PackingStrategyKind::Global);
}

TEST(StrategyFlag, RejectsUnknownNamesWithoutClobbering) {
  VectorizerConfig::PackingStrategyKind K =
      VectorizerConfig::PackingStrategyKind::Global;
  for (const char *Bad : {"", "Greedy", "GLOBAL", "global ", " greedy",
                          "goSLP", "bottom-up", "greedy,global", "0", "1"}) {
    EXPECT_FALSE(parsePackingStrategy(Bad, K)) << "'" << Bad << "'";
    // A failed parse must leave the caller's config untouched.
    EXPECT_EQ(K, VectorizerConfig::PackingStrategyKind::Global)
        << "'" << Bad << "'";
  }
}

TEST(StrategyFlag, NamesRoundTripThroughTheParser) {
  for (VectorizerConfig::PackingStrategyKind K :
       {VectorizerConfig::PackingStrategyKind::Greedy,
        VectorizerConfig::PackingStrategyKind::Global}) {
    VectorizerConfig::PackingStrategyKind Parsed =
        VectorizerConfig::PackingStrategyKind::Greedy;
    EXPECT_TRUE(parsePackingStrategy(packingStrategyName(K), Parsed));
    EXPECT_EQ(Parsed, K);
  }
}

TEST(StrategyFlag, DefaultConfigsStayGreedy) {
  // The strategy knob defaults off everywhere: all three paper presets
  // must keep byte-identical-to-pre-strategy behavior unless a flag is
  // passed explicitly.
  EXPECT_EQ(VectorizerConfig().Strategy,
            VectorizerConfig::PackingStrategyKind::Greedy);
  EXPECT_EQ(VectorizerConfig::slp().Strategy,
            VectorizerConfig::PackingStrategyKind::Greedy);
  EXPECT_EQ(VectorizerConfig::slpNoReordering().Strategy,
            VectorizerConfig::PackingStrategyKind::Greedy);
  EXPECT_EQ(VectorizerConfig::lslp().Strategy,
            VectorizerConfig::PackingStrategyKind::Greedy);
}

} // namespace
