//===- tests/integration/EndToEndTest.cpp - Pipeline integration tests ---------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "costmodel/TargetTransformInfo.h"
#include "interp/Interpreter.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "kernels/Kernels.h"
#include "parser/Parser.h"
#include "vectorizer/SLPVectorizerPass.h"

#include <gtest/gtest.h>

using namespace lslp;

namespace {

TEST(EndToEnd, VectorizedModulesRoundTripThroughText) {
  // Vectorized IR (with vector types, constant vectors, extracts) must
  // survive print -> parse -> print.
  SkylakeTTI TTI;
  for (const char *Name : {"motivation-multi", "453.vsumsqr", "453.mesh1"}) {
    SCOPED_TRACE(Name);
    const KernelSpec *Spec = findKernel(Name);
    ASSERT_NE(Spec, nullptr);
    Context Ctx;
    auto M = buildKernelModule(*Spec, Ctx);
    SLPVectorizerPass Pass(VectorizerConfig::lslp(), TTI);
    Pass.runOnModule(*M);
    std::string Printed = moduleToString(*M);

    Context Ctx2;
    std::string Err;
    auto M2 = parseModule(Printed, Ctx2, Err);
    ASSERT_NE(M2, nullptr) << Err;
    EXPECT_TRUE(verifyModule(*M2));
    EXPECT_EQ(moduleToString(*M2), Printed);

    // The reparsed vectorized module computes the same results.
    Interpreter I1(*M, &TTI), I2(*M2, &TTI);
    initKernelMemory(I1, *M);
    initKernelMemory(I2, *M2);
    I1.run(M->getFunction(Spec->EntryFunction),
           {RuntimeValue::makeInt(Ctx.getInt64Ty(), 64)});
    I2.run(M2->getFunction(Spec->EntryFunction),
           {RuntimeValue::makeInt(Ctx2.getInt64Ty(), 64)});
    EXPECT_EQ(checksumGlobals(I1, *M, Spec->OutputArrays),
              checksumGlobals(I2, *M2, Spec->OutputArrays));
  }
}

TEST(EndToEnd, PassIsIdempotent) {
  // A second run finds no scalar seeds in already-vectorized code.
  SkylakeTTI TTI;
  for (const KernelSpec *Spec : getFigureKernels()) {
    SCOPED_TRACE(Spec->Name);
    Context Ctx;
    auto M = buildKernelModule(*Spec, Ctx);
    SLPVectorizerPass Pass(VectorizerConfig::lslp(), TTI);
    ModuleReport First = Pass.runOnModule(*M);
    ModuleReport Second = Pass.runOnModule(*M);
    if (First.numAccepted() > 0) {
      EXPECT_EQ(Second.numAccepted(), 0u);
    }
    EXPECT_TRUE(verifyModule(*M));
  }
}

TEST(EndToEnd, VerboseReportsCarryGraphDumps) {
  SkylakeTTI TTI;
  const KernelSpec *Spec = findKernel("motivation-multi");
  Context Ctx;
  auto M = buildKernelModule(*Spec, Ctx);
  SLPVectorizerPass Pass(VectorizerConfig::lslp(), TTI);
  Pass.setVerbose(true);
  ModuleReport R = Pass.runOnModule(*M);
  ASSERT_EQ(R.Functions.size(), 1u);
  ASSERT_EQ(R.Functions[0].Attempts.size(), 1u);
  const GraphAttempt &A = R.Functions[0].Attempts[0];
  EXPECT_NE(A.GraphDump.find("multinode<and x2>"), std::string::npos)
      << A.GraphDump;
  EXPECT_NE(A.GraphDump.find("total cost = -10"), std::string::npos);
  EXPECT_TRUE(A.UsedReordering);
}

TEST(EndToEnd, ReportAccountsMatchAttempts) {
  SkylakeTTI TTI;
  Context Ctx;
  const KernelSpec *Spec = findKernel("453.calc-z3");
  auto M = buildKernelModule(*Spec, Ctx);
  SLPVectorizerPass Pass(VectorizerConfig::lslp(), TTI);
  ModuleReport R = Pass.runOnModule(*M);
  int Sum = 0;
  unsigned Accepted = 0;
  for (const FunctionReport &F : R.Functions)
    for (const GraphAttempt &A : F.Attempts)
      if (A.Accepted) {
        Sum += A.Cost;
        ++Accepted;
      }
  EXPECT_EQ(Sum, R.acceptedCost());
  EXPECT_EQ(Accepted, R.numAccepted());
}

TEST(EndToEnd, FourLaneKernelProducesWideVectors) {
  SkylakeTTI TTI;
  const KernelSpec *Spec = findKernel("453.vsumsqr");
  Context Ctx;
  auto M = buildKernelModule(*Spec, Ctx);
  SLPVectorizerPass Pass(VectorizerConfig::lslp(), TTI);
  ModuleReport R = Pass.runOnModule(*M);
  ASSERT_GT(R.numAccepted(), 0u);
  bool SawFourWide = false;
  for (const auto &BB : *M->getFunction(Spec->EntryFunction))
    for (const auto &I : *BB)
      if (const auto *VT = dyn_cast<VectorType>(I->getType()))
        SawFourWide |= (VT->getNumElements() == 4);
  EXPECT_TRUE(SawFourWide);
}

TEST(EndToEnd, EightWideFloatVectorization) {
  // f32 kernels fill the whole 256-bit register: VF = 8.
  std::string Src = R"(
global @A = [64 x float]
global @E = [64 x float]
define void @f(i64 %i) {
entry:
)";
  for (int L = 0; L < 8; ++L) {
    std::string N = std::to_string(L);
    Src += "  %i" + N + " = add i64 %i, " + N + "\n";
    Src += "  %pa" + N + " = gep float, ptr @A, i64 %i" + N + "\n";
    Src += "  %l" + N + " = load float, ptr %pa" + N + "\n";
    Src += "  %x" + N + " = fmul float %l" + N + ", 2.0\n";
    Src += "  %pe" + N + " = gep float, ptr @E, i64 %i" + N + "\n";
    Src += "  store float %x" + N + ", ptr %pe" + N + "\n";
  }
  Src += "  ret void\n}\n";

  SkylakeTTI TTI;
  uint64_t Sums[2];
  for (int Pass = 0; Pass < 2; ++Pass) {
    Context Ctx;
    auto M = parseModuleOrDie(Src, Ctx);
    if (Pass == 1) {
      SLPVectorizerPass VP(VectorizerConfig::lslp(), TTI);
      ASSERT_EQ(VP.runOnModule(*M).numAccepted(), 1u);
      ASSERT_TRUE(verifyModule(*M));
      bool SawEightWide = false;
      for (const auto &I : *M->getFunction("f")->getEntryBlock())
        if (const auto *VT = dyn_cast<VectorType>(I->getType()))
          SawEightWide |= VT->getNumElements() == 8 &&
                          VT->getElementType()->isFloatTy();
      EXPECT_TRUE(SawEightWide);
    }
    Interpreter Interp(*M, &TTI);
    initKernelMemory(Interp, *M);
    Interp.run(M->getFunction("f"),
               {RuntimeValue::makeInt(Ctx.getInt64Ty(), 16)});
    Sums[Pass] = checksumGlobal(Interp, *M, "E");
  }
  EXPECT_EQ(Sums[0], Sums[1]);
}

TEST(EndToEnd, CycleModelAgreesWithStaticCostDirection) {
  // For the motivation kernels (hot loop = whole program) the dynamic
  // cycle saving must agree in sign with the static cost.
  SkylakeTTI TTI;
  for (const char *Name :
       {"motivation-loads", "motivation-opcodes", "motivation-multi"}) {
    SCOPED_TRACE(Name);
    const KernelSpec *Spec = findKernel(Name);
    uint64_t Costs[2];
    int StaticCost = 0;
    for (int Pass = 0; Pass < 2; ++Pass) {
      Context Ctx;
      auto M = buildKernelModule(*Spec, Ctx);
      if (Pass == 1) {
        SLPVectorizerPass VP(VectorizerConfig::lslp(), TTI);
        StaticCost = VP.runOnModule(*M).acceptedCost();
      }
      Interpreter Interp(*M, &TTI);
      initKernelMemory(Interp, *M);
      Costs[Pass] =
          Interp
              .run(M->getFunction(Spec->EntryFunction),
                   {RuntimeValue::makeInt(Ctx.getInt64Ty(), Spec->DefaultN)})
              .TotalCost;
    }
    ASSERT_LT(StaticCost, 0);
    EXPECT_LT(Costs[1], Costs[0]);
  }
}

} // namespace
