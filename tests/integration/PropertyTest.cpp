//===- tests/integration/PropertyTest.cpp - Randomized property tests ----------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Property-based testing: generates random straight-line programs whose
// lanes are isomorphic modulo commutative-operand permutations (exactly
// the class of inputs LSLP targets, with occasional deliberate opcode
// mismatches), then checks for every configuration:
//
//   1. the vectorized module still verifies,
//   2. it computes bit-identical results,
//   3. the pass is deterministic,
//   4. every accepted graph had a profitable (negative) cost.
//
//===----------------------------------------------------------------------===//

#include "costmodel/TargetTransformInfo.h"
#include "interp/Interpreter.h"
#include "ir/Context.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "support/RNG.h"
#include "vectorizer/SLPVectorizerPass.h"

#include <gtest/gtest.h>

using namespace lslp;

namespace {

/// An expression-tree template instantiated once per lane. Narrow wraps a
/// subtree in trunc-to-i32 + sext-back (exercising cast bundles).
struct ExprTemplate {
  enum Kind { Load, Const, Binop, Narrow } K;
  unsigned ArrayId = 0;           // Load.
  uint64_t ConstVal = 0;          // Const.
  ValueID Opc = ValueID::Add;     // Binop.
  std::unique_ptr<ExprTemplate> L, R;
};

class ProgramGenerator {
public:
  static constexpr unsigned NumArrays = 5;

  ProgramGenerator(uint64_t Seed) : Rng(Seed) {}

  /// Builds the whole module: globals IN0..IN4 and OUT, plus @f().
  std::unique_ptr<Module> generate(Context &Ctx) {
    auto M = std::make_unique<Module>(Ctx, "random");
    for (unsigned I = 0; I < NumArrays; ++I)
      M->createGlobal("IN" + std::to_string(I), Ctx.getInt64Ty(), 64);
    GlobalArray *Out = M->createGlobal("OUT", Ctx.getInt64Ty(), 64);

    Function *F = Function::create(M.get(), "f", Ctx.getVoidTy(), {}, {});
    BasicBlock *BB = BasicBlock::create(Ctx, "entry", F);
    IRBuilder IRB(BB);

    unsigned Lanes = Rng.nextChance(1, 2) ? 2 : 4;
    unsigned Depth = 1 + static_cast<unsigned>(Rng.nextBelow(3));
    std::unique_ptr<ExprTemplate> Template = genTemplate(Depth);

    for (unsigned Lane = 0; Lane != Lanes; ++Lane) {
      Value *V = instantiate(*Template, Lane, IRB, *M);
      Value *Ptr = IRB.createGEP(Ctx.getInt64Ty(), Out,
                                 static_cast<int64_t>(Lane));
      IRB.createStore(V, Ptr);
    }
    IRB.createRet();
    return M;
  }

private:
  std::unique_ptr<ExprTemplate> genTemplate(unsigned Depth) {
    auto T = std::make_unique<ExprTemplate>();
    if (Depth == 0 || Rng.nextChance(1, 5)) {
      if (Rng.nextChance(1, 4)) {
        T->K = ExprTemplate::Const;
        T->ConstVal = Rng.nextBelow(64);
      } else {
        T->K = ExprTemplate::Load;
        T->ArrayId = static_cast<unsigned>(Rng.nextBelow(NumArrays));
      }
      return T;
    }
    if (Rng.nextChance(1, 8)) {
      T->K = ExprTemplate::Narrow;
      T->L = genTemplate(Depth - 1);
      return T;
    }
    T->K = ExprTemplate::Binop;
    static const ValueID Opcodes[] = {ValueID::Add, ValueID::Mul,
                                      ValueID::And, ValueID::Or,
                                      ValueID::Xor, ValueID::Sub,
                                      ValueID::Shl};
    T->Opc = Opcodes[Rng.nextBelow(std::size(Opcodes))];
    T->L = genTemplate(Depth - 1);
    T->R = genTemplate(Depth - 1);
    return T;
  }

  Value *instantiate(const ExprTemplate &T, unsigned Lane, IRBuilder &IRB,
                     Module &M) {
    Context &Ctx = IRB.getContext();
    switch (T.K) {
    case ExprTemplate::Const:
      return Ctx.getInt64(T.ConstVal);
    case ExprTemplate::Load: {
      GlobalArray *G = M.getGlobal("IN" + std::to_string(T.ArrayId));
      Value *Ptr = IRB.createGEP(Ctx.getInt64Ty(), G,
                                 static_cast<int64_t>(Lane));
      return IRB.createLoad(Ctx.getInt64Ty(), Ptr);
    }
    case ExprTemplate::Narrow: {
      Value *Sub = instantiate(*T.L, Lane, IRB, M);
      Value *Narrowed = IRB.createTrunc(Sub, Ctx.getInt32Ty());
      return IRB.createSExt(Narrowed, Ctx.getInt64Ty());
    }
    case ExprTemplate::Binop: {
      Value *L = instantiate(*T.L, Lane, IRB, M);
      Value *R = instantiate(*T.R, Lane, IRB, M);
      ValueID Opc = T.Opc;
      // Occasional deliberate per-lane opcode change: lanes become
      // non-isomorphic and the vectorizer must cope.
      if (Lane != 0 && Rng.nextChance(1, 12))
        Opc = (Opc == ValueID::Add) ? ValueID::Xor : ValueID::Add;
      // Per-lane operand swap at commutative (and, adversarially, also at
      // non-commutative-safe positions we keep ordered).
      if (BinaryOperator::isCommutativeOpcode(Opc) && Rng.nextChance(1, 2))
        std::swap(L, R);
      return IRB.createBinOp(Opc, L, R);
    }
    }
    return nullptr;
  }

  RNG Rng;
};

struct RunResult {
  uint64_t Checksum = 0;
  int StaticCost = 0;
  unsigned Accepted = 0;
  bool Verified = false;
};

RunResult runOnce(uint64_t Seed, const VectorizerConfig *Config) {
  Context Ctx;
  ProgramGenerator Gen(Seed);
  auto M = Gen.generate(Ctx);
  EXPECT_TRUE(verifyModule(*M)) << "generator produced invalid IR";
  SkylakeTTI TTI;
  RunResult Out;
  Out.Verified = true;
  if (Config) {
    SLPVectorizerPass Pass(*Config, TTI);
    ModuleReport R = Pass.runOnModule(*M);
    Out.StaticCost = R.acceptedCost();
    Out.Accepted = R.numAccepted();
    std::vector<std::string> Errors;
    Out.Verified = verifyModule(*M, &Errors);
    EXPECT_TRUE(Out.Verified) << moduleToString(*M);
    for (const GraphAttempt &A :
         R.Functions.empty() ? std::vector<GraphAttempt>{}
                             : R.Functions[0].Attempts)
      if (A.Accepted) {
        EXPECT_LT(A.Cost, 0) << "accepted an unprofitable graph";
      }
  }
  Interpreter Interp(*M, &TTI);
  // Deterministic input values.
  RNG InputRng(Seed * 7919 + 13);
  for (const auto &G : M->globals())
    for (uint64_t I = 0; I < G->getNumElements(); ++I)
      Interp.writeGlobalInt(G->getName(), I, InputRng.nextBelow(1 << 20));
  Interp.run(M->getFunction("f"));
  uint64_t Hash = 0xcbf29ce484222325ULL;
  for (uint64_t I = 0; I < 64; ++I) {
    Hash ^= Interp.readGlobalInt("OUT", I);
    Hash *= 0x100000001b3ULL;
  }
  Out.Checksum = Hash;
  return Out;
}

class RandomProgramProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomProgramProperty, AllConfigsPreserveSemantics) {
  uint64_t Seed = GetParam();
  RunResult Base = runOnce(Seed, nullptr);
  for (const VectorizerConfig &Config :
       {VectorizerConfig::slpNoReordering(), VectorizerConfig::slp(),
        VectorizerConfig::lslp()}) {
    SCOPED_TRACE(Config.Name);
    RunResult Vec = runOnce(Seed, &Config);
    EXPECT_TRUE(Vec.Verified);
    EXPECT_EQ(Vec.Checksum, Base.Checksum);
  }
}

TEST_P(RandomProgramProperty, PassIsDeterministic) {
  uint64_t Seed = GetParam();
  VectorizerConfig LSLP = VectorizerConfig::lslp();
  RunResult A = runOnce(Seed, &LSLP);
  RunResult B = runOnce(Seed, &LSLP);
  EXPECT_EQ(A.StaticCost, B.StaticCost);
  EXPECT_EQ(A.Accepted, B.Accepted);
  EXPECT_EQ(A.Checksum, B.Checksum);
}

TEST_P(RandomProgramProperty, LookAheadLevelsAreAllSound) {
  uint64_t Seed = GetParam();
  RunResult Base = runOnce(Seed, nullptr);
  for (unsigned Level : {0u, 1u, 2u, 4u, 8u}) {
    VectorizerConfig C = VectorizerConfig::lslp(Level);
    SCOPED_TRACE("LA" + std::to_string(Level));
    RunResult Vec = runOnce(Seed, &C);
    EXPECT_EQ(Vec.Checksum, Base.Checksum);
  }
}

TEST_P(RandomProgramProperty, MultiNodeSizesAreAllSound) {
  uint64_t Seed = GetParam();
  RunResult Base = runOnce(Seed, nullptr);
  for (unsigned Size : {1u, 2u, 3u, 8u}) {
    VectorizerConfig C = VectorizerConfig::lslp();
    C.MaxMultiNodeSize = Size;
    SCOPED_TRACE("Multi" + std::to_string(Size));
    RunResult Vec = runOnce(Seed, &C);
    EXPECT_EQ(Vec.Checksum, Base.Checksum);
  }
}

TEST_P(RandomProgramProperty, MaxAggregationIsSound) {
  uint64_t Seed = GetParam();
  RunResult Base = runOnce(Seed, nullptr);
  VectorizerConfig C = VectorizerConfig::lslp();
  C.ScoreAggregation = VectorizerConfig::ScoreAggregationKind::Max;
  RunResult Vec = runOnce(Seed, &C);
  EXPECT_EQ(Vec.Checksum, Base.Checksum);
}

TEST_P(RandomProgramProperty, ExhaustiveReorderingIsSound) {
  uint64_t Seed = GetParam();
  RunResult Base = runOnce(Seed, nullptr);
  VectorizerConfig C = VectorizerConfig::lslp();
  C.ReorderStrategy =
      VectorizerConfig::ReorderStrategyKind::ExhaustivePerLane;
  RunResult Vec = runOnce(Seed, &C);
  EXPECT_EQ(Vec.Checksum, Base.Checksum);
}

TEST_P(RandomProgramProperty, ExtensionsOffIsSound) {
  uint64_t Seed = GetParam();
  RunResult Base = runOnce(Seed, nullptr);
  VectorizerConfig C = VectorizerConfig::lslp();
  C.EnableAltOpcodes = false;
  C.EnableReductions = false;
  RunResult Vec = runOnce(Seed, &C);
  EXPECT_EQ(Vec.Checksum, Base.Checksum);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramProperty,
                         ::testing::Range(uint64_t(0), uint64_t(40)));

} // namespace
