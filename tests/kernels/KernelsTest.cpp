//===- tests/kernels/KernelsTest.cpp - Kernel suite tests ----------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "costmodel/TargetTransformInfo.h"
#include "interp/Interpreter.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "kernels/Kernels.h"
#include "vectorizer/SLPVectorizerPass.h"

#include <gtest/gtest.h>

using namespace lslp;

namespace {

struct KernelRun {
  uint64_t Checksum = 0;
  uint64_t DynCost = 0;
  int StaticCost = 0;
  unsigned Accepted = 0;
};

KernelRun runKernel(const KernelSpec &Spec, const VectorizerConfig *Config,
                    uint64_t N = 0) {
  Context Ctx;
  SkylakeTTI TTI;
  auto M = buildKernelModule(Spec, Ctx);
  EXPECT_TRUE(verifyModule(*M));
  KernelRun Out;
  if (Config) {
    SLPVectorizerPass Pass(*Config, TTI);
    ModuleReport R = Pass.runOnModule(*M);
    Out.StaticCost = R.acceptedCost();
    Out.Accepted = R.numAccepted();
    std::vector<std::string> Errors;
    EXPECT_TRUE(verifyModule(*M, &Errors)) << moduleToString(*M);
  }
  Interpreter Interp(*M, &TTI);
  initKernelMemory(Interp, *M);
  auto Result =
      Interp.run(M->getFunction(Spec.EntryFunction),
                 {RuntimeValue::makeInt(Ctx.getInt64Ty(),
                                        N ? N : Spec.DefaultN)});
  Out.DynCost = Result.TotalCost;
  Out.Checksum = checksumGlobals(Interp, *M, Spec.OutputArrays);
  return Out;
}

TEST(KernelRegistry, ElevenFigureKernelsInPaperOrder) {
  auto Kernels = getFigureKernels();
  ASSERT_EQ(Kernels.size(), 11u);
  const char *Expected[] = {
      "453.boy-surface", "453.intersect-quadratic", "453.calc-z3",
      "453.vsumsqr",     "453.hreciprocal",         "453.mesh1",
      "433.mult-su2",    "453.quartic-cylinder",    "motivation-loads",
      "motivation-opcodes", "motivation-multi"};
  for (size_t I = 0; I < 11; ++I)
    EXPECT_EQ(Kernels[I]->Name, Expected[I]);
}

TEST(KernelRegistry, LookupAndMetadata) {
  const KernelSpec *K = findKernel("453.vsumsqr");
  ASSERT_NE(K, nullptr);
  EXPECT_EQ(K->Origin, "SPEC2006 453.povray");
  EXPECT_EQ(K->SourceLocation, "vector.h:362");
  EXPECT_FALSE(K->OutputArrays.empty());
  EXPECT_EQ(findKernel("no-such-kernel"), nullptr);
}

TEST(KernelRegistry, ChecksumsDeterministic) {
  const KernelSpec *K = findKernel("453.mesh1");
  KernelRun A = runKernel(*K, nullptr);
  KernelRun B = runKernel(*K, nullptr);
  EXPECT_EQ(A.Checksum, B.Checksum);
  EXPECT_EQ(A.DynCost, B.DynCost);
}

//===----------------------------------------------------------------------===//
// Parameterized equivalence sweep: every kernel under every configuration
// computes the same result as unvectorized code.
//===----------------------------------------------------------------------===//

struct SweepCase {
  std::string Kernel;
  std::string Config;
};

class KernelConfigSweep
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {
protected:
  static VectorizerConfig configByName(const std::string &Name) {
    if (Name == "SLP-NR")
      return VectorizerConfig::slpNoReordering();
    if (Name == "SLP")
      return VectorizerConfig::slp();
    return VectorizerConfig::lslp();
  }
};

TEST_P(KernelConfigSweep, SemanticEquivalence) {
  const auto &[KernelName, ConfigName] = GetParam();
  const KernelSpec *Spec = findKernel(KernelName);
  ASSERT_NE(Spec, nullptr);
  VectorizerConfig Config = configByName(ConfigName);
  // Shorter trip count keeps the sweep fast; equivalence is unaffected.
  uint64_t N = 64;
  KernelRun Base = runKernel(*Spec, nullptr, N);
  KernelRun Vec = runKernel(*Spec, &Config, N);
  EXPECT_EQ(Base.Checksum, Vec.Checksum);
  // Accepted graphs must all have been profitable.
  if (Vec.Accepted) {
    EXPECT_LT(Vec.StaticCost, 0);
  }
}

std::vector<std::string> allKernelNames() {
  std::vector<std::string> Names;
  for (const KernelSpec &K : getAllKernels())
    Names.push_back(K.Name);
  return Names;
}

INSTANTIATE_TEST_SUITE_P(
    AllKernelsAllConfigs, KernelConfigSweep,
    ::testing::Combine(::testing::ValuesIn(allKernelNames()),
                       ::testing::Values("SLP-NR", "SLP", "LSLP")),
    [](const ::testing::TestParamInfo<KernelConfigSweep::ParamType> &Info) {
      std::string Name = std::get<0>(Info.param) + "_" +
                         std::get<1>(Info.param);
      for (char &C : Name)
        if (!std::isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

//===----------------------------------------------------------------------===//
// Acceptance matrix: which configurations vectorize which kernels.
//===----------------------------------------------------------------------===//

TEST(KernelAcceptance, IsomorphicKernelsVectorizeEverywhere) {
  for (const char *Name : {"453.mesh1", "calculix-stiff"}) {
    const KernelSpec *K = findKernel(Name);
    ASSERT_NE(K, nullptr) << Name;
    for (const VectorizerConfig &C :
         {VectorizerConfig::slpNoReordering(), VectorizerConfig::slp(),
          VectorizerConfig::lslp()}) {
      SCOPED_TRACE(std::string(Name) + " / " + C.Name);
      EXPECT_GT(runKernel(*K, &C, 64).Accepted, 0u);
    }
  }
}

TEST(KernelAcceptance, MotivationKernelsNeedLSLP) {
  for (const char *Name : {"motivation-loads", "motivation-opcodes"}) {
    const KernelSpec *K = findKernel(Name);
    VectorizerConfig SLP = VectorizerConfig::slp();
    VectorizerConfig LSLP = VectorizerConfig::lslp();
    EXPECT_EQ(runKernel(*K, &SLP, 64).Accepted, 0u) << Name;
    EXPECT_GT(runKernel(*K, &LSLP, 64).Accepted, 0u) << Name;
  }
}

TEST(KernelAcceptance, GamessNeverVectorizes) {
  const KernelSpec *K = findKernel("gamess-eri");
  for (const VectorizerConfig &C :
       {VectorizerConfig::slpNoReordering(), VectorizerConfig::slp(),
        VectorizerConfig::lslp()})
    EXPECT_EQ(runKernel(*K, &C, 64).Accepted, 0u) << C.Name;
}

TEST(KernelAcceptance, WrfSeparatesSLPFromNR) {
  const KernelSpec *K = findKernel("wrf-stencil");
  VectorizerConfig NR = VectorizerConfig::slpNoReordering();
  VectorizerConfig SLP = VectorizerConfig::slp();
  EXPECT_EQ(runKernel(*K, &NR, 64).Accepted, 0u);
  EXPECT_GT(runKernel(*K, &SLP, 64).Accepted, 0u);
}

TEST(KernelAcceptance, LSLPStaticCostNeverWorseOnFigureKernels) {
  VectorizerConfig SLP = VectorizerConfig::slp();
  VectorizerConfig LSLP = VectorizerConfig::lslp();
  for (const KernelSpec *K : getFigureKernels()) {
    SCOPED_TRACE(K->Name);
    EXPECT_LE(runKernel(*K, &LSLP, 64).StaticCost,
              runKernel(*K, &SLP, 64).StaticCost);
  }
}

TEST(KernelAcceptance, LSLPDynamicCostImprovesOnMotivation) {
  VectorizerConfig LSLP = VectorizerConfig::lslp();
  for (const char *Name :
       {"motivation-loads", "motivation-opcodes", "motivation-multi"}) {
    const KernelSpec *K = findKernel(Name);
    KernelRun O3 = runKernel(*K, nullptr);
    KernelRun L = runKernel(*K, &LSLP);
    EXPECT_LT(L.DynCost, O3.DynCost) << Name;
  }
}

//===----------------------------------------------------------------------===//
// Suites (Figures 11-12 substrate)
//===----------------------------------------------------------------------===//

TEST(Suites, SevenSuitesWithValidMembers) {
  const auto &Suites = getSuites();
  ASSERT_EQ(Suites.size(), 7u);
  for (const SuiteSpec &S : Suites) {
    SCOPED_TRACE(S.Name);
    EXPECT_EQ(S.Members.size(), S.Weights.size());
    for (const std::string &Member : S.Members)
      EXPECT_NE(findKernel(Member), nullptr) << Member;
  }
}

TEST(Suites, ModulesBuildVerifyAndVectorize) {
  SkylakeTTI TTI;
  for (const SuiteSpec &S : getSuites()) {
    SCOPED_TRACE(S.Name);
    Context Ctx;
    auto M = buildSuiteModule(S, Ctx);
    EXPECT_TRUE(verifyModule(*M));
    SLPVectorizerPass Pass(VectorizerConfig::lslp(), TTI);
    Pass.runOnModule(*M);
    std::vector<std::string> Errors;
    EXPECT_TRUE(verifyModule(*M, &Errors));
    for (const std::string &E : Errors)
      ADD_FAILURE() << E;
  }
}

TEST(Suites, PovraySuiteEquivalentAfterLSLP) {
  const SuiteSpec *Povray = nullptr;
  for (const SuiteSpec &S : getSuites())
    if (S.Name == "453.povray")
      Povray = &S;
  ASSERT_NE(Povray, nullptr);

  SkylakeTTI TTI;
  uint64_t Sums[2];
  for (int Pass = 0; Pass < 2; ++Pass) {
    Context Ctx;
    auto M = buildSuiteModule(*Povray, Ctx);
    if (Pass == 1) {
      SLPVectorizerPass VP(VectorizerConfig::lslp(), TTI);
      VP.runOnModule(*M);
      ASSERT_TRUE(verifyModule(*M));
    }
    Interpreter Interp(*M, &TTI);
    initKernelMemory(Interp, *M);
    uint64_t Sum = 0;
    for (const std::string &Member : Povray->Members) {
      const KernelSpec *K = findKernel(Member);
      Interp.run(M->getFunction(K->EntryFunction),
                 {RuntimeValue::makeInt(Ctx.getInt64Ty(), 64)});
      Sum = Sum * 31 + checksumGlobals(Interp, *M, K->OutputArrays);
    }
    Sums[Pass] = Sum;
  }
  EXPECT_EQ(Sums[0], Sums[1]);
}

} // namespace
