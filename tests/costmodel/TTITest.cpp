//===- tests/costmodel/TTITest.cpp - Cost model tests ---------------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "costmodel/TargetTransformInfo.h"

#include "ir/BasicBlock.h"
#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"

#include <gtest/gtest.h>

using namespace lslp;

namespace {

TEST(SkylakeTTI, PaperCostConventions) {
  // The paper's examples assume: an ALU op costs 1 in scalar and vector
  // form, so a 2-lane group saves 1 (-1); gathering 2 non-constant scalars
  // costs +2; all-constant gathers are free.
  Context Ctx;
  SkylakeTTI TTI;
  Type *I64 = Ctx.getInt64Ty();
  Type *V2 = Ctx.getVectorTy(I64, 2);

  EXPECT_EQ(TTI.getArithmeticInstrCost(ValueID::Add, I64), 1);
  EXPECT_EQ(TTI.getArithmeticInstrCost(ValueID::Add, V2), 1);
  EXPECT_EQ(TTI.getArithmeticInstrCost(ValueID::Shl, I64), 1);
  EXPECT_EQ(TTI.getArithmeticInstrCost(ValueID::And, V2), 1);
  EXPECT_EQ(TTI.getMemoryOpCost(ValueID::Load, I64), 1);
  EXPECT_EQ(TTI.getMemoryOpCost(ValueID::Store, V2), 1);

  EXPECT_EQ(TTI.getGatherCost(V2, {false, false}), 2);
  EXPECT_EQ(TTI.getGatherCost(V2, {true, false}), 2); // Mixed: still +2.
  EXPECT_EQ(TTI.getGatherCost(V2, {true, true}), 0);  // Constants: free.
}

TEST(SkylakeTTI, WideGathers) {
  Context Ctx;
  SkylakeTTI TTI;
  Type *V4 = Ctx.getVectorTy(Ctx.getDoubleTy(), 4);
  EXPECT_EQ(TTI.getGatherCost(V4, {false, false, false, false}), 4);
  EXPECT_EQ(TTI.getGatherCost(V4, {true, true, true, true}), 0);
}

TEST(SkylakeTTI, DivisionCosts) {
  Context Ctx;
  SkylakeTTI TTI;
  Type *I64 = Ctx.getInt64Ty();
  Type *V4 = Ctx.getVectorTy(I64, 4);
  // FP division: similar scalar/vector throughput.
  EXPECT_EQ(TTI.getArithmeticInstrCost(ValueID::FDiv, Ctx.getDoubleTy()),
            TTI.getArithmeticInstrCost(
                ValueID::FDiv, Ctx.getVectorTy(Ctx.getDoubleTy(), 4)));
  // Integer division scalarizes: a vector op is strictly worse than the
  // sum of its scalar lanes.
  int Scalar = TTI.getArithmeticInstrCost(ValueID::SDiv, I64);
  int Vector = TTI.getArithmeticInstrCost(ValueID::SDiv, V4);
  EXPECT_GT(Vector, 4 * Scalar);
}

TEST(SkylakeTTI, TargetParameters) {
  SkylakeTTI TTI;
  EXPECT_EQ(TTI.getMaxVectorWidthBits(), 256u); // AVX2.
  EXPECT_GE(TTI.getIssueWidth(), 1u);
}

TEST(SkylakeTTI, InstructionCostDispatch) {
  Context Ctx;
  Module M(Ctx, "m");
  GlobalArray *G = M.createGlobal("G", Ctx.getInt64Ty(), 8);
  Function *F = Function::create(&M, "f", Ctx.getVoidTy(),
                                 {Ctx.getInt64Ty()}, {"a"});
  BasicBlock *BB = BasicBlock::create(Ctx, "entry", F);
  IRBuilder IRB(BB);
  SkylakeTTI TTI;

  auto *Gep = IRB.createGEP(Ctx.getInt64Ty(), G, int64_t(0));
  EXPECT_EQ(TTI.getInstructionCost(Gep), 0); // Folded addressing.
  auto *Load = IRB.createLoad(Ctx.getInt64Ty(), Gep);
  EXPECT_EQ(TTI.getInstructionCost(Load), 1);
  auto *Add = cast<Instruction>(IRB.createAdd(Load, F->getArg(0)));
  EXPECT_EQ(TTI.getInstructionCost(Add), 1);
  auto *Store = IRB.createStore(Add, Gep);
  EXPECT_EQ(TTI.getInstructionCost(Store), 1);
  auto *Cmp = IRB.createICmp(ICmpInst::EQ, Add, F->getArg(0));
  EXPECT_EQ(TTI.getInstructionCost(Cmp), 1);
  auto *Sel = IRB.createSelect(Cmp, Add, F->getArg(0));
  EXPECT_EQ(TTI.getInstructionCost(Sel), 1);
  auto *Ret = IRB.createRet();
  EXPECT_EQ(TTI.getInstructionCost(Ret), TTI.getControlFlowCost());
}

TEST(SkylakeTTI, VectorLaneOpsAndShuffles) {
  Context Ctx;
  Module M(Ctx, "m");
  VectorType *V2 = Ctx.getVectorTy(Ctx.getInt64Ty(), 2);
  Function *F = Function::create(&M, "f", Ctx.getVoidTy(), {V2}, {"v"});
  BasicBlock *BB = BasicBlock::create(Ctx, "entry", F);
  IRBuilder IRB(BB);
  SkylakeTTI TTI;

  auto *Ins = IRB.createInsertElement(F->getArg(0), Ctx.getInt64(1), 0);
  EXPECT_EQ(TTI.getInstructionCost(Ins), 1);
  auto *Ext = IRB.createExtractElement(Ins, 1);
  EXPECT_EQ(TTI.getInstructionCost(Ext), 1);
  auto *Shuf = IRB.createShuffleVector(Ins, Ins, {0, 0});
  EXPECT_EQ(TTI.getInstructionCost(Shuf), 1);
  auto *Phi = IRB.createPHI(V2);
  EXPECT_EQ(TTI.getInstructionCost(Phi), 0);
}

/// A custom cost model overriding one hook, proving the interface is
/// substitutable (used similarly by examples/custom_cost_model).
class NoSimdTTI : public SkylakeTTI {
public:
  int getArithmeticInstrCost(ValueID Opc, Type *Ty) const override {
    if (Ty->isVectorTy())
      return 100; // Pretend vector ALUs are terrible.
    return SkylakeTTI::getArithmeticInstrCost(Opc, Ty);
  }
};

TEST(TargetTransformInfo, CustomModelOverrides) {
  Context Ctx;
  NoSimdTTI TTI;
  EXPECT_EQ(TTI.getArithmeticInstrCost(ValueID::Add, Ctx.getInt64Ty()), 1);
  EXPECT_EQ(TTI.getArithmeticInstrCost(
                ValueID::Add, Ctx.getVectorTy(Ctx.getInt64Ty(), 2)),
            100);
}

} // namespace
