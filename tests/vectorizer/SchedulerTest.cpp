//===- tests/vectorizer/SchedulerTest.cpp - Bundle scheduler tests -------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "vectorizer/Scheduler.h"

#include "ir/BasicBlock.h"
#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/Module.h"
#include "ir/Verifier.h"
#include "parser/Parser.h"

#include <gtest/gtest.h>

using namespace lslp;

namespace {

struct ParsedFn {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = nullptr;

  explicit ParsedFn(const char *Src) {
    M = parseModuleOrDie(Src, Ctx);
    F = M->functions().front().get();
  }

  BasicBlock *entry() { return F->getEntryBlock(); }

  Instruction *get(const std::string &Name) {
    for (const auto &BB : *F)
      for (const auto &I : *BB)
        if (I->getName() == Name)
          return I.get();
    return nullptr;
  }

  /// Position of \p I in its block.
  int posOf(const Instruction *I) {
    int Pos = 0;
    for (const auto &P : *I->getParent()) {
      if (P.get() == I)
        return Pos;
      ++Pos;
    }
    return -1;
  }
};

const char *TwoLaneIR = R"(
global @A = [16 x i64]
global @E = [16 x i64]
define void @f(i64 %i) {
entry:
  %i1 = add i64 %i, 1
  %pa0 = gep i64, ptr @A, i64 %i
  %l0 = load i64, ptr %pa0
  %x0 = add i64 %l0, 1
  %pe0 = gep i64, ptr @E, i64 %i
  store i64 %x0, ptr %pe0
  %pa1 = gep i64, ptr @A, i64 %i1
  %l1 = load i64, ptr %pa1
  %x1 = add i64 %l1, 2
  %pe1 = gep i64, ptr @E, i64 %i1
  store i64 %x1, ptr %pe1
  ret void
}
)";

TEST(Scheduler, IndependentBundleSchedules) {
  ParsedFn P(TwoLaneIR);
  BundleScheduler S(*P.entry());
  EXPECT_TRUE(S.canScheduleBundle({P.get("x0"), P.get("x1")}));
  EXPECT_TRUE(S.canScheduleBundle({P.get("l0"), P.get("l1")}));
}

TEST(Scheduler, DependentBundleRejected) {
  ParsedFn P(R"(
define void @f(i64 %a) {
entry:
  %x = add i64 %a, 1
  %y = add i64 %x, 2
  ret void
}
)");
  BundleScheduler S(*P.entry());
  EXPECT_FALSE(S.canScheduleBundle({P.get("x"), P.get("y")}));
}

TEST(Scheduler, MaterializeMakesBundlesContiguous) {
  ParsedFn P(TwoLaneIR);
  BundleScheduler S(*P.entry());
  std::vector<Instruction *> Loads = {P.get("l0"), P.get("l1")};
  std::vector<Instruction *> Adds = {P.get("x0"), P.get("x1")};
  ASSERT_TRUE(S.canScheduleBundle(Loads));
  S.commitBundle(Loads);
  ASSERT_TRUE(S.canScheduleBundle(Adds));
  S.commitBundle(Adds);
  ASSERT_TRUE(S.materialize());

  EXPECT_EQ(P.posOf(P.get("l1")), P.posOf(P.get("l0")) + 1);
  EXPECT_EQ(P.posOf(P.get("x1")), P.posOf(P.get("x0")) + 1);
  // Dependences still respected.
  EXPECT_LT(P.posOf(P.get("l0")), P.posOf(P.get("x0")));
  EXPECT_LT(P.posOf(P.get("x1")), P.posOf(P.entry()->getTerminator()));
  // Terminator stays last.
  EXPECT_TRUE(P.entry()->back()->isTerminator());
}

TEST(Scheduler, PhisStayFirstAfterMaterialize) {
  ParsedFn P(R"(
global @A = [16 x i64]
define void @f(i64 %n) {
entry:
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %next, %loop ]
  %i1 = add i64 %i, 1
  %p0 = gep i64, ptr @A, i64 %i
  %p1 = gep i64, ptr @A, i64 %i1
  %l0 = load i64, ptr %p0
  %l1 = load i64, ptr %p1
  store i64 %l0, ptr %p1
  %next = add i64 %i, 2
  %c = icmp slt i64 %next, %n
  br i1 %c, label %loop, label %exit
exit:
  ret void
}
)");
  BasicBlock *Loop = P.F->getBlockByName("loop");
  BundleScheduler S(*Loop);
  // Commit nothing; materialize should still keep a legal order.
  ASSERT_TRUE(S.materialize());
  EXPECT_TRUE(isa<PHINode>(Loop->front()));
  EXPECT_TRUE(Loop->back()->isTerminator());
  std::vector<std::string> Errs;
  EXPECT_TRUE(verifyFunction(*P.F, &Errs));
  for (const std::string &E : Errs)
    ADD_FAILURE() << E;
}

TEST(Scheduler, CrossBundleCycleRejected) {
  // Bundle A = {a0, a1}, bundle B = {b0, b1} with a1 using b0 and b1 using
  // a0: each bundle alone is independent, but together they form a cycle.
  ParsedFn P(R"(
define void @f(i64 %x) {
entry:
  %a0 = add i64 %x, 1
  %b1 = mul i64 %x, 4
  %b0 = mul i64 %a0, 2
  %a1 = add i64 %b1, 3
  ret void
}
)");
  BundleScheduler S(*P.entry());
  std::vector<Instruction *> A = {P.get("a0"), P.get("a1")};
  std::vector<Instruction *> B = {P.get("b0"), P.get("b1")};
  ASSERT_TRUE(S.canScheduleBundle(A));
  S.commitBundle(A);
  // Each bundle alone is fine, but b0 uses a0 (A -> B) and a1 uses b1
  // (B -> A): a bundle-level cycle.
  EXPECT_FALSE(S.canScheduleBundle(B));
}

TEST(Scheduler, MemoryOrderPreserved) {
  ParsedFn P(R"(
global @A = [16 x i64]
define void @f(i64 %i) {
entry:
  %p = gep i64, ptr @A, i64 %i
  store i64 1, ptr %p
  %v = load i64, ptr %p
  store i64 2, ptr %p
  ret void
}
)");
  BundleScheduler S(*P.entry());
  ASSERT_TRUE(S.materialize());
  // The load still sits between the two aliasing stores.
  Instruction *V = P.get("v");
  int Stores = 0;
  bool LoadSeen = false;
  for (const auto &I : *P.entry()) {
    if (isa<StoreInst>(I.get())) {
      ++Stores;
      EXPECT_EQ(LoadSeen, Stores == 2);
    }
    if (I.get() == V)
      LoadSeen = true;
  }
}

} // namespace
