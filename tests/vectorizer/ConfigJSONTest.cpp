//===- tests/vectorizer/ConfigJSONTest.cpp - Config round-trip -----------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// VectorizerConfig <-> JSON is serialized in exactly one place
// (vectorizer/ConfigJSON.cpp) and consumed by three shippers: crash
// reproducer sidecars, the lslpd wire protocol, and lslpc --config-json.
// These tests pin the round-trip so a knob added to the struct without a
// fromJSON case (or vice versa) fails here instead of silently dropping
// in one of the consumers.
//
//===----------------------------------------------------------------------===//

#include "vectorizer/Config.h"

#include <gtest/gtest.h>

using namespace lslp;

namespace {

/// Round-trips \p Config and expects the re-serialization to be
/// byte-identical (toJSON has a canonical key order, so this is exact).
void expectRoundTrip(const VectorizerConfig &Config) {
  std::string JSON = Config.toJSON();
  VectorizerConfig Out;
  std::string Err;
  ASSERT_TRUE(VectorizerConfig::fromJSON(JSON, Out, Err)) << Err;
  EXPECT_EQ(JSON, Out.toJSON());
}

TEST(ConfigJSON, FactoryConfigsRoundTrip) {
  expectRoundTrip(VectorizerConfig::slpNoReordering());
  expectRoundTrip(VectorizerConfig::slp());
  expectRoundTrip(VectorizerConfig::lslp());
  expectRoundTrip(VectorizerConfig::lslp(8));
}

TEST(ConfigJSON, EveryKnobSurvives) {
  VectorizerConfig C = VectorizerConfig::lslp();
  C.Name = "custom";
  C.EnableReordering = false;
  C.EnableLookAhead = false;
  C.EnableMultiNode = false;
  C.MaxLookAheadLevel = 7;
  C.MaxMultiNodeSize = 13;
  C.ScoreAggregation = VectorizerConfig::ScoreAggregationKind::Max;
  C.ReorderStrategy = VectorizerConfig::ReorderStrategyKind::ExhaustivePerLane;
  C.Strategy = VectorizerConfig::PackingStrategyKind::Global;
  C.MaxSolverCandidates = 5;
  C.EnableSplatMode = false;
  C.EnableAltOpcodes = false;
  C.EnableReductions = false;
  C.CostThreshold = -3;
  C.MaxGraphDepth = 11;
  C.MaxGraphNodes = 1234;
  C.MaxPermutationsPerMultiNode = 999;
  C.MaxMsPerFunction = 250;
  expectRoundTrip(C);

  VectorizerConfig Out;
  std::string Err;
  ASSERT_TRUE(VectorizerConfig::fromJSON(C.toJSON(), Out, Err)) << Err;
  EXPECT_EQ(Out.Name, "custom");
  EXPECT_FALSE(Out.EnableReordering);
  EXPECT_EQ(Out.MaxLookAheadLevel, 7u);
  EXPECT_EQ(Out.MaxMultiNodeSize, 13u);
  EXPECT_EQ(Out.ScoreAggregation, VectorizerConfig::ScoreAggregationKind::Max);
  EXPECT_EQ(Out.ReorderStrategy, VectorizerConfig::ReorderStrategyKind::ExhaustivePerLane);
  EXPECT_EQ(Out.Strategy, VectorizerConfig::PackingStrategyKind::Global);
  EXPECT_EQ(Out.CostThreshold, -3);
  EXPECT_EQ(Out.MaxGraphNodes, 1234u);
  EXPECT_EQ(Out.MaxMsPerFunction, 250u);
}

TEST(ConfigJSON, FaultInjectionKeyIsDocumentationOnly) {
  // A FaultInjector pointer cannot be rebuilt from JSON: the key
  // round-trips for the record, but Faults always deserializes null.
  VectorizerConfig Out;
  std::string Err;
  std::string JSON = VectorizerConfig::lslp().toJSON();
  ASSERT_TRUE(VectorizerConfig::fromJSON(JSON, Out, Err)) << Err;
  EXPECT_EQ(Out.Faults, nullptr);
}

TEST(ConfigJSON, RejectsUnknownKey) {
  VectorizerConfig Out;
  std::string Err;
  EXPECT_FALSE(VectorizerConfig::fromJSON(R"({"frobnicate":true})", Out, Err));
  EXPECT_NE(Err.find("unknown key"), std::string::npos) << Err;
}

TEST(ConfigJSON, RejectsMalformedInput) {
  VectorizerConfig Out;
  std::string Err;
  EXPECT_FALSE(VectorizerConfig::fromJSON("", Out, Err));
  EXPECT_FALSE(VectorizerConfig::fromJSON("{", Out, Err));
  EXPECT_FALSE(VectorizerConfig::fromJSON(R"({"name":"x"} trailing)", Out,
                                          Err));
  EXPECT_FALSE(
      VectorizerConfig::fromJSON(R"({"max-lookahead-level":"two"})", Out,
                                 Err));
  EXPECT_FALSE(
      VectorizerConfig::fromJSON(R"({"strategy":"quantum"})", Out, Err));
  EXPECT_FALSE(
      VectorizerConfig::fromJSON(R"({"score-aggregation":"median"})", Out,
                                 Err));
}

TEST(ConfigJSON, RejectsOutOfRangeValues) {
  VectorizerConfig Out;
  std::string Err;
  // 2^40 does not fit the unsigned MaxLookAheadLevel field.
  EXPECT_FALSE(VectorizerConfig::fromJSON(
      R"({"max-lookahead-level":1099511627776})", Out, Err));
  EXPECT_NE(Err.find("out of range"), std::string::npos) << Err;
}

TEST(ConfigJSON, MissingKeysKeepDefaults) {
  // Lenient on absence (old reproducers stay loadable): only the keys
  // present override the default-constructed config.
  VectorizerConfig Out;
  std::string Err;
  ASSERT_TRUE(
      VectorizerConfig::fromJSON(R"({"name":"partial"})", Out, Err))
      << Err;
  VectorizerConfig Default;
  EXPECT_EQ(Out.Name, "partial");
  EXPECT_EQ(Out.MaxLookAheadLevel, Default.MaxLookAheadLevel);
  EXPECT_EQ(Out.Strategy, Default.Strategy);
}

} // namespace
