//===- tests/vectorizer/BudgetTest.cpp - Resource budgets + fallback ----------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The resource-budget contract (DESIGN.md "Failure model"): when a budget
// runs out mid-flight — or a fault is injected at a budget site — the pass
// abandons the function, restores the pristine scalar body (byte-identical
// under the printer), and emits exactly one budget-exhausted remark. The
// outcome must be deterministic at every --jobs width.
//
//===----------------------------------------------------------------------===//

#include "costmodel/TargetTransformInfo.h"
#include "diag/RemarkEngine.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "parser/Parser.h"
#include "support/FaultInjection.h"
#include "vectorizer/Budget.h"
#include "vectorizer/SLPVectorizerPass.h"

#include <gtest/gtest.h>

using namespace lslp;

namespace {

/// A cleanly vectorizable 4-lane add kernel: without budgets LSLP
/// vectorizes it, so a budget-forced fallback is observable.
const char *VecSrc = R"(global @A = [64 x i64]
global @B = [64 x i64]
global @C = [64 x i64]
define void @k(i64 %i) {
entry:
  %p0 = gep i64, ptr @A, i64 0
  %p1 = gep i64, ptr @A, i64 1
  %p2 = gep i64, ptr @A, i64 2
  %p3 = gep i64, ptr @A, i64 3
  %q0 = gep i64, ptr @B, i64 0
  %q1 = gep i64, ptr @B, i64 1
  %q2 = gep i64, ptr @B, i64 2
  %q3 = gep i64, ptr @B, i64 3
  %a0 = load i64, ptr %p0
  %a1 = load i64, ptr %p1
  %a2 = load i64, ptr %p2
  %a3 = load i64, ptr %p3
  %b0 = load i64, ptr %q0
  %b1 = load i64, ptr %q1
  %b2 = load i64, ptr %q2
  %b3 = load i64, ptr %q3
  %s0 = add i64 %a0, %b0
  %s1 = add i64 %a1, %b1
  %s2 = add i64 %a2, %b2
  %s3 = add i64 %a3, %b3
  %r0 = gep i64, ptr @C, i64 0
  %r1 = gep i64, ptr @C, i64 1
  %r2 = gep i64, ptr @C, i64 2
  %r3 = gep i64, ptr @C, i64 3
  store i64 %s0, ptr %r0
  store i64 %s1, ptr %r1
  store i64 %s2, ptr %r2
  store i64 %s3, ptr %r3
  ret void
}
)";

struct RunResult {
  std::string ScalarIR; ///< Printed input, before the pass.
  std::string IR;       ///< Printed output, after the pass.
  ModuleReport Report;
  std::vector<Remark> Remarks;
};

RunResult runPass(VectorizerConfig Config, unsigned Jobs = 1) {
  Context Ctx;
  auto M = parseModuleOrDie(VecSrc, Ctx);
  RunResult Out;
  Out.ScalarIR = moduleToString(*M);
  SkylakeTTI TTI;
  RemarkEngine Engine;
  Engine.setKeepRemarks(true);
  Config.Remarks = &Engine;
  SLPVectorizerPass Pass(Config, TTI);
  Out.Report = Pass.runOnModule(*M, Jobs);
  EXPECT_TRUE(verifyModule(*M));
  Out.IR = moduleToString(*M);
  Out.Remarks = Engine.remarks();
  return Out;
}

unsigned countBudgetRemarks(const std::vector<Remark> &Remarks,
                            std::string *ReasonOut = nullptr) {
  unsigned N = 0;
  for (const Remark &R : Remarks)
    if (R.Kind == RemarkKind::BudgetExhausted) {
      ++N;
      if (ReasonOut)
        for (const RemarkArg &A : R.Args)
          if (A.Key == "reason")
            *ReasonOut = A.Str;
    }
  return N;
}

//===----------------------------------------------------------------------===//
// VectorizerBudget unit behavior
//===----------------------------------------------------------------------===//

TEST(Budget, UnlimitedByDefault) {
  VectorizerBudget B(VectorizerConfig::lslp(), "f");
  for (int I = 0; I != 10000; ++I)
    EXPECT_TRUE(B.chargeNode());
  EXPECT_TRUE(B.chargePermutations(1u << 20));
  EXPECT_FALSE(B.exhausted());
  EXPECT_EQ(B.exhaustionReason(), nullptr);
}

TEST(Budget, NodeBudgetLatches) {
  VectorizerConfig C = VectorizerConfig::lslp();
  C.MaxGraphNodes = 3;
  VectorizerBudget B(C, "f");
  EXPECT_TRUE(B.chargeNode());
  EXPECT_TRUE(B.chargeNode());
  EXPECT_TRUE(B.chargeNode());
  EXPECT_FALSE(B.chargeNode());
  EXPECT_TRUE(B.exhausted());
  EXPECT_STREQ(B.exhaustionReason(), "node-budget");
  // Monotone: every later charge of any kind fails fast.
  EXPECT_FALSE(B.chargeNode());
  EXPECT_FALSE(B.chargePermutations(1));
  EXPECT_FALSE(B.chargeVerify());
  EXPECT_STREQ(B.exhaustionReason(), "node-budget");
}

TEST(Budget, PermutationBudgetLatches) {
  VectorizerConfig C = VectorizerConfig::lslp();
  C.MaxPermutationsPerMultiNode = 10;
  VectorizerBudget B(C, "f");
  EXPECT_TRUE(B.chargePermutations(10));
  EXPECT_FALSE(B.chargePermutations(1));
  EXPECT_STREQ(B.exhaustionReason(), "permutation-budget");
}

TEST(Budget, VerifyFailureLatches) {
  VectorizerBudget B(VectorizerConfig::lslp(), "f");
  EXPECT_TRUE(B.chargeVerify());
  B.markVerifyFailed();
  EXPECT_TRUE(B.exhausted());
  EXPECT_STREQ(B.exhaustionReason(), "verify-failed");
}

TEST(Budget, InjectedFaultLatches) {
  VectorizerConfig C = VectorizerConfig::lslp();
  FaultInjector Faults(/*Seed=*/1, /*Probability=*/1.0);
  C.Faults = &Faults;
  VectorizerBudget B(C, "f");
  EXPECT_FALSE(B.chargeNode());
  EXPECT_TRUE(B.exhausted());
  EXPECT_STREQ(B.exhaustionReason(), "fault-injected");
  EXPECT_EQ(B.faultsInjected(), 1u);
}

//===----------------------------------------------------------------------===//
// End-to-end fallback through the pass
//===----------------------------------------------------------------------===//

TEST(Budget, WithoutBudgetTheKernelVectorizes) {
  RunResult R = runPass(VectorizerConfig::lslp());
  EXPECT_GT(R.Report.numAccepted(), 0u);
  EXPECT_NE(R.IR, R.ScalarIR);
  EXPECT_EQ(countBudgetRemarks(R.Remarks), 0u);
}

TEST(Budget, NodeBudgetFallsBackToByteIdenticalScalar) {
  VectorizerConfig C = VectorizerConfig::lslp();
  C.MaxGraphNodes = 1;
  RunResult R = runPass(C);
  // Transform-then-commit: the printed output is byte-identical to the
  // printed input — not "equivalent", identical.
  EXPECT_EQ(R.IR, R.ScalarIR);
  EXPECT_EQ(R.Report.numAccepted(), 0u);
  ASSERT_EQ(R.Report.Functions.size(), 1u);
  EXPECT_TRUE(R.Report.Functions[0].BudgetExhausted);
  EXPECT_TRUE(R.Report.Functions[0].Attempts.empty());
  std::string Reason;
  EXPECT_EQ(countBudgetRemarks(R.Remarks, &Reason), 1u);
  EXPECT_EQ(Reason, "node-budget");
}

TEST(Budget, PermutationBudgetFallsBack) {
  VectorizerConfig C = VectorizerConfig::lslp();
  C.MaxPermutationsPerMultiNode = 1;
  RunResult R = runPass(C);
  EXPECT_EQ(R.IR, R.ScalarIR);
  std::string Reason;
  EXPECT_EQ(countBudgetRemarks(R.Remarks, &Reason), 1u);
  EXPECT_EQ(Reason, "permutation-budget");
}

TEST(Budget, InjectedFaultFallsBackWithItsOwnReason) {
  VectorizerConfig C = VectorizerConfig::lslp();
  FaultInjector Faults(/*Seed=*/99, /*Probability=*/1.0);
  C.Faults = &Faults;
  RunResult R = runPass(C);
  EXPECT_EQ(R.IR, R.ScalarIR);
  EXPECT_GT(Faults.totalInjected(), 0u);
  std::string Reason;
  EXPECT_EQ(countBudgetRemarks(R.Remarks, &Reason), 1u);
  EXPECT_EQ(Reason, "fault-injected");
}

TEST(Budget, ExhaustionIsDeterministicAcrossJobs) {
  VectorizerConfig C = VectorizerConfig::lslp();
  C.MaxGraphNodes = 2;
  RunResult Serial = runPass(C, 1);
  for (unsigned Jobs : {2u, 4u}) {
    RunResult Parallel = runPass(C, Jobs);
    EXPECT_EQ(Parallel.IR, Serial.IR) << "jobs=" << Jobs;
    EXPECT_EQ(Parallel.Remarks, Serial.Remarks) << "jobs=" << Jobs;
  }
}

} // namespace
