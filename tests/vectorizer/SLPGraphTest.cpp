//===- tests/vectorizer/SLPGraphTest.cpp - Graph data structure tests -----------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "vectorizer/SLPGraph.h"

#include "costmodel/TargetTransformInfo.h"
#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/Module.h"
#include "parser/Parser.h"
#include "vectorizer/CostEvaluator.h"
#include "support/OStream.h"
#include "vectorizer/GraphBuilder.h"

#include <gtest/gtest.h>

using namespace lslp;

namespace {

struct ParsedFn {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = nullptr;

  explicit ParsedFn(const char *Src) {
    M = parseModuleOrDie(Src, Ctx);
    F = M->functions().front().get();
  }

  Instruction *get(const std::string &Name) {
    for (const auto &BB : *F)
      for (const auto &I : *BB)
        if (I->getName() == Name)
          return I.get();
    return nullptr;
  }
};

const char *TwoAdds = R"(
define void @f(i64 %a, i64 %b) {
entry:
  %x0 = add i64 %a, 1
  %x1 = add i64 %b, 2
  ret void
}
)";

TEST(SLPGraphStructure, VectorizeNodeCoversLanes) {
  ParsedFn P(TwoAdds);
  SLPGraph G;
  SLPNode *N = G.createVectorizeNode({P.get("x0"), P.get("x1")});
  EXPECT_EQ(N->getKind(), SLPNode::NodeKind::Vectorize);
  EXPECT_TRUE(N->isVectorizable());
  EXPECT_EQ(N->getNumLanes(), 2u);
  EXPECT_EQ(N->getOpcode(), ValueID::Add);
  EXPECT_EQ(N->getScalarEltType(), P.Ctx.getInt64Ty());
  EXPECT_TRUE(G.isCoveredScalar(P.get("x0")));
  EXPECT_TRUE(G.isCoveredScalar(P.get("x1")));
  EXPECT_EQ(G.getNodeForValue(P.get("x0")), N);
  EXPECT_EQ(G.getNumVectorizableNodes(), 1u);
}

TEST(SLPGraphStructure, GatherNodeDoesNotCover) {
  ParsedFn P(TwoAdds);
  SLPGraph G;
  SLPNode *N = G.createGatherNode({P.get("x0"), P.get("x1")});
  EXPECT_FALSE(N->isVectorizable());
  EXPECT_FALSE(G.isCoveredScalar(P.get("x0")));
  EXPECT_EQ(G.getNumVectorizableNodes(), 0u);
}

TEST(SLPGraphStructure, StoreNodeElementType) {
  ParsedFn P(R"(
global @E = [8 x double]
define void @f(double %v) {
entry:
  %p0 = gep double, ptr @E, i64 0
  store double %v, ptr %p0
  ret void
}
)");
  Instruction *St = nullptr;
  for (const auto &I : *P.F->getEntryBlock())
    if (isa<StoreInst>(I.get()))
      St = I.get();
  SLPGraph G;
  // A single-lane node is not meaningful for vectorization but the
  // element-type accessor must still see through the store.
  SLPNode *N = G.createGatherNode({St});
  EXPECT_EQ(N->getScalarEltType(), P.Ctx.getDoubleTy());
}

TEST(SLPGraphStructure, PrintAndDotRenderAllNodeKinds) {
  // Build a real graph with a multi-node through the builder, then check
  // both renderings mention what they should.
  ParsedFn P(R"(
global @E = [16 x i64]
define void @f(i64 %i, i64 %a, i64 %b, i64 %c) {
entry:
  %i1 = add i64 %i, 1
  %t0 = and i64 %a, %b
  %x0 = and i64 %t0, %c
  %t1 = and i64 %b, %c
  %x1 = and i64 %t1, %a
  %pe0 = gep i64, ptr @E, i64 %i
  %pe1 = gep i64, ptr @E, i64 %i1
  store i64 %x0, ptr %pe0
  store i64 %x1, ptr %pe1
  ret void
}
)");
  VectorizerConfig C = VectorizerConfig::lslp();
  SLPGraphBuilder B(C, *P.F->getEntryBlock());
  std::vector<Instruction *> Stores;
  for (const auto &I : *P.F->getEntryBlock())
    if (isa<StoreInst>(I.get()))
      Stores.push_back(I.get());
  auto G = B.build(Stores);
  ASSERT_TRUE(G.has_value());
  SkylakeTTI TTI;
  evaluateGraphCost(*G, TTI);

  std::string Text = G->toString();
  EXPECT_NE(Text.find("vectorize<store>"), std::string::npos);
  EXPECT_NE(Text.find("multinode<and x2>"), std::string::npos);
  EXPECT_NE(Text.find("total cost ="), std::string::npos);

  std::string Dot;
  StringOStream DotOS(Dot);
  G->printDOT(DotOS, "test");
  EXPECT_NE(Dot.find("digraph \"test\""), std::string::npos);
  EXPECT_NE(Dot.find("fillcolor=lightpink"), std::string::npos); // Multi.
  EXPECT_NE(Dot.find("fillcolor=lightgreen"), std::string::npos);
  EXPECT_NE(Dot.find("->"), std::string::npos);
}

TEST(SLPGraphStructure, EmptyGraphPrints) {
  SLPGraph G;
  EXPECT_NE(G.toString().find("<empty SLP graph>"), std::string::npos);
}

TEST(SLPGraphStructure, ReorderedFlagAndCost) {
  ParsedFn P(TwoAdds);
  SLPGraph G;
  SLPNode *N = G.createVectorizeNode({P.get("x0"), P.get("x1")});
  EXPECT_FALSE(N->wasReordered());
  N->setReordered(true);
  EXPECT_TRUE(N->wasReordered());
  N->setCost(-3);
  EXPECT_EQ(N->getCost(), -3);
  G.setTotalCost(-7);
  EXPECT_EQ(G.getTotalCost(), -7);
}

} // namespace
