//===- tests/vectorizer/ReductionTest.cpp - Horizontal reduction tests ---------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "vectorizer/ReductionVectorizer.h"

#include "costmodel/TargetTransformInfo.h"
#include "interp/Interpreter.h"
#include "ir/BasicBlock.h"
#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "kernels/Kernels.h"
#include "parser/Parser.h"
#include "vectorizer/SLPVectorizerPass.h"

#include <gtest/gtest.h>

using namespace lslp;

namespace {

/// i64 dot product of four element pairs, reduced through a balanced
/// tree; one store per iteration, so only the reduction seeder fires.
const char *Dot4IR = R"(
global @X = [64 x i64]
global @Y = [64 x i64]
global @S = [64 x i64]
define void @f(i64 %i) {
entry:
  %i4 = mul i64 %i, 4
  %i41 = add i64 %i4, 1
  %i42 = add i64 %i4, 2
  %i43 = add i64 %i4, 3
  %px0 = gep i64, ptr @X, i64 %i4
  %px1 = gep i64, ptr @X, i64 %i41
  %px2 = gep i64, ptr @X, i64 %i42
  %px3 = gep i64, ptr @X, i64 %i43
  %py0 = gep i64, ptr @Y, i64 %i4
  %py1 = gep i64, ptr @Y, i64 %i41
  %py2 = gep i64, ptr @Y, i64 %i42
  %py3 = gep i64, ptr @Y, i64 %i43
  %x0 = load i64, ptr %px0
  %x1 = load i64, ptr %px1
  %x2 = load i64, ptr %px2
  %x3 = load i64, ptr %px3
  %y0 = load i64, ptr %py0
  %y1 = load i64, ptr %py1
  %y2 = load i64, ptr %py2
  %y3 = load i64, ptr %py3
  %t0 = mul i64 %x0, %y0
  %t1 = mul i64 %x1, %y1
  %t2 = mul i64 %x2, %y2
  %t3 = mul i64 %x3, %y3
  %s01 = add i64 %t0, %t1
  %s23 = add i64 %t2, %t3
  %sum = add i64 %s01, %s23
  %ps = gep i64, ptr @S, i64 %i
  store i64 %sum, ptr %ps
  ret void
}
)";

Instruction *getNamed(Function *F, const std::string &Name) {
  for (const auto &BB : *F)
    for (const auto &I : *BB)
      if (I->getName() == Name)
        return I.get();
  return nullptr;
}

TEST(ReductionMatch, BalancedTree) {
  Context Ctx;
  auto M = parseModuleOrDie(Dot4IR, Ctx);
  Instruction *Sum = getNamed(M->getFunction("f"), "sum");
  auto Cand = matchReductionTree(Sum, 4, 4);
  ASSERT_TRUE(Cand.has_value());
  EXPECT_EQ(Cand->Opcode, ValueID::Add);
  EXPECT_EQ(Cand->Leaves.size(), 4u);
  EXPECT_EQ(Cand->TreeOps.size(), 3u); // sum, s01, s23.
  for (Value *Leaf : Cand->Leaves)
    EXPECT_EQ(cast<Instruction>(Leaf)->getOpcode(), ValueID::Mul);
}

TEST(ReductionMatch, RejectsNonPowerOfTwoAndSmallTrees) {
  Context Ctx;
  auto M = parseModuleOrDie(R"(
define void @f(i64 %a, i64 %b, i64 %c) {
entry:
  %t = add i64 %a, %b
  %three = add i64 %t, %c
  ret void
}
)",
                            Ctx);
  Instruction *Three = getNamed(M->getFunction("f"), "three");
  EXPECT_FALSE(matchReductionTree(Three, 4, 8).has_value()); // 3 leaves.
  Instruction *T = getNamed(M->getFunction("f"), "t");
  EXPECT_FALSE(matchReductionTree(T, 4, 8).has_value()); // Trivial.
}

TEST(ReductionMatch, RejectsNonCommutativeRoot) {
  Context Ctx;
  auto M = parseModuleOrDie(R"(
define void @f(i64 %a, i64 %b, i64 %c, i64 %d) {
entry:
  %t0 = sub i64 %a, %b
  %t1 = sub i64 %c, %d
  %r = sub i64 %t0, %t1
  ret void
}
)",
                            Ctx);
  EXPECT_FALSE(
      matchReductionTree(getNamed(M->getFunction("f"), "r"), 2, 8)
          .has_value());
}

TEST(ReductionMatch, LeavesSortedByAddress) {
  // Leaves arrive in shuffled order; commutativity lets the matcher sort
  // them by address so the bundle becomes a consecutive load.
  Context Ctx;
  auto M = parseModuleOrDie(R"(
global @X = [64 x i64]
define void @f(i64 %i) {
entry:
  %i1 = add i64 %i, 1
  %i2 = add i64 %i, 2
  %i3 = add i64 %i, 3
  %p0 = gep i64, ptr @X, i64 %i
  %p1 = gep i64, ptr @X, i64 %i1
  %p2 = gep i64, ptr @X, i64 %i2
  %p3 = gep i64, ptr @X, i64 %i3
  %x2 = load i64, ptr %p2
  %x0 = load i64, ptr %p0
  %x3 = load i64, ptr %p3
  %x1 = load i64, ptr %p1
  %s0 = add i64 %x2, %x0
  %s1 = add i64 %x3, %x1
  %sum = add i64 %s0, %s1
  ret void
}
)",
                            Ctx);
  Function *F = M->getFunction("f");
  auto Cand = matchReductionTree(getNamed(F, "sum"), 4, 4);
  ASSERT_TRUE(Cand.has_value());
  EXPECT_EQ(Cand->Leaves[0], getNamed(F, "x0"));
  EXPECT_EQ(Cand->Leaves[1], getNamed(F, "x1"));
  EXPECT_EQ(Cand->Leaves[2], getNamed(F, "x2"));
  EXPECT_EQ(Cand->Leaves[3], getNamed(F, "x3"));
}

TEST(ReductionVectorize, DotProductEndToEnd) {
  SkylakeTTI TTI;
  uint64_t Sums[2];
  unsigned Accepted = 0;
  bool SawReductionAttempt = false;
  for (int Pass = 0; Pass < 2; ++Pass) {
    Context Ctx;
    auto M = parseModuleOrDie(Dot4IR, Ctx);
    if (Pass == 1) {
      SLPVectorizerPass VP(VectorizerConfig::lslp(), TTI);
      ModuleReport R = VP.runOnModule(*M);
      Accepted = R.numAccepted();
      for (const auto &F : R.Functions)
        for (const auto &A : F.Attempts)
          SawReductionAttempt |= A.IsReduction;
      ASSERT_TRUE(verifyModule(*M)) << moduleToString(*M);
      // The fold emits shuffles and an extract; the scalar tree is gone.
      unsigned Shuffles = 0, ScalarAdds = 0;
      for (const auto &I : *M->getFunction("f")->getEntryBlock()) {
        Shuffles += isa<ShuffleVectorInst>(I.get());
        ScalarAdds += I->getOpcode() == ValueID::Add &&
                      !I->getType()->isVectorTy() &&
                      I->getName().empty(); // Index adds keep their names.
      }
      EXPECT_GE(Shuffles, 2u); // log2(4) fold steps.
    }
    Interpreter Interp(*M, &TTI);
    initKernelMemory(Interp, *M);
    Interp.run(M->getFunction("f"),
               {RuntimeValue::makeInt(Ctx.getInt64Ty(), 3)});
    Sums[Pass] = checksumGlobal(Interp, *M, "S");
  }
  EXPECT_EQ(Sums[0], Sums[1]);
  EXPECT_GT(Accepted, 0u);
  EXPECT_TRUE(SawReductionAttempt);
}

TEST(ReductionVectorize, DisabledLeavesScalar) {
  Context Ctx;
  SkylakeTTI TTI;
  auto M = parseModuleOrDie(Dot4IR, Ctx);
  VectorizerConfig C = VectorizerConfig::lslp();
  C.EnableReductions = false;
  SLPVectorizerPass VP(C, TTI);
  EXPECT_EQ(VP.runOnModule(*M).numAccepted(), 0u);
}

TEST(ReductionVectorize, UnprofitableTreeStaysScalar) {
  // Leaves from four unrelated arrays: the leaf bundle gathers, and the
  // fold overhead cannot pay for itself.
  Context Ctx;
  SkylakeTTI TTI;
  auto M = parseModuleOrDie(R"(
global @A = [8 x i64]
global @B = [8 x i64]
global @C = [8 x i64]
global @D = [8 x i64]
global @S = [8 x i64]
define void @f(i64 %i, i64 %a, i64 %b, i64 %c, i64 %d) {
entry:
  %t0 = mul i64 %a, 3
  %t1 = mul i64 %b, %b
  %t2 = add i64 %c, 1
  %t3 = xor i64 %d, 5
  %s0 = add i64 %t0, %t1
  %s1 = add i64 %t2, %t3
  %sum = add i64 %s0, %s1
  %ps = gep i64, ptr @S, i64 %i
  store i64 %sum, ptr %ps
  ret void
}
)",
                            Ctx);
  SLPVectorizerPass VP(VectorizerConfig::lslp(), TTI);
  ModuleReport R = VP.runOnModule(*M);
  EXPECT_EQ(R.numAccepted(), 0u);
  EXPECT_TRUE(verifyModule(*M));
}

TEST(ReductionVectorize, KernelEquivalence) {
  const KernelSpec *Spec = findKernel("povray-dot");
  ASSERT_NE(Spec, nullptr);
  SkylakeTTI TTI;
  uint64_t Sums[2];
  unsigned Accepted = 0;
  for (int Pass = 0; Pass < 2; ++Pass) {
    Context Ctx;
    auto M = buildKernelModule(*Spec, Ctx);
    if (Pass == 1) {
      SLPVectorizerPass VP(VectorizerConfig::lslp(), TTI);
      Accepted = VP.runOnModule(*M).numAccepted();
      ASSERT_TRUE(verifyModule(*M));
    }
    Interpreter Interp(*M, &TTI);
    initKernelMemory(Interp, *M);
    Interp.run(M->getFunction(Spec->EntryFunction),
               {RuntimeValue::makeInt(Ctx.getInt64Ty(), Spec->DefaultN)});
    Sums[Pass] = checksumGlobals(Interp, *M, Spec->OutputArrays);
  }
  EXPECT_EQ(Sums[0], Sums[1]);
  EXPECT_GT(Accepted, 0u);
}

} // namespace
