//===- tests/vectorizer/AlternateOpcodeTest.cpp - Alt-opcode bundles -----------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Tests for the alternate-opcode extension (add/sub and fadd/fsub mixes,
// the vaddsubpd pattern; present in LLVM's SLP, beyond the paper).
//
//===----------------------------------------------------------------------===//

#include "costmodel/TargetTransformInfo.h"
#include "interp/Interpreter.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "kernels/Kernels.h"
#include "parser/Parser.h"
#include "vectorizer/GraphBuilder.h"
#include "vectorizer/SLPVectorizerPass.h"

#include <gtest/gtest.h>

using namespace lslp;

namespace {

const char *AddSubIR = R"(
global @A = [64 x i64]
global @B = [64 x i64]
global @E = [64 x i64]
define void @f(i64 %i) {
entry:
  %i1 = add i64 %i, 1
  %pa0 = gep i64, ptr @A, i64 %i
  %pa1 = gep i64, ptr @A, i64 %i1
  %pb0 = gep i64, ptr @B, i64 %i
  %pb1 = gep i64, ptr @B, i64 %i1
  %a0 = load i64, ptr %pa0
  %a1 = load i64, ptr %pa1
  %b0 = load i64, ptr %pb0
  %b1 = load i64, ptr %pb1
  %x0 = add i64 %a0, %b0
  %x1 = sub i64 %a1, %b1
  %pe0 = gep i64, ptr @E, i64 %i
  %pe1 = gep i64, ptr @E, i64 %i1
  store i64 %x0, ptr %pe0
  store i64 %x1, ptr %pe1
  ret void
}
)";

std::vector<Instruction *> storesOf(Function *F) {
  std::vector<Instruction *> Result;
  for (const auto &I : *F->getEntryBlock())
    if (isa<StoreInst>(I.get()))
      Result.push_back(I.get());
  return Result;
}

TEST(AlternateOpcode, AddSubMixFormsAlternateNode) {
  Context Ctx;
  auto M = parseModuleOrDie(AddSubIR, Ctx);
  Function *F = M->getFunction("f");
  VectorizerConfig C = VectorizerConfig::slp();
  SLPGraphBuilder B(C, *F->getEntryBlock());
  auto G = B.build(storesOf(F));
  ASSERT_TRUE(G.has_value());
  const SLPNode *Alt = nullptr;
  for (const auto &N : G->nodes())
    if (N->getKind() == SLPNode::NodeKind::Alternate)
      Alt = N.get();
  ASSERT_NE(Alt, nullptr);
  EXPECT_EQ(Alt->getOpcode(), ValueID::Add);
  EXPECT_EQ(Alt->getAltOpcode(), ValueID::Sub);
  EXPECT_FALSE(Alt->isAltLane(0));
  EXPECT_TRUE(Alt->isAltLane(1));
}

TEST(AlternateOpcode, DisabledFallsBackToGather) {
  Context Ctx;
  auto M = parseModuleOrDie(AddSubIR, Ctx);
  Function *F = M->getFunction("f");
  VectorizerConfig C = VectorizerConfig::slp();
  C.EnableAltOpcodes = false;
  SLPGraphBuilder B(C, *F->getEntryBlock());
  auto G = B.build(storesOf(F));
  ASSERT_TRUE(G.has_value());
  for (const auto &N : G->nodes())
    EXPECT_NE(N->getKind(), SLPNode::NodeKind::Alternate);
}

TEST(AlternateOpcode, IncompatibleMixGathers) {
  // add/mul is not a valid alternate pair.
  Context Ctx;
  auto M = parseModuleOrDie(R"(
global @E = [64 x i64]
define void @f(i64 %i, i64 %a, i64 %b) {
entry:
  %i1 = add i64 %i, 1
  %x0 = add i64 %a, %b
  %x1 = mul i64 %a, %b
  %pe0 = gep i64, ptr @E, i64 %i
  %pe1 = gep i64, ptr @E, i64 %i1
  store i64 %x0, ptr %pe0
  store i64 %x1, ptr %pe1
  ret void
}
)",
                            Ctx);
  Function *F = M->getFunction("f");
  VectorizerConfig C = VectorizerConfig::slp();
  SLPGraphBuilder B(C, *F->getEntryBlock());
  auto G = B.build(storesOf(F));
  ASSERT_TRUE(G.has_value());
  for (const auto &N : G->nodes())
    EXPECT_NE(N->getKind(), SLPNode::NodeKind::Alternate);
}

TEST(AlternateOpcode, CodegenEmitsBlendAndPreservesSemantics) {
  SkylakeTTI TTI;
  uint64_t Sums[2];
  for (int Pass = 0; Pass < 2; ++Pass) {
    Context Ctx;
    auto M = parseModuleOrDie(AddSubIR, Ctx);
    if (Pass == 1) {
      VectorizerConfig C = VectorizerConfig::slp();
      // Lower the profitability bar: the 2-lane blend alone is +1.
      C.CostThreshold = 10;
      SLPVectorizerPass VP(C, TTI);
      ModuleReport R = VP.runOnModule(*M);
      ASSERT_GT(R.numAccepted(), 0u);
      ASSERT_TRUE(verifyModule(*M)) << moduleToString(*M);
      // A shufflevector blend combining the add and sub vectors exists.
      bool SawShuffle = false, SawVecAdd = false, SawVecSub = false;
      for (const auto &I : *M->getFunction("f")->getEntryBlock()) {
        SawShuffle |= isa<ShuffleVectorInst>(I.get());
        SawVecAdd |= I->getOpcode() == ValueID::Add &&
                     I->getType()->isVectorTy();
        SawVecSub |= I->getOpcode() == ValueID::Sub &&
                     I->getType()->isVectorTy();
      }
      EXPECT_TRUE(SawShuffle);
      EXPECT_TRUE(SawVecAdd);
      EXPECT_TRUE(SawVecSub);
    }
    Interpreter Interp(*M, &TTI);
    initKernelMemory(Interp, *M);
    Interp.run(M->getFunction("f"),
               {RuntimeValue::makeInt(Ctx.getInt64Ty(), 4)});
    Sums[Pass] = checksumGlobal(Interp, *M, "E");
  }
  EXPECT_EQ(Sums[0], Sums[1]);
}

TEST(AlternateOpcode, ComplexSU2KernelVectorizes) {
  const KernelSpec *Spec = findKernel("mult-su2-complex");
  ASSERT_NE(Spec, nullptr);
  SkylakeTTI TTI;

  uint64_t Sums[2];
  int StaticCost = 0;
  unsigned Accepted = 0;
  for (int Pass = 0; Pass < 2; ++Pass) {
    Context Ctx;
    auto M = buildKernelModule(*Spec, Ctx);
    if (Pass == 1) {
      SLPVectorizerPass VP(VectorizerConfig::lslp(), TTI);
      ModuleReport R = VP.runOnModule(*M);
      StaticCost = R.acceptedCost();
      Accepted = R.numAccepted();
      ASSERT_TRUE(verifyModule(*M));
    }
    Interpreter Interp(*M, &TTI);
    initKernelMemory(Interp, *M);
    Interp.run(M->getFunction(Spec->EntryFunction),
               {RuntimeValue::makeInt(Ctx.getInt64Ty(), Spec->DefaultN)});
    Sums[Pass] = checksumGlobals(Interp, *M, Spec->OutputArrays);
  }
  EXPECT_EQ(Sums[0], Sums[1]);
  EXPECT_GT(Accepted, 0u);
  EXPECT_LT(StaticCost, 0);
}

TEST(AlternateOpcode, ComplexSU2NeedsTheExtension) {
  const KernelSpec *Spec = findKernel("mult-su2-complex");
  Context Ctx;
  SkylakeTTI TTI;
  auto M = buildKernelModule(*Spec, Ctx);
  VectorizerConfig C = VectorizerConfig::lslp();
  C.EnableAltOpcodes = false;
  SLPVectorizerPass VP(C, TTI);
  EXPECT_EQ(VP.runOnModule(*M).numAccepted(), 0u);
}

} // namespace
