//===- tests/vectorizer/CostAndCodeGenTest.cpp - Cost + codegen tests ----------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "costmodel/TargetTransformInfo.h"
#include "interp/Interpreter.h"
#include "ir/BasicBlock.h"
#include "ir/Constants.h"
#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "kernels/Kernels.h"
#include "parser/Parser.h"
#include "vectorizer/CodeGen.h"
#include "vectorizer/CostEvaluator.h"
#include "vectorizer/GraphBuilder.h"
#include "vectorizer/SLPVectorizerPass.h"

#include <gtest/gtest.h>

using namespace lslp;

namespace {

/// Builds the graph for the first seed bundle of the named kernel's loop
/// body and returns its evaluated cost.
int kernelGraphCost(const char *KernelName, const VectorizerConfig &Config) {
  const KernelSpec *Spec = findKernel(KernelName);
  EXPECT_NE(Spec, nullptr);
  Context Ctx;
  auto M = buildKernelModule(*Spec, Ctx);
  SkylakeTTI TTI;
  SLPVectorizerPass Pass(Config, TTI);
  FunctionReport Report =
      Pass.runOnFunction(*M->getFunction(Spec->EntryFunction));
  EXPECT_EQ(Report.Attempts.size(), 1u);
  return Report.Attempts.empty() ? 0 : Report.Attempts[0].Cost;
}

//===----------------------------------------------------------------------===//
// The paper's motivating examples: exact graph costs (Figures 2-4)
//===----------------------------------------------------------------------===//

TEST(MotivationCosts, Figure2LoadMismatch) {
  // SLP graph: cost 0, not vectorized. LSLP graph: cost -6.
  EXPECT_EQ(kernelGraphCost("motivation-loads", VectorizerConfig::slp()), 0);
  EXPECT_EQ(kernelGraphCost("motivation-loads", VectorizerConfig::lslp()),
            -6);
}

TEST(MotivationCosts, Figure3OpcodeMismatch) {
  // SLP must be unprofitable (the paper reports +4; the exact positive
  // value depends on how the failing slots pair constants with
  // instructions). LSLP reaches the paper's -2.
  EXPECT_GE(kernelGraphCost("motivation-opcodes", VectorizerConfig::slp()),
            0);
  EXPECT_EQ(kernelGraphCost("motivation-opcodes", VectorizerConfig::lslp()),
            -2);
}

TEST(MotivationCosts, Figure4AssociativityMismatch) {
  // SLP partially vectorizes at -2; LSLP's multi-node reaches -10.
  EXPECT_EQ(kernelGraphCost("motivation-multi", VectorizerConfig::slp()),
            -2);
  EXPECT_EQ(kernelGraphCost("motivation-multi", VectorizerConfig::lslp()),
            -10);
}

TEST(MotivationCosts, LookAheadAloneIsNotEnoughForFigure4) {
  // Multi-node formation is required for the associativity example; plain
  // look-ahead (multi-node size 1) stays at the SLP cost level.
  VectorizerConfig C = VectorizerConfig::lslp();
  C.MaxMultiNodeSize = 1;
  EXPECT_GT(kernelGraphCost("motivation-multi", C), -10);
}

TEST(MotivationCosts, ReorderingDisabledMatchesNoReordering) {
  // On Figure 2, SLP's reordering does not help: SLP-NR sees the same
  // cost (the paper's observation that SLP == SLP-NR on these kernels).
  EXPECT_EQ(
      kernelGraphCost("motivation-loads", VectorizerConfig::slpNoReordering()),
      kernelGraphCost("motivation-loads", VectorizerConfig::slp()));
}

//===----------------------------------------------------------------------===//
// Cost evaluator pieces
//===----------------------------------------------------------------------===//

struct ParsedFn {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = nullptr;

  explicit ParsedFn(const char *Src) {
    M = parseModuleOrDie(Src, Ctx);
    F = M->functions().front().get();
  }

  std::vector<Instruction *> stores() {
    std::vector<Instruction *> Result;
    for (const auto &I : *F->getEntryBlock())
      if (isa<StoreInst>(I.get()))
        Result.push_back(I.get());
    return Result;
  }
};

TEST(CostEvaluator, ConstantOperandsAreFree) {
  ParsedFn P(R"(
global @A = [16 x i64]
global @E = [16 x i64]
define void @f(i64 %i) {
entry:
  %i1 = add i64 %i, 1
  %pa0 = gep i64, ptr @A, i64 %i
  %pa1 = gep i64, ptr @A, i64 %i1
  %l0 = load i64, ptr %pa0
  %l1 = load i64, ptr %pa1
  %x0 = add i64 %l0, 7
  %x1 = add i64 %l1, 9
  %pe0 = gep i64, ptr @E, i64 %i
  %pe1 = gep i64, ptr @E, i64 %i1
  store i64 %x0, ptr %pe0
  store i64 %x1, ptr %pe1
  ret void
}
)");
  VectorizerConfig C = VectorizerConfig::slp();
  SLPGraphBuilder B(C, *P.F->getEntryBlock());
  auto G = B.build(P.stores());
  ASSERT_TRUE(G.has_value());
  SkylakeTTI TTI;
  // store -1, add -1, load -1, constants 0.
  EXPECT_EQ(evaluateGraphCost(*G, TTI), -3);
  for (const auto &N : G->nodes())
    if (N->getKind() == SLPNode::NodeKind::Gather) {
      EXPECT_EQ(N->getCost(), 0);
    }
}

TEST(CostEvaluator, ExternalUsePaysExtract) {
  ParsedFn P(R"(
global @A = [16 x i64]
global @E = [16 x i64]
global @T = [16 x i64]
define void @f(i64 %i) {
entry:
  %i1 = add i64 %i, 1
  %pa0 = gep i64, ptr @A, i64 %i
  %pa1 = gep i64, ptr @A, i64 %i1
  %l0 = load i64, ptr %pa0
  %l1 = load i64, ptr %pa1
  %x0 = add i64 %l0, 7
  %x1 = add i64 %l1, 9
  %pt = gep i64, ptr @T, i64 %i
  store i64 %x0, ptr %pt
  %pe0 = gep i64, ptr @E, i64 %i
  %pe1 = gep i64, ptr @E, i64 %i1
  store i64 %x0, ptr %pe0
  store i64 %x1, ptr %pe1
  ret void
}
)");
  // Only seed the two consecutive @E stores; the @T store is an external
  // user of %x0.
  std::vector<Instruction *> Seeds;
  for (Instruction *St : P.stores()) {
    const auto *S = cast<StoreInst>(St);
    if (cast<GEPInst>(S->getPointerOperand())->getBaseOperand()->getName() ==
        "E")
      Seeds.push_back(St);
  }
  ASSERT_EQ(Seeds.size(), 2u);
  VectorizerConfig C = VectorizerConfig::slp();
  SLPGraphBuilder B(C, *P.F->getEntryBlock());
  auto G = B.build(Seeds);
  ASSERT_TRUE(G.has_value());
  SkylakeTTI TTI;
  // Same as the previous test (-3) plus one extract (+1).
  EXPECT_EQ(evaluateGraphCost(*G, TTI), -2);
}

//===----------------------------------------------------------------------===//
// Code generation
//===----------------------------------------------------------------------===//

/// Runs the whole pass over a parsed module with the given config and
/// checks semantic equivalence against the unvectorized original.
void expectEquivalent(const char *Src, const VectorizerConfig &Config,
                      const char *EntryName, uint64_t ArgN,
                      const std::vector<std::string> &Outputs,
                      bool ExpectVectorized) {
  SkylakeTTI TTI;
  uint64_t Checksums[2];
  unsigned Accepted = 0;
  for (int Pass = 0; Pass < 2; ++Pass) {
    Context Ctx;
    auto M = parseModuleOrDie(Src, Ctx);
    if (Pass == 1) {
      SLPVectorizerPass VP(Config, TTI);
      ModuleReport R = VP.runOnModule(*M);
      Accepted = R.numAccepted();
      std::vector<std::string> Errors;
      ASSERT_TRUE(verifyModule(*M, &Errors)) << moduleToString(*M);
    }
    Interpreter Interp(*M, &TTI);
    initKernelMemory(Interp, *M);
    Interp.run(M->getFunction(EntryName),
               {RuntimeValue::makeInt(Ctx.getInt64Ty(), ArgN)});
    Checksums[Pass] = checksumGlobals(Interp, *M, Outputs);
  }
  EXPECT_EQ(Checksums[0], Checksums[1]);
  if (ExpectVectorized) {
    EXPECT_GT(Accepted, 0u);
  }
}

TEST(CodeGen, StraightLineStoreLoadAdd) {
  const char *Src = R"(
global @A = [64 x i64]
global @E = [64 x i64]
define void @k(i64 %n) {
entry:
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %next, %loop ]
  %i1 = add i64 %i, 1
  %pa0 = gep i64, ptr @A, i64 %i
  %pa1 = gep i64, ptr @A, i64 %i1
  %l0 = load i64, ptr %pa0
  %l1 = load i64, ptr %pa1
  %x0 = add i64 %l0, 7
  %x1 = add i64 %l1, 9
  %pe0 = gep i64, ptr @E, i64 %i
  %pe1 = gep i64, ptr @E, i64 %i1
  store i64 %x0, ptr %pe0
  store i64 %x1, ptr %pe1
  %next = add i64 %i, 2
  %c = icmp slt i64 %next, %n
  br i1 %c, label %loop, label %exit
exit:
  ret void
}
)";
  expectEquivalent(Src, VectorizerConfig::slp(), "k", 32, {"E"}, true);
}

TEST(CodeGen, VectorInstructionsEmitted) {
  Context Ctx;
  auto M = parseModuleOrDie(R"(
global @A = [64 x i64]
global @E = [64 x i64]
define void @k(i64 %i) {
entry:
  %i1 = add i64 %i, 1
  %pa0 = gep i64, ptr @A, i64 %i
  %pa1 = gep i64, ptr @A, i64 %i1
  %l0 = load i64, ptr %pa0
  %l1 = load i64, ptr %pa1
  %x0 = add i64 %l0, 7
  %x1 = add i64 %l1, 9
  %pe0 = gep i64, ptr @E, i64 %i
  %pe1 = gep i64, ptr @E, i64 %i1
  store i64 %x0, ptr %pe0
  store i64 %x1, ptr %pe1
  ret void
}
)",
                            Ctx);
  SkylakeTTI TTI;
  SLPVectorizerPass VP(VectorizerConfig::slp(), TTI);
  FunctionReport R = VP.runOnFunction(*M->getFunction("k"));
  ASSERT_EQ(R.numAccepted(), 1u);

  // The block now contains a vector load, a vector add with a constant
  // vector operand, a vector store — and none of the scalar originals.
  unsigned VecLoads = 0, VecAdds = 0, VecStores = 0, ScalarStores = 0;
  bool ConstVecOperand = false;
  for (const auto &I : *M->getFunction("k")->getEntryBlock()) {
    if (auto *L = dyn_cast<LoadInst>(I.get()))
      VecLoads += L->getType()->isVectorTy();
    if (I->getOpcode() == ValueID::Add && I->getType()->isVectorTy()) {
      ++VecAdds;
      ConstVecOperand |= isa<ConstantVector>(I->getOperand(1)) ||
                         isa<ConstantVector>(I->getOperand(0));
    }
    if (auto *S = dyn_cast<StoreInst>(I.get())) {
      if (S->getAccessType()->isVectorTy())
        ++VecStores;
      else
        ++ScalarStores;
    }
  }
  EXPECT_EQ(VecLoads, 1u);
  EXPECT_EQ(VecAdds, 1u);
  EXPECT_EQ(VecStores, 1u);
  EXPECT_EQ(ScalarStores, 0u);
  EXPECT_TRUE(ConstVecOperand);
  EXPECT_TRUE(verifyModule(*M));
}

TEST(CodeGen, ExternalUserGetsExtract) {
  Context Ctx;
  auto M = parseModuleOrDie(R"(
global @A = [64 x i64]
global @E = [64 x i64]
global @T = [64 x i64]
define void @k(i64 %i) {
entry:
  %i1 = add i64 %i, 1
  %pa0 = gep i64, ptr @A, i64 %i
  %pa1 = gep i64, ptr @A, i64 %i1
  %l0 = load i64, ptr %pa0
  %l1 = load i64, ptr %pa1
  %x0 = add i64 %l0, 7
  %x1 = add i64 %l1, 9
  %y = mul i64 %x0, 3
  %pt = gep i64, ptr @T, i64 %i
  store i64 %y, ptr %pt
  %pe0 = gep i64, ptr @E, i64 %i
  %pe1 = gep i64, ptr @E, i64 %i1
  store i64 %x0, ptr %pe0
  store i64 %x1, ptr %pe1
  ret void
}
)",
                            Ctx);
  SkylakeTTI TTI;
  SLPVectorizerPass VP(VectorizerConfig::slp(), TTI);
  FunctionReport R = VP.runOnFunction(*M->getFunction("k"));
  ASSERT_EQ(R.numAccepted(), 1u);
  ASSERT_TRUE(verifyModule(*M));

  // %y's operand must now be an extractelement of the vector add.
  Instruction *Mul = nullptr;
  for (const auto &I : *M->getFunction("k")->getEntryBlock())
    if (I->getOpcode() == ValueID::Mul)
      Mul = I.get();
  ASSERT_NE(Mul, nullptr);
  EXPECT_TRUE(isa<ExtractElementInst>(Mul->getOperand(0)));
}

TEST(CodeGen, MultiNodeEmitsVectorChain) {
  const KernelSpec *Spec = findKernel("motivation-multi");
  ASSERT_NE(Spec, nullptr);
  Context Ctx;
  auto M = buildKernelModule(*Spec, Ctx);
  SkylakeTTI TTI;
  SLPVectorizerPass VP(VectorizerConfig::lslp(), TTI);
  FunctionReport R = VP.runOnFunction(*M->getFunction(Spec->EntryFunction));
  ASSERT_EQ(R.numAccepted(), 1u);
  ASSERT_TRUE(verifyModule(*M));

  // The '&' chain lowers to exactly two vector 'and' instructions, and no
  // scalar 'and' survives.
  unsigned VecAnds = 0, ScalarAnds = 0;
  for (const auto &BB : *M->getFunction(Spec->EntryFunction))
    for (const auto &I : *BB)
      if (I->getOpcode() == ValueID::And) {
        if (I->getType()->isVectorTy())
          ++VecAnds;
        else
          ++ScalarAnds;
      }
  EXPECT_EQ(VecAnds, 2u);
  EXPECT_EQ(ScalarAnds, 0u);
}

TEST(CodeGen, MotivationKernelsAllEquivalentUnderEveryConfig) {
  for (const char *Name :
       {"motivation-loads", "motivation-opcodes", "motivation-multi"}) {
    const KernelSpec *Spec = findKernel(Name);
    ASSERT_NE(Spec, nullptr);
    for (const VectorizerConfig &Config :
         {VectorizerConfig::slpNoReordering(), VectorizerConfig::slp(),
          VectorizerConfig::lslp()}) {
      SCOPED_TRACE(std::string(Name) + " / " + Config.Name);
      Context Ctx;
      auto M = buildKernelModule(*Spec, Ctx);
      std::string Src = moduleToString(*M);
      expectEquivalent(Src.c_str(), Config, Spec->EntryFunction.c_str(),
                       Spec->DefaultN, Spec->OutputArrays,
                       /*ExpectVectorized=*/false);
    }
  }
}

} // namespace
