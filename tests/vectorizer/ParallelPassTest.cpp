//===- tests/vectorizer/ParallelPassTest.cpp - Parallel driver parity ---------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Pins the determinism contract of SLPVectorizerPass::runOnModule(M, Jobs):
// with any number of workers, the transformed IR, the per-function reports,
// the remark stream, and the statistics totals are identical to the serial
// run (see DESIGN.md "Concurrency model").
//
//===----------------------------------------------------------------------===//

#include "costmodel/TargetTransformInfo.h"
#include "diag/RemarkEngine.h"
#include "diag/Statistics.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "parser/Parser.h"
#include "support/OStream.h"
#include "vectorizer/SLPVectorizerPass.h"

#include <gtest/gtest.h>

using namespace lslp;

namespace {

/// Six functions spanning the remark-kind families (the diag_tour example
/// module): vectorizable pairs, a multi-node, a reduction, a cost
/// rejection, and a scheduler bailout — enough varied work that a racy
/// parallel driver would be caught.
const char *TourSrc = R"(module "tour"
global @A = [8 x i64]
global @B = [8 x i64]
global @C = [8 x i64]
global @D = [8 x i64]
global @E = [8 x i64]
global @X = [8 x double]
global @S = [8 x double]

define void @lookahead(i64 %i) {
entry:
  %i1 = add i64 %i, 1
  %pb0 = gep i64, ptr @B, i64 %i
  %pc0 = gep i64, ptr @C, i64 %i
  %pb1 = gep i64, ptr @B, i64 %i1
  %pc1 = gep i64, ptr @C, i64 %i1
  %b0 = load i64, ptr %pb0
  %c0 = load i64, ptr %pc0
  %c1 = load i64, ptr %pc1
  %b1 = load i64, ptr %pb1
  %sh0l = shl i64 %b0, 1
  %sh0r = shl i64 %c0, 2
  %sh1l = shl i64 %c1, 3
  %sh1r = shl i64 %b1, 4
  %and0 = and i64 %sh0l, %sh0r
  %and1 = and i64 %sh1l, %sh1r
  %pa0 = gep i64, ptr @A, i64 %i
  %pa1 = gep i64, ptr @A, i64 %i1
  store i64 %and0, ptr %pa0
  store i64 %and1, ptr %pa1
  ret void
}

define void @multinode(i64 %i) {
entry:
  %i1 = add i64 %i, 1
  %pa0 = gep i64, ptr @A, i64 %i
  %pa1 = gep i64, ptr @A, i64 %i1
  %pb0 = gep i64, ptr @B, i64 %i
  %pb1 = gep i64, ptr @B, i64 %i1
  %pc0 = gep i64, ptr @C, i64 %i
  %pc1 = gep i64, ptr @C, i64 %i1
  %pd0 = gep i64, ptr @D, i64 %i
  %pd1 = gep i64, ptr @D, i64 %i1
  %pe0 = gep i64, ptr @E, i64 %i
  %pe1 = gep i64, ptr @E, i64 %i1
  %a0 = load i64, ptr %pa0
  %b0 = load i64, ptr %pb0
  %c0 = load i64, ptr %pc0
  %d0 = load i64, ptr %pd0
  %e0 = load i64, ptr %pe0
  %bc0 = add i64 %b0, %c0
  %de0 = add i64 %d0, %e0
  %t0 = and i64 %a0, %bc0
  %r0 = and i64 %t0, %de0
  store i64 %r0, ptr %pa0
  %a1 = load i64, ptr %pa1
  %b1 = load i64, ptr %pb1
  %c1 = load i64, ptr %pc1
  %d1 = load i64, ptr %pd1
  %e1 = load i64, ptr %pe1
  %de1 = add i64 %d1, %e1
  %bc1 = add i64 %b1, %c1
  %t1 = and i64 %de1, %bc1
  %r1 = and i64 %t1, %a1
  store i64 %r1, ptr %pa1
  ret void
}

define void @reduce() {
entry:
  %px0 = gep double, ptr @X, i64 0
  %px1 = gep double, ptr @X, i64 1
  %px2 = gep double, ptr @X, i64 2
  %px3 = gep double, ptr @X, i64 3
  %x0 = load double, ptr %px0
  %x1 = load double, ptr %px1
  %x2 = load double, ptr %px2
  %x3 = load double, ptr %px3
  %s01 = fadd double %x0, %x1
  %s23 = fadd double %x2, %x3
  %sum = fadd double %s01, %s23
  %ps = gep double, ptr @S, i64 0
  store double %sum, ptr %ps
  ret void
}

define void @reject(i64 %x, i64 %y) {
entry:
  %pd0 = gep i64, ptr @D, i64 0
  %pd1 = gep i64, ptr @D, i64 1
  store i64 %x, ptr %pd0
  store i64 %y, ptr %pd1
  ret void
}

define void @bailout() {
entry:
  %pc0 = gep i64, ptr @C, i64 0
  %pe0 = gep i64, ptr @E, i64 0
  %pe1 = gep i64, ptr @E, i64 1
  %t = load i64, ptr %pc0
  store i64 %t, ptr %pe0
  %u = load i64, ptr %pe0
  store i64 %u, ptr %pe1
  ret void
}

define void @cse() {
entry:
  %pb0 = gep i64, ptr @B, i64 0
  %t1 = load i64, ptr %pb0
  %t2 = load i64, ptr %pb0
  %s = add i64 %t1, %t2
  %pa0 = gep i64, ptr @A, i64 0
  store i64 %s, ptr %pa0
  ret void
}
)";

/// Everything observable from one runOnModule invocation.
struct RunResult {
  std::string IR;
  ModuleReport Report;
  std::vector<Remark> Remarks;
  std::string StatsJSON;
};

RunResult runTour(const VectorizerConfig &Base, unsigned Jobs) {
  Context Ctx;
  auto M = parseModuleOrDie(TourSrc, Ctx);
  SkylakeTTI TTI;
  RemarkEngine Engine;
  Engine.setKeepRemarks(true);
  VectorizerConfig Config = Base;
  Config.Remarks = &Engine;
  SLPVectorizerPass Pass(Config, TTI);
  StatisticsRegistry::instance().resetAll();
  RunResult Out;
  Out.Report = Pass.runOnModule(*M, Jobs);
  EXPECT_TRUE(verifyModule(*M));
  Out.IR = moduleToString(*M);
  Out.Remarks = Engine.remarks();
  StringOStream OS(Out.StatsJSON);
  StatisticsRegistry::instance().printJSON(OS);
  return Out;
}

void expectSameRun(const RunResult &Serial, const RunResult &Parallel,
                   unsigned Jobs) {
  EXPECT_EQ(Serial.IR, Parallel.IR) << "IR differs at jobs=" << Jobs;
  EXPECT_EQ(Serial.StatsJSON, Parallel.StatsJSON)
      << "stats differ at jobs=" << Jobs;
  EXPECT_EQ(Serial.Remarks, Parallel.Remarks)
      << "remark stream differs at jobs=" << Jobs;
  ASSERT_EQ(Serial.Report.Functions.size(), Parallel.Report.Functions.size());
  for (size_t I = 0; I != Serial.Report.Functions.size(); ++I) {
    const FunctionReport &S = Serial.Report.Functions[I];
    const FunctionReport &P = Parallel.Report.Functions[I];
    EXPECT_EQ(S.FunctionName, P.FunctionName) << "function order differs";
    EXPECT_EQ(S.acceptedCost(), P.acceptedCost()) << S.FunctionName;
    ASSERT_EQ(S.Attempts.size(), P.Attempts.size()) << S.FunctionName;
    for (size_t A = 0; A != S.Attempts.size(); ++A) {
      EXPECT_EQ(S.Attempts[A].Cost, P.Attempts[A].Cost);
      EXPECT_EQ(S.Attempts[A].Accepted, P.Attempts[A].Accepted);
      EXPECT_EQ(S.Attempts[A].NumLanes, P.Attempts[A].NumLanes);
      EXPECT_EQ(S.Attempts[A].NumNodes, P.Attempts[A].NumNodes);
    }
  }
}

TEST(ParallelPass, LSLPMatchesSerialAtEveryWidth) {
  RunResult Serial = runTour(VectorizerConfig::lslp(), 1);
  EXPECT_FALSE(Serial.Remarks.empty());
  EXPECT_GT(Serial.Report.numAccepted(), 0u);
  for (unsigned Jobs : {2u, 4u, 8u}) {
    RunResult Parallel = runTour(VectorizerConfig::lslp(), Jobs);
    expectSameRun(Serial, Parallel, Jobs);
  }
}

TEST(ParallelPass, SLPAndNoReorderingMatchSerial) {
  for (const VectorizerConfig &Config :
       {VectorizerConfig::slpNoReordering(), VectorizerConfig::slp()}) {
    RunResult Serial = runTour(Config, 1);
    RunResult Parallel = runTour(Config, 4);
    expectSameRun(Serial, Parallel, 4);
  }
}

TEST(ParallelPass, RepeatedParallelRunsAreStable) {
  // A racy merge would show up as run-to-run jitter; pin several rounds.
  RunResult First = runTour(VectorizerConfig::lslp(), 4);
  for (int Round = 0; Round != 3; ++Round) {
    RunResult Next = runTour(VectorizerConfig::lslp(), 4);
    EXPECT_EQ(First.IR, Next.IR);
    EXPECT_EQ(First.Remarks, Next.Remarks);
    EXPECT_EQ(First.StatsJSON, Next.StatsJSON);
  }
}

} // namespace
