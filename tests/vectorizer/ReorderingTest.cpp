//===- tests/vectorizer/ReorderingTest.cpp - Operand reordering tests ----------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "vectorizer/OperandReordering.h"

#include "ir/BasicBlock.h"
#include "ir/Constants.h"
#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/Module.h"
#include "parser/Parser.h"

#include <gtest/gtest.h>

using namespace lslp;

namespace {

struct ParsedFn {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = nullptr;

  explicit ParsedFn(const char *Src) {
    M = parseModuleOrDie(Src, Ctx);
    F = M->functions().front().get();
  }

  Value *get(const std::string &Name) {
    for (const auto &BB : *F)
      for (const auto &I : *BB)
        if (I->getName() == Name)
          return I.get();
    return nullptr;
  }
};

VectorizerConfig slpConfig() { return VectorizerConfig::slp(); }
VectorizerConfig lslpConfig() { return VectorizerConfig::lslp(); }

TEST(Reordering, FirstLaneIsStripped) {
  // Lane 0 keeps its order whatever happens in later lanes.
  ParsedFn P(R"(
define void @f(i64 %a, i64 %b) {
entry:
  %x0 = add i64 %a, 1
  %y0 = mul i64 %a, 2
  %x1 = add i64 %b, 1
  %y1 = mul i64 %b, 2
  ret void
}
)");
  std::vector<std::vector<Value *>> Ops = {
      {P.get("y0"), P.get("x1")}, // Slot 0: mul then add.
      {P.get("x0"), P.get("y1")}, // Slot 1: add then mul.
  };
  VectorizerConfig C = slpConfig();
  ReorderResult R = reorderOperands(Ops, C);
  EXPECT_EQ(R.Final[0][0], P.get("y0"));
  EXPECT_EQ(R.Final[1][0], P.get("x0"));
  // Lane 1 swaps so opcodes line up: mul with mul, add with add.
  EXPECT_EQ(R.Final[0][1], P.get("y1"));
  EXPECT_EQ(R.Final[1][1], P.get("x1"));
  EXPECT_TRUE(R.Changed);
  EXPECT_EQ(R.Modes[0], OperandMode::Opcode);
  EXPECT_EQ(R.Modes[1], OperandMode::Opcode);
}

TEST(Reordering, AlreadyAlignedIsUnchanged) {
  ParsedFn P(R"(
define void @f(i64 %a, i64 %b) {
entry:
  %x0 = add i64 %a, 1
  %y0 = mul i64 %a, 2
  %x1 = add i64 %b, 1
  %y1 = mul i64 %b, 2
  ret void
}
)");
  std::vector<std::vector<Value *>> Ops = {
      {P.get("x0"), P.get("x1")},
      {P.get("y0"), P.get("y1")},
  };
  VectorizerConfig C = slpConfig();
  ReorderResult R = reorderOperands(Ops, C);
  EXPECT_FALSE(R.Changed);
  EXPECT_EQ(R.Final, Ops);
}

TEST(Reordering, ConstantMode) {
  ParsedFn P(R"(
define void @f(i64 %a, i64 %b) {
entry:
  %x1 = add i64 %b, 1
  ret void
}
)");
  Context &Ctx = P.Ctx;
  // Slot 0 starts with a constant; in lane 1 the constant arrives in the
  // other position.
  std::vector<std::vector<Value *>> Ops = {
      {Ctx.getInt64(3), P.get("x1")},
      {P.F->getArg(0), Ctx.getInt64(5)},
  };
  VectorizerConfig C = slpConfig();
  ReorderResult R = reorderOperands(Ops, C);
  EXPECT_EQ(R.Final[0][1], Ctx.getInt64(5));
  EXPECT_EQ(R.Final[1][1], P.get("x1"));
  EXPECT_EQ(R.Modes[0], OperandMode::Constant);
}

TEST(Reordering, LoadModePicksConsecutive) {
  ParsedFn P(R"(
global @A = [16 x i64]
global @B = [16 x i64]
define void @f(i64 %i) {
entry:
  %i1 = add i64 %i, 1
  %pa0 = gep i64, ptr @A, i64 %i
  %pa1 = gep i64, ptr @A, i64 %i1
  %pb0 = gep i64, ptr @B, i64 %i
  %pb1 = gep i64, ptr @B, i64 %i1
  %a0 = load i64, ptr %pa0
  %a1 = load i64, ptr %pa1
  %b0 = load i64, ptr %pb0
  %b1 = load i64, ptr %pb1
  ret void
}
)");
  // Lane 1 presents the loads swapped; LOAD mode must select the
  // address-consecutive one for each slot.
  std::vector<std::vector<Value *>> Ops = {
      {P.get("a0"), P.get("b1")},
      {P.get("b0"), P.get("a1")},
  };
  VectorizerConfig C = slpConfig();
  ReorderResult R = reorderOperands(Ops, C);
  EXPECT_EQ(R.Final[0][1], P.get("a1"));
  EXPECT_EQ(R.Final[1][1], P.get("b1"));
  EXPECT_TRUE(R.Changed);
  EXPECT_EQ(R.Modes[0], OperandMode::Load);
  EXPECT_EQ(R.Modes[1], OperandMode::Load);
}

TEST(Reordering, SplatDetection) {
  ParsedFn P(R"(
define void @f(i64 %a, i64 %b) {
entry:
  %s = add i64 %a, %b
  %x1 = add i64 %b, 1
  %x2 = add i64 %b, 2
  ret void
}
)");
  // The same instruction %s appears in every lane of slot 0.
  std::vector<std::vector<Value *>> Ops = {
      {P.get("s"), P.get("s"), P.get("s")},
      {P.get("x1"), P.get("x2"), P.get("x1")},
  };
  VectorizerConfig C = lslpConfig();
  ReorderResult R = reorderOperands(Ops, C);
  EXPECT_EQ(R.Modes[0], OperandMode::Splat);
  EXPECT_EQ(R.Final[0][0], P.get("s"));
  EXPECT_EQ(R.Final[0][1], P.get("s"));
  EXPECT_EQ(R.Final[0][2], P.get("s"));
}

TEST(Reordering, SplatDisabledFallsBackToOpcode) {
  ParsedFn P(R"(
define void @f(i64 %a, i64 %b) {
entry:
  %s = add i64 %a, %b
  %x1 = add i64 %b, 1
  ret void
}
)");
  std::vector<std::vector<Value *>> Ops = {
      {P.get("s"), P.get("s")},
      {P.get("x1"), P.get("x1")},
  };
  VectorizerConfig C = lslpConfig();
  C.EnableSplatMode = false;
  ReorderResult R = reorderOperands(Ops, C);
  // Same assignment, but the mode never switches to Splat.
  EXPECT_EQ(R.Modes[0], OperandMode::Opcode);
}

TEST(Reordering, FailedSlotYieldsToOthersAndTakesLeftover) {
  ParsedFn P(R"(
global @A = [16 x i64]
define void @f(i64 %i, i64 %a) {
entry:
  %i1 = add i64 %i, 1
  %p0 = gep i64, ptr @A, i64 %i
  %p1 = gep i64, ptr @A, i64 %i1
  %l0 = load i64, ptr %p0
  %l1 = load i64, ptr %p1
  %m1 = mul i64 %a, 2
  ret void
}
)");
  Context &Ctx = P.Ctx;
  // Slot 0 is a constant slot but lane 1 has no constant: it fails and
  // must not steal the load that slot 1 needs.
  std::vector<std::vector<Value *>> Ops = {
      {Ctx.getInt64(1), P.get("m1")},
      {P.get("l0"), P.get("l1")},
  };
  VectorizerConfig C = slpConfig();
  ReorderResult R = reorderOperands(Ops, C);
  EXPECT_EQ(R.Modes[0], OperandMode::Failed);
  EXPECT_EQ(R.Modes[1], OperandMode::Load);
  EXPECT_EQ(R.Final[1][1], P.get("l1"));
  EXPECT_EQ(R.Final[0][1], P.get("m1"));
}

TEST(Reordering, LookAheadBreaksOpcodeTies) {
  // Paper Figure 2 pattern: both lane-1 candidates are shifts; only
  // look-ahead sees the loads behind them.
  ParsedFn P(R"(
global @B = [16 x i64]
global @C = [16 x i64]
define void @f(i64 %i) {
entry:
  %i1 = add i64 %i, 1
  %pb0 = gep i64, ptr @B, i64 %i
  %pc0 = gep i64, ptr @C, i64 %i
  %pb1 = gep i64, ptr @B, i64 %i1
  %pc1 = gep i64, ptr @C, i64 %i1
  %lb0 = load i64, ptr %pb0
  %lc0 = load i64, ptr %pc0
  %lb1 = load i64, ptr %pb1
  %lc1 = load i64, ptr %pc1
  %sb0 = shl i64 %lb0, 1
  %sc0 = shl i64 %lc0, 2
  %sc1 = shl i64 %lc1, 3
  %sb1 = shl i64 %lb1, 4
  ret void
}
)");
  std::vector<std::vector<Value *>> Ops = {
      {P.get("sb0"), P.get("sc1")},
      {P.get("sc0"), P.get("sb1")},
  };
  // Vanilla SLP: ties resolve to the first candidate -> unchanged.
  VectorizerConfig SLP = slpConfig();
  ReorderResult RSLP = reorderOperands(Ops, SLP);
  EXPECT_EQ(RSLP.Final[0][1], P.get("sc1"));
  EXPECT_FALSE(RSLP.Changed);
  // LSLP: look-ahead pairs the shifts over consecutive loads.
  VectorizerConfig LSLP = lslpConfig();
  ReorderResult RLSLP = reorderOperands(Ops, LSLP);
  EXPECT_EQ(RLSLP.Final[0][1], P.get("sb1"));
  EXPECT_EQ(RLSLP.Final[1][1], P.get("sc1"));
  EXPECT_TRUE(RLSLP.Changed);
}

TEST(Reordering, LookAheadDepthZeroBehavesLikeVanilla) {
  ParsedFn P(R"(
global @B = [16 x i64]
define void @f(i64 %i) {
entry:
  %i1 = add i64 %i, 1
  %pb0 = gep i64, ptr @B, i64 %i
  %pb1 = gep i64, ptr @B, i64 %i1
  %lb0 = load i64, ptr %pb0
  %lb1 = load i64, ptr %pb1
  %s0 = shl i64 %lb0, 1
  %s1 = shl i64 %lb1, 2
  %t1 = shl i64 %lb1, 3
  ret void
}
)");
  std::vector<std::vector<Value *>> Ops = {
      {P.get("s0"), P.get("t1")},
      {P.get("s0"), P.get("s1")},
  };
  VectorizerConfig LA0 = lslpConfig();
  LA0.MaxLookAheadLevel = 0;
  ReorderResult R = reorderOperands(Ops, LA0);
  // With no look-ahead levels the tie resolves to the first candidate.
  EXPECT_EQ(R.Final[0][1], P.get("t1"));
}

TEST(Reordering, ExhaustiveStrategyFixesGreedyMiss) {
  // Greedy slot order can strand a later slot; the exhaustive per-lane
  // strategy scores whole permutations and avoids it. Both must at least
  // fix the simple crossed-loads case identically.
  ParsedFn P(R"(
global @A = [16 x i64]
global @B = [16 x i64]
define void @f(i64 %i) {
entry:
  %i1 = add i64 %i, 1
  %pa0 = gep i64, ptr @A, i64 %i
  %pa1 = gep i64, ptr @A, i64 %i1
  %pb0 = gep i64, ptr @B, i64 %i
  %pb1 = gep i64, ptr @B, i64 %i1
  %a0 = load i64, ptr %pa0
  %a1 = load i64, ptr %pa1
  %b0 = load i64, ptr %pb0
  %b1 = load i64, ptr %pb1
  ret void
}
)");
  std::vector<std::vector<Value *>> Ops = {
      {P.get("a0"), P.get("b1")},
      {P.get("b0"), P.get("a1")},
  };
  VectorizerConfig C = lslpConfig();
  C.ReorderStrategy =
      VectorizerConfig::ReorderStrategyKind::ExhaustivePerLane;
  ReorderResult R = reorderOperands(Ops, C);
  EXPECT_EQ(R.Final[0][1], P.get("a1"));
  EXPECT_EQ(R.Final[1][1], P.get("b1"));
  EXPECT_TRUE(R.Changed);
  EXPECT_EQ(R.Modes[0], OperandMode::Load);
}

TEST(Reordering, ExhaustiveDetectsSplatAndFailure) {
  ParsedFn P(R"(
define void @f(i64 %a, i64 %b) {
entry:
  %s = add i64 %a, %b
  %m1 = mul i64 %b, 2
  ret void
}
)");
  std::vector<std::vector<Value *>> Ops = {
      {P.get("s"), P.get("s")},
      {P.get("m1"), P.F->getArg(0)},
  };
  VectorizerConfig C = lslpConfig();
  C.ReorderStrategy =
      VectorizerConfig::ReorderStrategyKind::ExhaustivePerLane;
  ReorderResult R = reorderOperands(Ops, C);
  EXPECT_EQ(R.Modes[0], OperandMode::Splat);
  EXPECT_EQ(R.Modes[1], OperandMode::Failed); // mul vs argument.
}

TEST(Reordering, SingleSlotManyLanes) {
  ParsedFn P(R"(
define void @f(i64 %a) {
entry:
  %x0 = add i64 %a, 0
  %x1 = add i64 %a, 1
  %x2 = add i64 %a, 2
  %x3 = add i64 %a, 3
  ret void
}
)");
  std::vector<std::vector<Value *>> Ops = {
      {P.get("x0"), P.get("x1"), P.get("x2"), P.get("x3")}};
  VectorizerConfig C = lslpConfig();
  ReorderResult R = reorderOperands(Ops, C);
  EXPECT_FALSE(R.Changed);
  EXPECT_EQ(R.Modes[0], OperandMode::Opcode);
}

} // namespace
