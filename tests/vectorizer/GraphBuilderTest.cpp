//===- tests/vectorizer/GraphBuilderTest.cpp - Graph construction tests --------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "vectorizer/GraphBuilder.h"

#include "ir/BasicBlock.h"
#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/Module.h"
#include "parser/Parser.h"
#include "vectorizer/SeedCollector.h"

#include "costmodel/TargetTransformInfo.h"

#include <gtest/gtest.h>

using namespace lslp;

namespace {

struct ParsedFn {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = nullptr;

  explicit ParsedFn(const char *Src) {
    M = parseModuleOrDie(Src, Ctx);
    F = M->functions().front().get();
  }

  BasicBlock *entry() { return F->getEntryBlock(); }

  Instruction *get(const std::string &Name) {
    for (const auto &BB : *F)
      for (const auto &I : *BB)
        if (I->getName() == Name)
          return I.get();
    return nullptr;
  }

  std::vector<Instruction *> stores() {
    std::vector<Instruction *> Result;
    for (const auto &I : *F->getEntryBlock())
      if (isa<StoreInst>(I.get()))
        Result.push_back(I.get());
    return Result;
  }
};

/// Counts nodes of each kind in a graph.
struct GraphShape {
  unsigned Vectorize = 0, Gather = 0, Multi = 0;
  explicit GraphShape(const SLPGraph &G) {
    for (const auto &N : G.nodes()) {
      switch (N->getKind()) {
      case SLPNode::NodeKind::Vectorize:
        ++Vectorize;
        break;
      case SLPNode::NodeKind::Gather:
        ++Gather;
        break;
      case SLPNode::NodeKind::MultiNode:
        ++Multi;
        break;
      case SLPNode::NodeKind::Alternate:
        break;
      }
    }
  }
};

const char *SimpleTwoLane = R"(
global @A = [16 x i64]
global @E = [16 x i64]
define void @f(i64 %i) {
entry:
  %i1 = add i64 %i, 1
  %pa0 = gep i64, ptr @A, i64 %i
  %pa1 = gep i64, ptr @A, i64 %i1
  %l0 = load i64, ptr %pa0
  %l1 = load i64, ptr %pa1
  %x0 = add i64 %l0, 1
  %x1 = add i64 %l1, 2
  %pe0 = gep i64, ptr @E, i64 %i
  %pe1 = gep i64, ptr @E, i64 %i1
  store i64 %x0, ptr %pe0
  store i64 %x1, ptr %pe1
  ret void
}
)";

TEST(GraphBuilder, SimpleChainFullyVectorizes) {
  ParsedFn P(SimpleTwoLane);
  VectorizerConfig C = VectorizerConfig::slp();
  SLPGraphBuilder B(C, *P.entry());
  auto G = B.build(P.stores());
  ASSERT_TRUE(G.has_value());
  GraphShape S(*G);
  // store group, add group, load group, and a constant gather {1,2}.
  EXPECT_EQ(S.Vectorize, 3u);
  EXPECT_EQ(S.Multi, 0u);
  ASSERT_NE(G->getRoot(), nullptr);
  EXPECT_EQ(G->getRoot()->getOpcode(), ValueID::Store);
  EXPECT_EQ(G->getRoot()->getNumLanes(), 2u);
}

TEST(GraphBuilder, NonConsecutiveLoadsGather) {
  ParsedFn P(R"(
global @A = [16 x i64]
global @E = [16 x i64]
define void @f(i64 %i) {
entry:
  %i2 = add i64 %i, 2
  %i1 = add i64 %i, 1
  %pa0 = gep i64, ptr @A, i64 %i
  %pa2 = gep i64, ptr @A, i64 %i2
  %l0 = load i64, ptr %pa0
  %l2 = load i64, ptr %pa2
  %x0 = add i64 %l0, 1
  %x1 = add i64 %l2, 2
  %pe0 = gep i64, ptr @E, i64 %i
  %pe1 = gep i64, ptr @E, i64 %i1
  store i64 %x0, ptr %pe0
  store i64 %x1, ptr %pe1
  ret void
}
)");
  VectorizerConfig C = VectorizerConfig::slp();
  SLPGraphBuilder B(C, *P.entry());
  auto G = B.build(P.stores());
  ASSERT_TRUE(G.has_value());
  // Loads A[i], A[i+2] are not adjacent: they must end up in a gather.
  bool FoundLoadGather = false;
  for (const auto &N : G->nodes())
    if (N->getKind() == SLPNode::NodeKind::Gather &&
        isa<LoadInst>(N->getScalar(0)))
      FoundLoadGather = true;
  EXPECT_TRUE(FoundLoadGather);
}

TEST(GraphBuilder, OpcodeMismatchGathers) {
  ParsedFn P(R"(
global @E = [16 x i64]
define void @f(i64 %i, i64 %a) {
entry:
  %i1 = add i64 %i, 1
  %x0 = add i64 %a, 1
  %x1 = mul i64 %a, 2
  %pe0 = gep i64, ptr @E, i64 %i
  %pe1 = gep i64, ptr @E, i64 %i1
  store i64 %x0, ptr %pe0
  store i64 %x1, ptr %pe1
  ret void
}
)");
  VectorizerConfig C = VectorizerConfig::slp();
  SLPGraphBuilder B(C, *P.entry());
  auto G = B.build(P.stores());
  ASSERT_TRUE(G.has_value());
  GraphShape S(*G);
  EXPECT_EQ(S.Vectorize, 1u); // Only the stores group.
  EXPECT_EQ(S.Gather, 1u);    // add/mul mismatch.
}

TEST(GraphBuilder, DuplicateLanesGather) {
  ParsedFn P(R"(
global @E = [16 x i64]
define void @f(i64 %i, i64 %a) {
entry:
  %i1 = add i64 %i, 1
  %x = add i64 %a, 1
  %pe0 = gep i64, ptr @E, i64 %i
  %pe1 = gep i64, ptr @E, i64 %i1
  store i64 %x, ptr %pe0
  store i64 %x, ptr %pe1
  ret void
}
)");
  VectorizerConfig C = VectorizerConfig::slp();
  SLPGraphBuilder B(C, *P.entry());
  auto G = B.build(P.stores());
  ASSERT_TRUE(G.has_value());
  // The same instruction in both lanes is a splat gather, not a group.
  GraphShape S(*G);
  EXPECT_EQ(S.Vectorize, 1u);
  EXPECT_EQ(S.Gather, 1u);
}

TEST(GraphBuilder, DiamondReusesNode) {
  // x*x: both operand slots of the mul group are the same load bundle; the
  // second slot must reuse the first slot's node rather than gather.
  ParsedFn P(R"(
global @A = [16 x i64]
global @E = [16 x i64]
define void @f(i64 %i) {
entry:
  %i1 = add i64 %i, 1
  %pa0 = gep i64, ptr @A, i64 %i
  %pa1 = gep i64, ptr @A, i64 %i1
  %l0 = load i64, ptr %pa0
  %l1 = load i64, ptr %pa1
  %x0 = mul i64 %l0, %l0
  %x1 = mul i64 %l1, %l1
  %pe0 = gep i64, ptr @E, i64 %i
  %pe1 = gep i64, ptr @E, i64 %i1
  store i64 %x0, ptr %pe0
  store i64 %x1, ptr %pe1
  ret void
}
)");
  VectorizerConfig C = VectorizerConfig::slp();
  SLPGraphBuilder B(C, *P.entry());
  auto G = B.build(P.stores());
  ASSERT_TRUE(G.has_value());
  GraphShape S(*G);
  EXPECT_EQ(S.Gather, 0u);
  EXPECT_EQ(S.Vectorize, 3u); // stores, muls, loads (shared).
  // The mul node's two operands are the same node.
  const SLPNode *Mul = G->getRoot()->getOperand(0);
  ASSERT_EQ(Mul->getOperands().size(), 2u);
  EXPECT_EQ(Mul->getOperand(0), Mul->getOperand(1));
}

TEST(GraphBuilder, MultiNodeFormation) {
  // Figure 4 pattern: chains of '&' with different associativity.
  ParsedFn P(R"(
global @A = [16 x i64]
global @B = [16 x i64]
global @C = [16 x i64]
global @D = [16 x i64]
global @E = [16 x i64]
define void @f(i64 %i) {
entry:
  %i1 = add i64 %i, 1
  %pa0 = gep i64, ptr @A, i64 %i
  %pa1 = gep i64, ptr @A, i64 %i1
  %pb0 = gep i64, ptr @B, i64 %i
  %pb1 = gep i64, ptr @B, i64 %i1
  %pc0 = gep i64, ptr @C, i64 %i
  %pc1 = gep i64, ptr @C, i64 %i1
  %pd0 = gep i64, ptr @D, i64 %i
  %pd1 = gep i64, ptr @D, i64 %i1
  %pe0 = gep i64, ptr @E, i64 %i
  %pe1 = gep i64, ptr @E, i64 %i1
  %a0 = load i64, ptr %pa0
  %b0 = load i64, ptr %pb0
  %c0 = load i64, ptr %pc0
  %d0 = load i64, ptr %pd0
  %bc0 = add i64 %b0, %c0
  %de0 = add i64 %d0, %a0
  %and0a = and i64 %a0, %bc0
  %and0 = and i64 %and0a, %de0
  store i64 %and0, ptr %pe0
  %a1 = load i64, ptr %pa1
  %b1 = load i64, ptr %pb1
  %c1 = load i64, ptr %pc1
  %d1 = load i64, ptr %pd1
  %de1 = add i64 %d1, %a1
  %bc1 = add i64 %b1, %c1
  %and1a = and i64 %de1, %bc1
  %and1 = and i64 %and1a, %a1
  store i64 %and1, ptr %pe1
  ret void
}
)");
  VectorizerConfig C = VectorizerConfig::lslp();
  SLPGraphBuilder B(C, *P.entry());
  auto G = B.build(P.stores());
  ASSERT_TRUE(G.has_value());
  const SLPNode *Multi = nullptr;
  for (const auto &N : G->nodes())
    if (N->getKind() == SLPNode::NodeKind::MultiNode)
      Multi = N.get();
  ASSERT_NE(Multi, nullptr);
  EXPECT_EQ(Multi->getOpcode(), ValueID::And);
  EXPECT_EQ(Multi->getChainLength(), 2u); // Two '&' per lane.
  EXPECT_EQ(Multi->getOperands().size(), 3u);
  EXPECT_EQ(Multi->getLaneChains()[0].size(), 2u);
  EXPECT_EQ(Multi->getLaneChains()[1].size(), 2u);
}

TEST(GraphBuilder, MultiNodeSizeLimitDisablesCoarsening) {
  ParsedFn P(R"(
global @E = [16 x i64]
define void @f(i64 %i, i64 %a, i64 %b, i64 %c) {
entry:
  %i1 = add i64 %i, 1
  %t0 = and i64 %a, %b
  %x0 = and i64 %t0, %c
  %t1 = and i64 %b, %c
  %x1 = and i64 %t1, %a
  %pe0 = gep i64, ptr @E, i64 %i
  %pe1 = gep i64, ptr @E, i64 %i1
  store i64 %x0, ptr %pe0
  store i64 %x1, ptr %pe1
  ret void
}
)");
  VectorizerConfig C = VectorizerConfig::lslp();
  C.MaxMultiNodeSize = 1;
  SLPGraphBuilder B(C, *P.entry());
  auto G = B.build(P.stores());
  ASSERT_TRUE(G.has_value());
  GraphShape S(*G);
  EXPECT_EQ(S.Multi, 0u);
}

TEST(GraphBuilder, MultiNodeRespectsEscapingValues) {
  // The inner '&' has a second user outside the chain, so it must not be
  // folded into the multi-node.
  ParsedFn P(R"(
global @E = [16 x i64]
global @T = [16 x i64]
define void @f(i64 %i, i64 %a, i64 %b, i64 %c) {
entry:
  %i1 = add i64 %i, 1
  %t0 = and i64 %a, %b
  %x0 = and i64 %t0, %c
  %t1 = and i64 %b, %c
  %x1 = and i64 %t1, %a
  %pt = gep i64, ptr @T, i64 %i
  store i64 %t0, ptr %pt
  %pe0 = gep i64, ptr @E, i64 %i
  %pe1 = gep i64, ptr @E, i64 %i1
  store i64 %x0, ptr %pe0
  store i64 %x1, ptr %pe1
  ret void
}
)");
  VectorizerConfig C = VectorizerConfig::lslp();
  SLPGraphBuilder B(C, *P.entry());
  std::vector<Instruction *> Seeds;
  for (Instruction *St : P.stores())
    if (cast<StoreInst>(St)->getPointerOperand()->getName() != "pt")
      Seeds.push_back(St);
  ASSERT_EQ(Seeds.size(), 2u);
  auto G = B.build(Seeds);
  ASSERT_TRUE(G.has_value());
  // %t0 escapes (stored to @T): lane 0 cannot chain, so the frontiers have
  // unequal widths and no multi-node forms.
  GraphShape S(*G);
  EXPECT_EQ(S.Multi, 0u);
}

TEST(GraphBuilder, SeedCollectorFindsAndChunksRuns) {
  ParsedFn P(R"(
global @E = [64 x i64]
define void @f(i64 %i, i64 %a) {
entry:
  %i1 = add i64 %i, 1
  %i2 = add i64 %i, 2
  %i3 = add i64 %i, 3
  %i4 = add i64 %i, 4
  %i5 = add i64 %i, 5
  %p0 = gep i64, ptr @E, i64 %i
  %p1 = gep i64, ptr @E, i64 %i1
  %p2 = gep i64, ptr @E, i64 %i2
  %p3 = gep i64, ptr @E, i64 %i3
  %p4 = gep i64, ptr @E, i64 %i4
  %p5 = gep i64, ptr @E, i64 %i5
  store i64 %a, ptr %p0
  store i64 %a, ptr %p1
  store i64 %a, ptr %p2
  store i64 %a, ptr %p3
  store i64 %a, ptr %p4
  store i64 %a, ptr %p5
  ret void
}
)");
  SkylakeTTI TTI;
  auto Seeds = collectStoreSeeds(*P.entry(), TTI);
  // Six consecutive i64 stores with a 256-bit target: one VL=4 bundle and
  // one VL=2 bundle.
  ASSERT_EQ(Seeds.size(), 2u);
  EXPECT_EQ(Seeds[0].size(), 4u);
  EXPECT_EQ(Seeds[1].size(), 2u);
}

TEST(GraphBuilder, SeedCollectorSplitsAtGapsAndBases) {
  ParsedFn P(R"(
global @E = [64 x i64]
global @F = [64 x i64]
define void @f(i64 %i, i64 %a) {
entry:
  %i1 = add i64 %i, 1
  %i3 = add i64 %i, 3
  %i4 = add i64 %i, 4
  %p0 = gep i64, ptr @E, i64 %i
  %p1 = gep i64, ptr @E, i64 %i1
  %p3 = gep i64, ptr @E, i64 %i3
  %p4 = gep i64, ptr @E, i64 %i4
  %q0 = gep i64, ptr @F, i64 %i
  %q1 = gep i64, ptr @F, i64 %i1
  store i64 %a, ptr %p0
  store i64 %a, ptr %p1
  store i64 %a, ptr %p3
  store i64 %a, ptr %p4
  store i64 %a, ptr %q0
  store i64 %a, ptr %q1
  ret void
}
)");
  SkylakeTTI TTI;
  auto Seeds = collectStoreSeeds(*P.entry(), TTI);
  // Three runs of two: E[i..i+1], E[i+3..i+4], F[i..i+1].
  ASSERT_EQ(Seeds.size(), 3u);
  for (const auto &S : Seeds)
    EXPECT_EQ(S.size(), 2u);
}

TEST(GraphBuilder, StoresAcrossBlocksNotSeeded) {
  ParsedFn P(R"(
global @E = [64 x i64]
define void @f(i64 %i, i64 %a) {
entry:
  %i1 = add i64 %i, 1
  %p0 = gep i64, ptr @E, i64 %i
  store i64 %a, ptr %p0
  br label %next
next:
  %p1 = gep i64, ptr @E, i64 %i1
  store i64 %a, ptr %p1
  ret void
}
)");
  SkylakeTTI TTI;
  EXPECT_TRUE(collectStoreSeeds(*P.entry(), TTI).empty());
  EXPECT_TRUE(collectStoreSeeds(*P.F->getBlockByName("next"), TTI).empty());
}

} // namespace
