//===- tests/vectorizer/LookAheadTest.cpp - Look-ahead scoring tests -----------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "vectorizer/LookAhead.h"

#include "ir/BasicBlock.h"
#include "ir/Constants.h"
#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/Module.h"
#include "parser/Parser.h"

#include <gtest/gtest.h>

using namespace lslp;

namespace {

struct ParsedFn {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = nullptr;

  explicit ParsedFn(const char *Src) {
    M = parseModuleOrDie(Src, Ctx);
    F = M->functions().front().get();
  }

  Value *get(const std::string &Name) {
    for (const auto &BB : *F)
      for (const auto &I : *BB)
        if (I->getName() == Name)
          return I.get();
    return nullptr;
  }
};

TEST(AreConsecutiveOrMatch, Constants) {
  Context Ctx;
  // Any two constants match (constant vectors are free).
  EXPECT_TRUE(areConsecutiveOrMatch(Ctx.getInt64(1), Ctx.getInt64(99)));
  EXPECT_TRUE(areConsecutiveOrMatch(
      Ctx.getInt64(1), Ctx.getConstantFP(Ctx.getDoubleTy(), 2.0)));
}

TEST(AreConsecutiveOrMatch, LoadsRequireConsecutiveAddresses) {
  ParsedFn P(R"(
global @A = [16 x i64]
global @B = [16 x i64]
define void @f(i64 %i) {
entry:
  %i1 = add i64 %i, 1
  %pa0 = gep i64, ptr @A, i64 %i
  %pa1 = gep i64, ptr @A, i64 %i1
  %pb1 = gep i64, ptr @B, i64 %i1
  %a0 = load i64, ptr %pa0
  %a1 = load i64, ptr %pa1
  %b1 = load i64, ptr %pb1
  ret void
}
)");
  EXPECT_TRUE(areConsecutiveOrMatch(P.get("a0"), P.get("a1")));
  EXPECT_FALSE(areConsecutiveOrMatch(P.get("a1"), P.get("a0"))); // Reversed.
  EXPECT_FALSE(areConsecutiveOrMatch(P.get("a0"), P.get("b1")));
}

TEST(AreConsecutiveOrMatch, SameOpcodeInstructions) {
  ParsedFn P(R"(
define void @f(i64 %a, i64 %b) {
entry:
  %x = add i64 %a, 1
  %y = add i64 %b, 2
  %z = mul i64 %a, 3
  ret void
}
)");
  EXPECT_TRUE(areConsecutiveOrMatch(P.get("x"), P.get("y")));
  EXPECT_FALSE(areConsecutiveOrMatch(P.get("x"), P.get("z")));
}

TEST(AreConsecutiveOrMatch, MixedKinds) {
  ParsedFn P(R"(
define void @f(i64 %a, i64 %b) {
entry:
  %x = add i64 %a, 1
  ret void
}
)");
  Context &Ctx = P.Ctx;
  // Instruction vs constant: no match.
  EXPECT_FALSE(areConsecutiveOrMatch(P.get("x"), Ctx.getInt64(1)));
  // Arguments match only themselves (splat).
  EXPECT_TRUE(areConsecutiveOrMatch(P.F->getArg(0), P.F->getArg(0)));
  EXPECT_FALSE(areConsecutiveOrMatch(P.F->getArg(0), P.F->getArg(1)));
}

/// The exact scenario of paper Figure 7: last = B[i+0] << 1; candidates
/// are (B[i+1] << 2) scoring 2 and (C[i+1] << 3) scoring 1.
TEST(LookAheadScore, Figure7Example) {
  ParsedFn P(R"(
global @B = [16 x i64]
global @C = [16 x i64]
define void @f(i64 %i) {
entry:
  %i1 = add i64 %i, 1
  %pb0 = gep i64, ptr @B, i64 %i
  %pb1 = gep i64, ptr @B, i64 %i1
  %pc1 = gep i64, ptr @C, i64 %i1
  %lb0 = load i64, ptr %pb0
  %lb1 = load i64, ptr %pb1
  %lc1 = load i64, ptr %pc1
  %last = shl i64 %lb0, 1
  %candB = shl i64 %lb1, 2
  %candC = shl i64 %lc1, 3
  ret void
}
)");
  // Level 1: descend once into the shifts' operands.
  // candB: (B[i+0],B[i+1]) consecutive -> 1; (1,2) both constants -> 1;
  //        cross pairs contribute 0. Total 2.
  EXPECT_EQ(getLookAheadScore(P.get("last"), P.get("candB"), 1), 2);
  // candC: loads differ -> 0; constants -> 1. Total 1.
  EXPECT_EQ(getLookAheadScore(P.get("last"), P.get("candC"), 1), 1);
}

TEST(LookAheadScore, LevelZeroIsTrivialMatch) {
  ParsedFn P(R"(
define void @f(i64 %a, i64 %b) {
entry:
  %x = add i64 %a, 1
  %y = add i64 %b, 2
  %z = mul i64 %a, 3
  ret void
}
)");
  EXPECT_EQ(getLookAheadScore(P.get("x"), P.get("y"), 0), 1);
  EXPECT_EQ(getLookAheadScore(P.get("x"), P.get("z"), 0), 0);
}

TEST(LookAheadScore, DeepRecursion) {
  ParsedFn P(R"(
global @A = [16 x i64]
define void @f(i64 %i) {
entry:
  %i1 = add i64 %i, 1
  %p0 = gep i64, ptr @A, i64 %i
  %p1 = gep i64, ptr @A, i64 %i1
  %l0 = load i64, ptr %p0
  %l1 = load i64, ptr %p1
  %s0 = shl i64 %l0, 1
  %s1 = shl i64 %l1, 1
  %m0 = mul i64 %s0, 3
  %m1 = mul i64 %s1, 3
  ret void
}
)");
  // At level 1 the shifts match by opcode only (score from the const pair
  // and the opcode base case).
  int L1 = getLookAheadScore(P.get("m0"), P.get("m1"), 1);
  // At level 2 the consecutive loads become visible and raise the score.
  int L2 = getLookAheadScore(P.get("m0"), P.get("m1"), 2);
  EXPECT_GT(L2, L1);
}

TEST(LookAheadScore, SumVersusMaxAggregation) {
  ParsedFn P(R"(
define void @f(i64 %a, i64 %b) {
entry:
  %x = add i64 %a, %a
  %y = add i64 %b, %b
  ret void
}
)");
  // Four operand combinations, none matching (different arguments):
  // both aggregations give 0; with identical arguments they differ.
  int Sum = getLookAheadScore(P.get("x"), P.get("y"), 1,
                              VectorizerConfig::ScoreAggregationKind::Sum);
  int Max = getLookAheadScore(P.get("x"), P.get("y"), 1,
                              VectorizerConfig::ScoreAggregationKind::Max);
  EXPECT_EQ(Sum, 0);
  EXPECT_EQ(Max, 0);

  int SumSame =
      getLookAheadScore(P.get("x"), P.get("x"), 1,
                        VectorizerConfig::ScoreAggregationKind::Sum);
  int MaxSame =
      getLookAheadScore(P.get("x"), P.get("x"), 1,
                        VectorizerConfig::ScoreAggregationKind::Max);
  // Sum counts all four splat pairs; max caps at one.
  EXPECT_EQ(SumSame, 4);
  EXPECT_EQ(MaxSame, 1);
}

TEST(LookAheadScore, LoadsAreBaseCaseEvenWithLevels) {
  ParsedFn P(R"(
global @A = [16 x i64]
define void @f(i64 %i) {
entry:
  %i1 = add i64 %i, 1
  %p0 = gep i64, ptr @A, i64 %i
  %p1 = gep i64, ptr @A, i64 %i1
  %l0 = load i64, ptr %p0
  %l1 = load i64, ptr %p1
  ret void
}
)");
  // Loads never recurse into their pointer operands: level is irrelevant.
  EXPECT_EQ(getLookAheadScore(P.get("l0"), P.get("l1"), 0), 1);
  EXPECT_EQ(getLookAheadScore(P.get("l0"), P.get("l1"), 5), 1);
  EXPECT_EQ(getLookAheadScore(P.get("l1"), P.get("l0"), 5), 0);
}

} // namespace
