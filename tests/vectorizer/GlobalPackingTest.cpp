//===- tests/vectorizer/GlobalPackingTest.cpp - Global packing strategy -------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The global statement-packing strategy (--slp-strategy=global): the
// PackSetSolver's search behavior, the tie-break contract (ties commit
// the greedy pack set, byte-identically), budget exhaustion through the
// solver's charge sites (scalar fallback, byte-identical input), and
// --jobs determinism of the strategy.
//
//===----------------------------------------------------------------------===//

#include "costmodel/TargetTransformInfo.h"
#include "diag/RemarkEngine.h"
#include "ir/BasicBlock.h"
#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/Instruction.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "parser/Parser.h"
#include "support/Casting.h"
#include "vectorizer/GlobalPacking.h"
#include "vectorizer/PackSetSolver.h"
#include "vectorizer/SLPVectorizerPass.h"

#include <gtest/gtest.h>

using namespace lslp;

namespace {

/// Crossed commutative operands hidden under same-opcode shifts (the
/// paper's Figure 2 shape): greedy SLP's depth-0 opcode scoring ties on
/// every alternative and keeps the B/C loads crossed, so the gathers push
/// the cost to >= 0; the solver's lane-1 swap lines both operand slots up
/// as consecutive loads.
const char *CrossedSrc = R"(global @A = [8 x i64]
global @B = [8 x i64]
global @C = [8 x i64]
define void @crossed(i64 %i) {
entry:
  %i1 = add i64 %i, 1
  %pb0 = gep i64, ptr @B, i64 %i
  %pc0 = gep i64, ptr @C, i64 %i
  %pb1 = gep i64, ptr @B, i64 %i1
  %pc1 = gep i64, ptr @C, i64 %i1
  %b0 = load i64, ptr %pb0
  %c0 = load i64, ptr %pc0
  %c1 = load i64, ptr %pc1
  %b1 = load i64, ptr %pb1
  %sh0l = shl i64 %b0, 1
  %sh0r = shl i64 %c0, 2
  %sh1l = shl i64 %c1, 3
  %sh1r = shl i64 %b1, 4
  %and0 = and i64 %sh0l, %sh0r
  %and1 = and i64 %sh1l, %sh1r
  %pa0 = gep i64, ptr @A, i64 %i
  %pa1 = gep i64, ptr @A, i64 %i1
  store i64 %and0, ptr %pa0
  store i64 %and1, ptr %pa1
  ret void
}
)";

/// Already-aligned operands: greedy is optimal, so every solver
/// alternative ties or loses and the strategies must agree byte-for-byte.
/// Distinct globals/function name so JobsParity can concatenate it with
/// CrossedSrc into one two-function module.
const char *AlignedSrc = R"(global @D = [8 x i64]
global @E = [8 x i64]
global @F = [8 x i64]
define void @aligned(i64 %i) {
entry:
  %i1 = add i64 %i, 1
  %pb0 = gep i64, ptr @E, i64 %i
  %pb1 = gep i64, ptr @E, i64 %i1
  %pc0 = gep i64, ptr @F, i64 %i
  %pc1 = gep i64, ptr @F, i64 %i1
  %b0 = load i64, ptr %pb0
  %b1 = load i64, ptr %pb1
  %c0 = load i64, ptr %pc0
  %c1 = load i64, ptr %pc1
  %s0 = xor i64 %b0, %c0
  %s1 = xor i64 %b1, %c1
  %pa0 = gep i64, ptr @D, i64 %i
  %pa1 = gep i64, ptr @D, i64 %i1
  store i64 %s0, ptr %pa0
  store i64 %s1, ptr %pa1
  ret void
}
)";

/// A lone store seeds no bundle: the strategy must run the (empty) seed
/// sweep without forming packs and leave the function untouched.
const char *SingleStoreSrc = R"(global @A = [8 x i64]
define void @single(i64 %v) {
entry:
  %p = gep i64, ptr @A, i64 0
  store i64 %v, ptr %p
  ret void
}
)";

struct RunResult {
  std::string ScalarIR;
  std::string IR;
  ModuleReport Report;
  std::vector<Remark> Remarks;
};

RunResult runPass(const char *Src, VectorizerConfig Config,
                  unsigned Jobs = 1) {
  Context Ctx;
  auto M = parseModuleOrDie(Src, Ctx);
  RunResult Out;
  Out.ScalarIR = moduleToString(*M);
  SkylakeTTI TTI;
  RemarkEngine Engine;
  Engine.setKeepRemarks(true);
  Config.Remarks = &Engine;
  SLPVectorizerPass Pass(Config, TTI);
  Out.Report = Pass.runOnModule(*M, Jobs);
  EXPECT_TRUE(verifyModule(*M));
  Out.IR = moduleToString(*M);
  Out.Remarks = Engine.remarks();
  return Out;
}

VectorizerConfig globalSLP() {
  VectorizerConfig C = VectorizerConfig::slp();
  C.Strategy = VectorizerConfig::PackingStrategyKind::Global;
  return C;
}

unsigned countKind(const std::vector<Remark> &Remarks, RemarkKind Kind) {
  unsigned N = 0;
  for (const Remark &R : Remarks)
    N += R.Kind == Kind;
  return N;
}

/// Collects the function's scalar stores in block order — the same lane
/// order the seed collector hands the pass.
std::vector<Instruction *> storeSeeds(Module &M, const std::string &Fn) {
  std::vector<Instruction *> Seeds;
  Function *F = M.getFunction(Fn);
  for (const auto &I : **F->begin())
    if (isa<StoreInst>(I.get()))
      Seeds.push_back(I.get());
  return Seeds;
}

//===----------------------------------------------------------------------===//
// PackSetSolver unit behavior
//===----------------------------------------------------------------------===//

TEST(PackSetSolver, FindsTheCheaperPlanOnCrossedOperands) {
  Context Ctx;
  auto M = parseModuleOrDie(CrossedSrc, Ctx);
  SkylakeTTI TTI;
  VectorizerConfig Config = VectorizerConfig::slp();
  BasicBlock &BB = **M->getFunction("crossed")->begin();
  PackSetSolver Solver(Config, TTI, BB, nullptr);
  PackSetSolver::Result R = Solver.solve(storeSeeds(*M, "crossed"));
  EXPECT_TRUE(R.Solved);
  EXPECT_FALSE(R.Capped);
  EXPECT_GE(R.Sites, 1u);
  EXPECT_GT(R.Candidates, 1u);
  EXPECT_GE(R.GreedyCost, 0); // greedy's crossed pack set is unprofitable
  EXPECT_LT(R.BestCost, R.GreedyCost);
  EXPECT_FALSE(R.BestChoices.empty());
}

TEST(PackSetSolver, TiesKeepTheGreedyPlan) {
  Context Ctx;
  auto M = parseModuleOrDie(AlignedSrc, Ctx);
  SkylakeTTI TTI;
  VectorizerConfig Config = VectorizerConfig::slp();
  BasicBlock &BB = **M->getFunction("aligned")->begin();
  PackSetSolver Solver(Config, TTI, BB, nullptr);
  PackSetSolver::Result R = Solver.solve(storeSeeds(*M, "aligned"));
  EXPECT_TRUE(R.Solved);
  EXPECT_EQ(R.BestCost, R.GreedyCost);
  EXPECT_TRUE(R.BestChoices.empty()); // strict-less replacement only
}

TEST(PackSetSolver, CandidateCapDegeneratesToGreedy) {
  Context Ctx;
  auto M = parseModuleOrDie(CrossedSrc, Ctx);
  SkylakeTTI TTI;
  VectorizerConfig Config = VectorizerConfig::slp();
  Config.MaxSolverCandidates = 1;
  BasicBlock &BB = **M->getFunction("crossed")->begin();
  PackSetSolver Solver(Config, TTI, BB, nullptr);
  PackSetSolver::Result R = Solver.solve(storeSeeds(*M, "crossed"));
  EXPECT_TRUE(R.Solved);
  EXPECT_TRUE(R.Capped);
  EXPECT_EQ(R.Candidates, 1u);
  EXPECT_EQ(R.BestCost, R.GreedyCost);
  EXPECT_TRUE(R.BestChoices.empty());
}

//===----------------------------------------------------------------------===//
// Strategy end-to-end through the pass
//===----------------------------------------------------------------------===//

TEST(GlobalPacking, SingleStoreFormsNoPacksAndLeavesIRUntouched) {
  RunResult Greedy = runPass(SingleStoreSrc, VectorizerConfig::slp());
  RunResult Global = runPass(SingleStoreSrc, globalSLP());
  EXPECT_EQ(Global.IR, Global.ScalarIR);
  EXPECT_EQ(Global.IR, Greedy.IR);
  EXPECT_EQ(Global.Report.numAccepted(), 0u);
  EXPECT_EQ(countKind(Global.Remarks, RemarkKind::GlobalPackingSolved), 0u);
}

TEST(GlobalPacking, CommitsTheCheaperPackSetWithASolveRemark) {
  RunResult Greedy = runPass(CrossedSrc, VectorizerConfig::slp());
  RunResult Global = runPass(CrossedSrc, globalSLP());
  EXPECT_EQ(Greedy.Report.numAccepted(), 0u);
  EXPECT_EQ(Global.Report.numAccepted(), 1u);
  EXPECT_LT(Global.Report.acceptedCost(), Greedy.Report.acceptedCost());
  EXPECT_NE(Global.IR, Greedy.IR);
  EXPECT_EQ(countKind(Global.Remarks, RemarkKind::GlobalPackingSolved), 1u);
}

TEST(GlobalPacking, TieBreakIsDeterministicAndByteIdenticalToGreedy) {
  // On the aligned kernel every alternative ties or loses: the committed
  // IR must be byte-identical to greedy's, and two global runs must be
  // byte-identical to each other (IR and remark stream).
  RunResult Greedy = runPass(AlignedSrc, VectorizerConfig::slp());
  RunResult Global1 = runPass(AlignedSrc, globalSLP());
  RunResult Global2 = runPass(AlignedSrc, globalSLP());
  EXPECT_GT(Greedy.Report.numAccepted(), 0u);
  EXPECT_EQ(Global1.IR, Greedy.IR);
  EXPECT_EQ(Global1.IR, Global2.IR);
  ASSERT_EQ(Global1.Remarks.size(), Global2.Remarks.size());
  for (size_t I = 0; I != Global1.Remarks.size(); ++I)
    EXPECT_EQ(Global1.Remarks[I].toJSON(), Global2.Remarks[I].toJSON());
}

TEST(GlobalPacking, PermutationBudgetFallsBackToByteIdenticalScalar) {
  // The solver charges the shared permutation budget per candidate; a
  // budget of 1 dies during the search and the transform-then-commit
  // machinery must restore the scalar body byte-identically with exactly
  // one budget-exhausted remark.
  VectorizerConfig C = globalSLP();
  C.MaxPermutationsPerMultiNode = 1;
  RunResult R = runPass(CrossedSrc, C);
  EXPECT_EQ(R.IR, R.ScalarIR);
  EXPECT_EQ(R.Report.numAccepted(), 0u);
  ASSERT_EQ(R.Report.Functions.size(), 1u);
  EXPECT_TRUE(R.Report.Functions[0].BudgetExhausted);
  EXPECT_EQ(countKind(R.Remarks, RemarkKind::BudgetExhausted), 1u);
  EXPECT_EQ(countKind(R.Remarks, RemarkKind::GlobalPackingSolved), 0u);
}

TEST(GlobalPacking, JobsParity) {
  // Two independent functions vectorized concurrently: jobs=4 must be
  // byte-identical to jobs=1 in IR, remark stream, and report, exactly
  // like the greedy strategy's contract.
  std::string TwoFns = std::string(CrossedSrc) + AlignedSrc;
  RunResult Serial = runPass(TwoFns.c_str(), globalSLP(), 1);
  RunResult Parallel = runPass(TwoFns.c_str(), globalSLP(), 4);
  EXPECT_EQ(Serial.IR, Parallel.IR);
  EXPECT_EQ(Serial.Report.numAccepted(), Parallel.Report.numAccepted());
  EXPECT_EQ(Serial.Report.acceptedCost(), Parallel.Report.acceptedCost());
  ASSERT_EQ(Serial.Remarks.size(), Parallel.Remarks.size());
  for (size_t I = 0; I != Serial.Remarks.size(); ++I)
    EXPECT_EQ(Serial.Remarks[I].toJSON(), Parallel.Remarks[I].toJSON());
}

} // namespace
