//===- tests/parser/ParseDiagnosticsTest.cpp - Structured parse errors ---------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// parseModuleOrError returns an Error of category Parse plus a structured
// ParseDiagnostic with 1-based line/column, rendered by lslpc in the
// clang-style "file:line:col: error: message" form.
//
//===----------------------------------------------------------------------===//

#include "ir/Context.h"
#include "ir/Module.h"
#include "parser/Parser.h"
#include "support/Error.h"

#include <gtest/gtest.h>

using namespace lslp;

namespace {

ParseDiagnostic diagnose(const char *Src) {
  Context Ctx;
  ParseDiagnostic Diag;
  Expected<std::unique_ptr<Module>> M = parseModuleOrError(Src, Ctx, &Diag);
  EXPECT_FALSE(M.hasValue());
  EXPECT_EQ(M.getError().category(), ErrorCategory::Parse);
  return Diag;
}

TEST(ParseDiagnostics, SuccessReturnsModule) {
  Context Ctx;
  ParseDiagnostic Diag;
  Expected<std::unique_ptr<Module>> M = parseModuleOrError(
      "define void @f() {\nentry:\n  ret void\n}\n", Ctx, &Diag);
  ASSERT_TRUE(M.hasValue());
  EXPECT_NE((*M)->getFunction("f"), nullptr);
}

TEST(ParseDiagnostics, DiagOutIsOptional) {
  Context Ctx;
  Expected<std::unique_ptr<Module>> M =
      parseModuleOrError("define junk", Ctx);
  ASSERT_FALSE(M.hasValue());
  EXPECT_EQ(M.getError().category(), ErrorCategory::Parse);
  EXPECT_FALSE(M.getError().message().empty());
}

TEST(ParseDiagnostics, PositionPointsAtOffendingToken) {
  // Line 3, and the column of the undefined '%x' use (col 11, at the
  // sigil).
  ParseDiagnostic D = diagnose("define i64 @f() {\n"
                               "entry:\n"
                               "  ret i64 %x\n"
                               "}\n");
  EXPECT_EQ(D.Line, 3u);
  EXPECT_EQ(D.Col, 11u);
  EXPECT_EQ(D.Message, "use of undefined value '%x'");
}

TEST(ParseDiagnostics, FirstLineFirstColumn) {
  ParseDiagnostic D = diagnose("junk\n");
  EXPECT_EQ(D.Line, 1u);
  EXPECT_EQ(D.Col, 1u);
  EXPECT_FALSE(D.Message.empty());
}

TEST(ParseDiagnostics, RenderIsClangStyle) {
  ParseDiagnostic D;
  D.Line = 12;
  D.Col = 7;
  D.Message = "expected an opcode";
  EXPECT_EQ(D.render("foo.ll"), "foo.ll:12:7: error: expected an opcode");
  EXPECT_EQ(D.render("<stdin>"),
            "<stdin>:12:7: error: expected an opcode");
}

TEST(ParseDiagnostics, LegacyErrorKeepsLinePrefix) {
  // The Error message (and the legacy parseModule interface) renders as
  // "line N: msg" for existing callers and tests.
  Context Ctx;
  Expected<std::unique_ptr<Module>> M = parseModuleOrError(
      "define i64 @f() {\nentry:\n  ret i64 %x\n}\n", Ctx);
  ASSERT_FALSE(M.hasValue());
  EXPECT_EQ(M.getError().message(), "line 3: use of undefined value '%x'");

  std::string Err;
  Context Ctx2;
  EXPECT_EQ(parseModule("define i64 @f() {\nentry:\n  ret i64 %x\n}\n",
                        Ctx2, Err),
            nullptr);
  EXPECT_EQ(Err, "line 3: use of undefined value '%x'");
}

TEST(ParseDiagnostics, LexicalErrorsCarryTheLine) {
  // '$' is not a valid token; the lexer reports it with its line.
  ParseDiagnostic D = diagnose("define void @f() {\n"
                               "entry:\n"
                               "  $\n"
                               "}\n");
  EXPECT_EQ(D.Line, 3u);
  EXPECT_FALSE(D.Message.empty());
}

} // namespace
