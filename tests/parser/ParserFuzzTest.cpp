//===- tests/parser/ParserFuzzTest.cpp - Parser robustness fuzzing --------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Mutation fuzzing of the textual-IR parser: random byte edits of a valid
// module must either parse (and then verify-or-not) or fail with a
// diagnostic — never crash, hang or corrupt memory. Runs a few hundred
// mutants per seed corpus entry.
//
//===----------------------------------------------------------------------===//

#include "ir/Context.h"
#include "ir/Module.h"
#include "ir/Verifier.h"
#include "parser/Parser.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace lslp;

namespace {

const char *Corpus[] = {
    R"(
module "m"
global @A = [16 x i64]
define void @f(i64 %i) {
entry:
  %i1 = add i64 %i, 1
  %p0 = gep i64, ptr @A, i64 %i
  %p1 = gep i64, ptr @A, i64 %i1
  %v0 = load i64, ptr %p0
  %s = shl i64 %v0, 2
  store i64 %s, ptr %p1
  ret void
}
)",
    R"(
define i64 @g(i64 %n, <2 x i64> %v) {
entry:
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %next, %loop ]
  %next = add i64 %i, 1
  %c = icmp slt i64 %next, %n
  br i1 %c, label %loop, label %exit
exit:
  %e = extractelement <2 x i64> %v, i32 0
  %sv = shufflevector <2 x i64> %v, <2 x i64> %v, [1, 0]
  %e2 = extractelement <2 x i64> %sv, i32 1
  %r = add i64 %e, %e2
  ret i64 %r
}
)",
};

/// Applies \p Count random single-byte mutations (replace, insert or
/// delete).
std::string mutate(std::string Text, RNG &Rng, unsigned Count) {
  static const char Alphabet[] =
      "abcdefgxyz0123456789%@<>[](){}=,.:;-+ \n\"\t_";
  for (unsigned I = 0; I < Count && !Text.empty(); ++I) {
    size_t Pos = Rng.nextBelow(Text.size());
    char C = Alphabet[Rng.nextBelow(sizeof(Alphabet) - 1)];
    switch (Rng.nextBelow(3)) {
    case 0:
      Text[Pos] = C;
      break;
    case 1:
      Text.insert(Text.begin() + static_cast<ptrdiff_t>(Pos), C);
      break;
    case 2:
      Text.erase(Text.begin() + static_cast<ptrdiff_t>(Pos));
      break;
    }
  }
  return Text;
}

class ParserFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzz, MutatedInputsNeverCrash) {
  RNG Rng(GetParam() * 0x9e3779b97f4a7c15ULL + 1);
  for (const char *Entry : Corpus) {
    for (int Round = 0; Round < 60; ++Round) {
      std::string Mutant =
          mutate(Entry, Rng, 1 + static_cast<unsigned>(Rng.nextBelow(6)));
      Context Ctx;
      std::string Err;
      std::unique_ptr<Module> M = parseModule(Mutant, Ctx, Err);
      if (M) {
        // Whatever parsed must be printable and verifiable without
        // crashing (verification may legitimately fail).
        std::vector<std::string> Errors;
        (void)verifyModule(*M, &Errors);
      } else {
        EXPECT_FALSE(Err.empty()) << "failure without a diagnostic";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz,
                         ::testing::Range(uint64_t(0), uint64_t(10)));

} // namespace
