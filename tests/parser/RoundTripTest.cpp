//===- tests/parser/RoundTripTest.cpp - Printer/parser round trips -------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Property test: any module the fuzzer's generator can emit must survive
// print -> parse losslessly. "Losslessly" is checked three ways: the
// parsed-back module verifies, re-printing it reproduces the exact text
// (fixpoint), and interpreting original and round-tripped modules from
// identical initial memory yields bit-identical final state.
//
//===----------------------------------------------------------------------===//

#include "fuzz/ModuleGenerator.h"
#include "interp/Interpreter.h"
#include "ir/Context.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "parser/Parser.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace lslp;

namespace {

/// Fills every global from one deterministic stream (FP values are small
/// integers so the interpreter math is exact).
void fillMemory(Interpreter &Interp, const Module &M) {
  RNG In(0xf111);
  for (const auto &G : M.globals())
    for (uint64_t I = 0; I != G->getNumElements(); ++I) {
      if (G->getElementType()->isFloatingPointTy())
        Interp.writeGlobalFP(G->getName(), I,
                             static_cast<double>(In.nextBelow(16)));
      else
        Interp.writeGlobalInt(G->getName(), I, In.nextBelow(1u << 20));
    }
}

/// Runs every no-arg function and returns the final memory image.
std::vector<uint8_t> execute(const Module &M) {
  Interpreter Interp(M);
  Interp.setStepLimit(50u * 1000u * 1000u);
  fillMemory(Interp, M);
  for (const auto &F : M.functions())
    if (F->getNumArgs() == 0 && !F->empty())
      Interp.run(F.get());
  return Interp.getMemoryImage();
}

TEST(RoundTrip, GeneratedModules) {
  for (uint64_t Seed = 0; Seed != 50; ++Seed) {
    Context Ctx;
    ModuleGenerator Gen(Seed);
    std::unique_ptr<Module> Orig = Gen.generate(Ctx);
    std::string Text = moduleToString(*Orig);

    Context Ctx2;
    std::string Err;
    std::unique_ptr<Module> Back = parseModule(Text, Ctx2, Err);
    ASSERT_NE(Back, nullptr) << "seed " << Seed << ": " << Err << "\n"
                             << Text;

    std::vector<std::string> Errors;
    EXPECT_TRUE(verifyModule(*Back, &Errors))
        << "seed " << Seed << ": "
        << (Errors.empty() ? "<no detail>" : Errors[0]);

    // Printing is a fixpoint: parse(print(M)) prints identically.
    EXPECT_EQ(moduleToString(*Back), Text) << "seed " << Seed;

    // And the round trip preserves semantics bit-for-bit.
    EXPECT_EQ(execute(*Orig), execute(*Back)) << "seed " << Seed;
  }
}

TEST(RoundTrip, FPConstantsAreBitExact) {
  // Values with no short decimal form must still survive the trip; the
  // printer searches for the shortest precision that parses back to the
  // same bits.
  const double Awkward[] = {0.1,   1.0 / 3.0,       1e-7, 123456789.123456789,
                            1e300, 5404319552844595.0 / 2, 2.5e-12};
  Context Ctx;
  Module M(Ctx, "fp");
  GlobalArray *O = M.createGlobal("O", Ctx.getDoubleTy(), 16);
  Function *F = Function::create(&M, "f", Ctx.getVoidTy(), {}, {});
  BasicBlock *BB = BasicBlock::create(Ctx, "entry", F);
  IRBuilder IRB(BB);
  for (size_t I = 0; I != std::size(Awkward); ++I) {
    Value *Ptr = IRB.createGEP(Ctx.getDoubleTy(), O, static_cast<int64_t>(I));
    IRB.createStore(Ctx.getConstantFP(Ctx.getDoubleTy(), Awkward[I]), Ptr);
  }
  IRB.createRet();

  std::string Text = moduleToString(M);
  Context Ctx2;
  std::string Err;
  std::unique_ptr<Module> Back = parseModule(Text, Ctx2, Err);
  ASSERT_NE(Back, nullptr) << Err << "\n" << Text;
  EXPECT_EQ(moduleToString(*Back), Text);

  // Execute and read back the stored doubles: exact bit equality.
  Interpreter Interp(*Back);
  Interp.run(Back->getFunction("f"));
  for (size_t I = 0; I != std::size(Awkward); ++I)
    EXPECT_EQ(Interp.readGlobalFP("O", I), Awkward[I]) << "index " << I;
}

} // namespace
