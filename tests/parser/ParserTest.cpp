//===- tests/parser/ParserTest.cpp - Parser tests -------------------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ir/BasicBlock.h"
#include "ir/Constants.h"
#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "kernels/Kernels.h"
#include "parser/Parser.h"

#include <gtest/gtest.h>

using namespace lslp;

namespace {

std::string parseError(const char *Src) {
  Context Ctx;
  std::string Err;
  auto M = parseModule(Src, Ctx, Err);
  EXPECT_EQ(M, nullptr) << "expected a parse failure";
  return Err;
}

TEST(Parser, GlobalsAndFunctions) {
  Context Ctx;
  auto M = parseModuleOrDie(R"(
module "m"
global @A = [128 x i64]
global @B = [32 x double]
define void @f() {
entry:
  ret void
}
)",
                            Ctx);
  ASSERT_NE(M->getGlobal("A"), nullptr);
  EXPECT_EQ(M->getGlobal("A")->getNumElements(), 128u);
  EXPECT_EQ(M->getGlobal("A")->getElementType(), Ctx.getInt64Ty());
  EXPECT_EQ(M->getGlobal("B")->getElementType(), Ctx.getDoubleTy());
  ASSERT_NE(M->getFunction("f"), nullptr);
  EXPECT_TRUE(verifyModule(*M));
}

TEST(Parser, ForwardValueReferencesInLoops) {
  Context Ctx;
  auto M = parseModuleOrDie(R"(
define void @f(i64 %n) {
entry:
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %next, %loop ]
  %next = add i64 %i, 1
  %c = icmp slt i64 %next, %n
  br i1 %c, label %loop, label %exit
exit:
  ret void
}
)",
                            Ctx);
  Function *F = M->getFunction("f");
  auto *Phi = cast<PHINode>(F->getBlockByName("loop")->front());
  // The forward reference %next was patched to the real instruction.
  Value *Next = Phi->getIncomingValueForBlock(F->getBlockByName("loop"));
  ASSERT_NE(Next, nullptr);
  EXPECT_TRUE(isa<BinaryOperator>(Next));
  EXPECT_EQ(Next->getName(), "next");
  EXPECT_TRUE(verifyModule(*M));
}

TEST(Parser, ForwardBlockReferences) {
  Context Ctx;
  auto M = parseModuleOrDie(R"(
define void @f(i1 %c) {
entry:
  br i1 %c, label %later, label %exit
later:
  br label %exit
exit:
  ret void
}
)",
                            Ctx);
  EXPECT_TRUE(verifyModule(*M));
}

TEST(Parser, AllInstructionKindsRoundTrip) {
  const char *Src = R"(
module "roundtrip"
global @A = [64 x i64]
global @D = [64 x double]
define i64 @f(i64 %a, double %d, i1 %c, <2 x i64> %v) {
entry:
  %p = gep i64, ptr @A, i64 %a
  %l = load i64, ptr %p
  %s0 = add i64 %l, 1
  %s1 = sub i64 %s0, %a
  %s2 = mul i64 %s1, 3
  %s3 = and i64 %s2, 255
  %s4 = or i64 %s3, 1
  %s5 = xor i64 %s4, 42
  %s6 = shl i64 %s5, 2
  %s7 = lshr i64 %s6, 1
  %s8 = ashr i64 %s7, 1
  %s9 = sdiv i64 %s8, 3
  %s10 = udiv i64 %s9, 2
  store i64 %s10, ptr %p
  %f0 = fadd double %d, 1.5
  %f1 = fsub double %f0, 0.5
  %f2 = fmul double %f1, 2.0
  %f3 = fdiv double %f2, 4.0
  %dp = gep double, ptr @D, i64 0
  store double %f3, ptr %dp
  %cmp = icmp sle i64 %s10, 100
  %sel = select i1 %cmp, i64 %s10, i64 0
  %ins = insertelement <2 x i64> %v, i64 %sel, i32 0
  %ext = extractelement <2 x i64> %ins, i32 1
  %shf = shufflevector <2 x i64> %ins, <2 x i64> %v, [0, 3]
  %cv = add <2 x i64> %shf, <i64 1, i64 2>
  %ext2 = extractelement <2 x i64> %cv, i32 0
  br i1 %c, label %then, label %done
then:
  br label %done
done:
  %r = phi i64 [ %ext, %entry ], [ %ext2, %then ]
  ret i64 %r
}
)";
  Context Ctx;
  auto M1 = parseModuleOrDie(Src, Ctx);
  EXPECT_TRUE(verifyModule(*M1));
  std::string Printed1 = moduleToString(*M1);
  Context Ctx2;
  auto M2 = parseModuleOrDie(Printed1, Ctx2);
  std::string Printed2 = moduleToString(*M2);
  // Print -> parse -> print is a fixpoint.
  EXPECT_EQ(Printed1, Printed2);
}

TEST(Parser, KernelModulesRoundTrip) {
  // Every registered kernel prints and re-parses to the same text.
  for (const KernelSpec &Spec : getAllKernels()) {
    SCOPED_TRACE(Spec.Name);
    Context Ctx;
    auto M = buildKernelModule(Spec, Ctx);
    std::string Printed = moduleToString(*M);
    Context Ctx2;
    std::string Err;
    auto M2 = parseModule(Printed, Ctx2, Err);
    ASSERT_NE(M2, nullptr) << Err << "\n" << Printed;
    EXPECT_EQ(moduleToString(*M2), Printed);
    EXPECT_TRUE(verifyModule(*M2));
  }
}

TEST(Parser, ErrorUnknownValue) {
  std::string Err = parseError(R"(
define void @f() {
entry:
  %x = add i64 %missing, 1
  ret void
}
)");
  EXPECT_NE(Err.find("undefined value"), std::string::npos);
}

TEST(Parser, ErrorTypeMismatchOnFixup) {
  std::string Err = parseError(R"(
define void @f(i64 %n) {
entry:
  br label %next
next:
  %x = add i64 %y, 1
  %y = fadd double 1.0, 2.0
  ret void
}
)");
  EXPECT_NE(Err.find("has type double"), std::string::npos);
}

TEST(Parser, ErrorDuplicateLabel) {
  std::string Err = parseError(R"(
define void @f() {
entry:
  ret void
entry:
  ret void
}
)");
  EXPECT_NE(Err.find("duplicate block label"), std::string::npos);
}

TEST(Parser, ErrorRedefinedValue) {
  std::string Err = parseError(R"(
define void @f() {
entry:
  %x = add i64 1, 2
  %x = add i64 3, 4
  ret void
}
)");
  EXPECT_NE(Err.find("redefinition"), std::string::npos);
}

TEST(Parser, ErrorUnknownOpcode) {
  std::string Err = parseError(R"(
define void @f() {
entry:
  %x = frobnicate i64 1, 2
  ret void
}
)");
  EXPECT_NE(Err.find("unknown opcode"), std::string::npos);
}

TEST(Parser, ErrorUnknownGlobal) {
  std::string Err = parseError(R"(
define void @f() {
entry:
  %p = gep i64, ptr @nope, i64 0
  ret void
}
)");
  EXPECT_NE(Err.find("unknown global"), std::string::npos);
}

TEST(Parser, ErrorVectorLiteralArity) {
  std::string Err = parseError(R"(
define void @f(<2 x i64> %v) {
entry:
  %x = add <2 x i64> %v, <i64 1, i64 2, i64 3>
  ret void
}
)");
  EXPECT_NE(Err.find("lane count"), std::string::npos);
}

TEST(Parser, ErrorLocalNameInVectorLiteral) {
  std::string Err = parseError(R"(
define void @f(<2 x i64> %v) {
entry:
  %x = add i64 1, 2
  %y = add <2 x i64> %v, <i64 1, i64 %x>
  ret void
}
)");
  EXPECT_NE(Err.find("must be constants"), std::string::npos);
}

TEST(Parser, ErrorConstantTypeMismatch) {
  std::string Err = parseError(R"(
define void @f() {
entry:
  %x = fadd double 1, 2.0
  ret void
}
)");
  EXPECT_NE(Err.find("integer literal"), std::string::npos);
}

} // namespace
