//===- tests/parser/LexerTest.cpp - Lexer tests --------------------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "parser/Lexer.h"

#include <gtest/gtest.h>

using namespace lslp;

namespace {

std::vector<Token> lex(std::string_view Src) {
  std::vector<Token> Tokens;
  std::string Err;
  EXPECT_TRUE(tokenize(Src, Tokens, Err)) << Err;
  return Tokens;
}

TEST(Lexer, Identifiers) {
  auto T = lex("define add i64 entry.1 _x");
  ASSERT_EQ(T.size(), 6u); // 5 idents + EOF
  EXPECT_TRUE(T[0].isIdent("define"));
  EXPECT_TRUE(T[1].isIdent("add"));
  EXPECT_TRUE(T[2].isIdent("i64"));
  EXPECT_TRUE(T[3].isIdent("entry.1"));
  EXPECT_TRUE(T[4].isIdent("_x"));
  EXPECT_TRUE(T[5].is(Token::EndOfFile));
}

TEST(Lexer, Sigils) {
  auto T = lex("%val @Arr %i.next");
  EXPECT_TRUE(T[0].is(Token::LocalId));
  EXPECT_EQ(T[0].Text, "val");
  EXPECT_TRUE(T[1].is(Token::GlobalId));
  EXPECT_EQ(T[1].Text, "Arr");
  EXPECT_EQ(T[2].Text, "i.next");
}

TEST(Lexer, Numbers) {
  auto T = lex("42 -7 3.5 -2.5 1e3 2E-2");
  EXPECT_TRUE(T[0].is(Token::IntLit));
  EXPECT_EQ(T[0].IntValue, 42);
  EXPECT_TRUE(T[1].is(Token::IntLit));
  EXPECT_EQ(T[1].IntValue, -7);
  EXPECT_TRUE(T[2].is(Token::FloatLit));
  EXPECT_DOUBLE_EQ(T[2].FloatValue, 3.5);
  EXPECT_TRUE(T[3].is(Token::FloatLit));
  EXPECT_DOUBLE_EQ(T[3].FloatValue, -2.5);
  EXPECT_DOUBLE_EQ(T[4].FloatValue, 1000.0);
  EXPECT_DOUBLE_EQ(T[5].FloatValue, 0.02);
}

TEST(Lexer, Punctuation) {
  auto T = lex(", = : ( ) { } [ ] < >");
  Token::Kind Expected[] = {Token::Comma,    Token::Equal,
                            Token::Colon,    Token::LParen,
                            Token::RParen,   Token::LBrace,
                            Token::RBrace,   Token::LBracket,
                            Token::RBracket, Token::Less,
                            Token::Greater,  Token::EndOfFile};
  ASSERT_EQ(T.size(), std::size(Expected));
  for (size_t I = 0; I < T.size(); ++I)
    EXPECT_TRUE(T[I].is(Expected[I])) << "token " << I;
}

TEST(Lexer, CommentsAndLines) {
  auto T = lex("a ; this is a comment\nb");
  ASSERT_EQ(T.size(), 3u);
  EXPECT_TRUE(T[0].isIdent("a"));
  EXPECT_EQ(T[0].Line, 1u);
  EXPECT_TRUE(T[1].isIdent("b"));
  EXPECT_EQ(T[1].Line, 2u);
}

TEST(Lexer, StringLiterals) {
  auto T = lex("module \"my module name\"");
  EXPECT_TRUE(T[1].is(Token::StrLit));
  EXPECT_EQ(T[1].Text, "my module name");
}

TEST(Lexer, ErrorUnterminatedString) {
  std::vector<Token> Tokens;
  std::string Err;
  EXPECT_FALSE(tokenize("\"abc", Tokens, Err));
  EXPECT_NE(Err.find("unterminated"), std::string::npos);
}

TEST(Lexer, ErrorBadCharacter) {
  std::vector<Token> Tokens;
  std::string Err;
  EXPECT_FALSE(tokenize("a $ b", Tokens, Err));
  EXPECT_NE(Err.find("unexpected character"), std::string::npos);
}

TEST(Lexer, ErrorEmptySigil) {
  std::vector<Token> Tokens;
  std::string Err;
  EXPECT_FALSE(tokenize("% ", Tokens, Err));
}

TEST(Lexer, MinusAloneIsNotANumber) {
  std::vector<Token> Tokens;
  std::string Err;
  // '-' not followed by a digit is not a number; it is also not a valid
  // token start in this grammar when standalone... it lexes as an ident
  // char only inside identifiers, so a lone '-' is an ident start? No:
  // isIdentStart excludes '-', so this must fail.
  EXPECT_FALSE(tokenize("- 5", Tokens, Err));
}

} // namespace
