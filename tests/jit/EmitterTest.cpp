//===- tests/jit/EmitterTest.cpp - x86-64 encoding round-trips -----------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Byte-exact encoding checks for the in-process assembler. Every expected
// sequence below was cross-checked against an external disassembler; the
// cases concentrate on the encoding cliffs (RBP/R13 forcing a disp8,
// R12 forcing a SIB byte, REX for extended and byte registers, shortest
// mov-immediate selection, rel32 fixup patching).
//
//===----------------------------------------------------------------------===//

#include "jit/Assembler.h"

#include <gtest/gtest.h>

using namespace lslp::jit;

namespace {

using Bytes = std::vector<uint8_t>;

/// Runs \p Emit on a fresh assembler and returns the finalized bytes.
template <typename F> Bytes enc(F Emit) {
  Assembler A;
  Emit(A);
  EXPECT_TRUE(A.finalize());
  return A.code();
}

TEST(Emitter, StackAndControl) {
  EXPECT_EQ(enc([](Assembler &A) { A.push(RBX); }), Bytes({0x53}));
  EXPECT_EQ(enc([](Assembler &A) { A.push(R12); }), Bytes({0x41, 0x54}));
  EXPECT_EQ(enc([](Assembler &A) { A.pop(R15); }), Bytes({0x41, 0x5f}));
  EXPECT_EQ(enc([](Assembler &A) { A.ret(); }), Bytes({0xc3}));
}

TEST(Emitter, MovRegReg) {
  EXPECT_EQ(enc([](Assembler &A) { A.movRR(RBP, RDI); }),
            Bytes({0x48, 0x89, 0xfd}));
  EXPECT_EQ(enc([](Assembler &A) { A.movRR(R8, RAX); }),
            Bytes({0x49, 0x89, 0xc0}));
}

TEST(Emitter, MemoryOperandCliffs) {
  // Plain base, no displacement byte needed.
  EXPECT_EQ(enc([](Assembler &A) { A.movRM(RAX, mem(RBX)); }),
            Bytes({0x48, 0x8b, 0x03}));
  // RBP as base cannot use mod=00 (that slot means RIP-relative): a zero
  // disp8 is forced.
  EXPECT_EQ(enc([](Assembler &A) { A.movRM(RAX, mem(RBP)); }),
            Bytes({0x48, 0x8b, 0x45, 0x00}));
  // R13 shares RBP's ModRM slot, same disp8 rule.
  EXPECT_EQ(enc([](Assembler &A) { A.movRM(RAX, mem(R13, 8)); }),
            Bytes({0x49, 0x8b, 0x45, 0x08}));
  // R12 shares RSP's slot, which demands a SIB byte.
  EXPECT_EQ(enc([](Assembler &A) { A.movRM(RAX, mem(R12)); }),
            Bytes({0x49, 0x8b, 0x04, 0x24}));
  // Displacement beyond int8 widens to disp32.
  EXPECT_EQ(enc([](Assembler &A) { A.movMR(mem(RBX, 256), RCX); }),
            Bytes({0x48, 0x89, 0x8b, 0x00, 0x01, 0x00, 0x00}));
  // Scaled index: mov rax, [r12 + rcx*8 + 0x10].
  EXPECT_EQ(enc([](Assembler &A) { A.movRM(RAX, mem(R12, RCX, 3, 0x10)); }),
            Bytes({0x49, 0x8b, 0x44, 0xcc, 0x10}));
}

TEST(Emitter, MovImmediateShortestForm) {
  // Fits in u32: plain mov r32, imm32 zero-extends.
  EXPECT_EQ(enc([](Assembler &A) { A.movRI(RAX, 1); }),
            Bytes({0xb8, 0x01, 0x00, 0x00, 0x00}));
  EXPECT_EQ(enc([](Assembler &A) { A.movRI(R9, 5); }),
            Bytes({0x41, 0xb9, 0x05, 0x00, 0x00, 0x00}));
  // Sign-extended imm32 form for negatives.
  EXPECT_EQ(enc([](Assembler &A) { A.movRI(RAX, uint64_t(-1)); }),
            Bytes({0x48, 0xc7, 0xc0, 0xff, 0xff, 0xff, 0xff}));
  // Full movabs only when nothing shorter fits.
  EXPECT_EQ(enc([](Assembler &A) { A.movRI(RAX, 0x123456789ull); }),
            Bytes({0x48, 0xb8, 0x89, 0x67, 0x45, 0x23, 0x01, 0x00, 0x00,
                   0x00}));
}

TEST(Emitter, Alu) {
  EXPECT_EQ(enc([](Assembler &A) { A.aluRR(Alu::Add, RAX, RCX); }),
            Bytes({0x48, 0x01, 0xc8}));
  EXPECT_EQ(enc([](Assembler &A) { A.aluRR(Alu::Xor, RDX, RDX); }),
            Bytes({0x48, 0x31, 0xd2}));
  // The charge sequence's memory compare: cmp r14, [rbp+24].
  EXPECT_EQ(enc([](Assembler &A) { A.aluRM(Alu::Cmp, R14, mem(RBP, 24)); }),
            Bytes({0x4c, 0x3b, 0x75, 0x18}));
  // The stat-counter bump: add qword [rax+8], 1.
  EXPECT_EQ(enc([](Assembler &A) { A.aluMI(Alu::Add, mem(RAX, 8), 1); }),
            Bytes({0x48, 0x83, 0x40, 0x08, 0x01}));
  EXPECT_EQ(enc([](Assembler &A) { A.imulRRI(RCX, RCX, 8); }),
            Bytes({0x48, 0x6b, 0xc9, 0x08}));
  EXPECT_EQ(enc([](Assembler &A) { A.shlCl(RAX); }),
            Bytes({0x48, 0xd3, 0xe0}));
  EXPECT_EQ(enc([](Assembler &A) { A.sarI(RAX, 63); }),
            Bytes({0x48, 0xc1, 0xf8, 0x3f}));
}

TEST(Emitter, ByteRegisterRex) {
  // sete al needs no REX...
  EXPECT_EQ(enc([](Assembler &A) { A.setcc(Cond::E, RAX); }),
            Bytes({0x0f, 0x94, 0xc0}));
  // ...but setb sil needs an empty REX, else the encoding means dh.
  EXPECT_EQ(enc([](Assembler &A) { A.setcc(Cond::B, RSI); }),
            Bytes({0x40, 0x0f, 0x92, 0xc6}));
}

TEST(Emitter, Sse) {
  EXPECT_EQ(enc([](Assembler &A) { A.movqXR(XMM0, RAX); }),
            Bytes({0x66, 0x48, 0x0f, 0x6e, 0xc0}));
  EXPECT_EQ(enc([](Assembler &A) { A.addsd(XMM0, XMM1); }),
            Bytes({0xf2, 0x0f, 0x58, 0xc1}));
  EXPECT_EQ(enc([](Assembler &A) { A.paddq(XMM0, XMM1); }),
            Bytes({0x66, 0x0f, 0xd4, 0xc1}));
  // The vector-select blend's and-not: pandn xmm1, xmm3.
  EXPECT_EQ(enc([](Assembler &A) { A.pandn(XMM1, XMM3); }),
            Bytes({0x66, 0x0f, 0xdf, 0xcb}));
  EXPECT_EQ(enc([](Assembler &A) { A.shufps(XMM0, XMM1, 0x08); }),
            Bytes({0x0f, 0xc6, 0xc1, 0x08}));
  // Unaligned vector load through R12 (the engine's memory base): REX.B
  // plus the SIB quirk.
  EXPECT_EQ(enc([](Assembler &A) { A.movupsXM(XMM2, mem(R12)); }),
            Bytes({0x41, 0x0f, 0x10, 0x14, 0x24}));
}

TEST(Emitter, LabelFixups) {
  // Forward jump to the next instruction: rel32 of zero.
  EXPECT_EQ(enc([](Assembler &A) {
              Assembler::Label L = A.newLabel();
              A.jmp(L);
              A.bind(L);
            }),
            Bytes({0xe9, 0x00, 0x00, 0x00, 0x00}));
  // Backward conditional jump: 6-byte jcc, rel32 = -(distance).
  EXPECT_EQ(enc([](Assembler &A) {
              Assembler::Label L = A.newLabel();
              A.bind(L);
              A.jcc(Cond::A, L);
            }),
            Bytes({0x0f, 0x87, 0xfa, 0xff, 0xff, 0xff}));
}

TEST(Emitter, UnboundLabelFailsFinalize) {
  Assembler A;
  Assembler::Label L = A.newLabel();
  A.jmp(L);
  EXPECT_FALSE(A.finalize());
}

TEST(Emitter, ListingIsDeterministic) {
  auto Render = [] {
    Assembler A(/*BuildListing=*/true);
    A.comment("prologue");
    A.push(RBX);
    A.movRR(RBP, RDI);
    A.ret();
    EXPECT_TRUE(A.finalize());
    return A.listing();
  };
  std::string L1 = Render(), L2 = Render();
  EXPECT_EQ(L1, L2);
  EXPECT_NE(L1.find("; prologue"), std::string::npos);
  EXPECT_NE(L1.find("push rbx"), std::string::npos);
  EXPECT_NE(L1.find("mov rbp, rdi"), std::string::npos);
}

} // namespace
