//===- tests/jit/JitParityTest.cpp - Three-way engine parity -------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The jit is a third backend of the same cycle-model machine: everything
// observable — return values, trap reasons, the memory image, dynamic
// instruction counts, cycle totals and the per-opcode mix — must be
// bit-identical to the tree-walker and the vm. The cases concentrate on
// the edges where a native lowering most plausibly diverges: traps,
// signed-division overflow, NaN payload propagation, float rounding,
// fptosi saturation, and out-of-bounds lane semantics. A corpus replay
// through the differential oracle closes with the full sweep.
//
//===----------------------------------------------------------------------===//

#include "costmodel/TargetTransformInfo.h"
#include "fuzz/DifferentialOracle.h"
#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/Module.h"
#include "jit/ExecMemory.h"
#include "parser/Parser.h"
#include "vm/ExecutionEngine.h"

#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

using namespace lslp;

namespace {

struct Observation {
  ExecStats Stats;
  std::vector<uint8_t> Memory;
};

/// Runs @f of \p Src on the given engine with i64 arguments.
Observation observe(EngineKind Kind, const std::string &Src,
                    const std::vector<uint64_t> &Args,
                    uint64_t StepLimit = 1u << 20) {
  Context Ctx;
  auto M = parseModuleOrDie(Src, Ctx);
  SkylakeTTI TTI;
  auto Engine = ExecutionEngine::create(Kind, *M, &TTI);
  Engine->setStepLimit(StepLimit);
  Engine->setCollectStats(true);
  std::vector<RuntimeValue> RTArgs;
  for (uint64_t A : Args)
    RTArgs.push_back(RuntimeValue::makeInt(Ctx.getInt64Ty(), A));
  Observation O;
  O.Stats = Engine->run(M->getFunction("f"), RTArgs);
  O.Memory = Engine->getMemoryImage();
  return O;
}

/// Requires bit-identical observations on interp, vm and jit.
void expectParity(const std::string &Src, std::vector<uint64_t> Args = {},
                  uint64_t StepLimit = 1u << 20) {
  Observation I = observe(EngineKind::TreeWalk, Src, Args, StepLimit);
  for (EngineKind K : {EngineKind::Bytecode, EngineKind::NativeJit}) {
    SCOPED_TRACE(engineKindName(K));
    Observation O = observe(K, Src, Args, StepLimit);
    EXPECT_EQ(I.Stats.Trapped, O.Stats.Trapped);
    EXPECT_EQ(I.Stats.TrapReason, O.Stats.TrapReason);
    EXPECT_EQ(I.Stats.ReturnValue.isValid(), O.Stats.ReturnValue.isValid());
    // Each observation parses into its own Context, so Type pointers are
    // not comparable across runs; the raw lane bits are the real contract.
    EXPECT_EQ(I.Stats.ReturnValue.Lanes, O.Stats.ReturnValue.Lanes);
    EXPECT_EQ(I.Stats.DynamicInsts, O.Stats.DynamicInsts);
    EXPECT_EQ(I.Stats.TotalCost, O.Stats.TotalCost);
    EXPECT_EQ(I.Stats.ScalarOpCounts, O.Stats.ScalarOpCounts);
    EXPECT_EQ(I.Stats.VectorOpCounts, O.Stats.VectorOpCounts);
    EXPECT_EQ(I.Memory, O.Memory);
  }
}

std::string binOp(const char *Op) {
  return std::string("define i64 @f(i64 %a, i64 %b) {\nentry:\n  %r = ") +
         Op + " i64 %a, %b\n  ret i64 %r\n}\n";
}

//===----------------------------------------------------------------------===//
// Integer traps
//===----------------------------------------------------------------------===//

TEST(JitParity, DivisionTraps) {
  for (const char *Op : {"udiv", "sdiv", "urem", "srem"}) {
    SCOPED_TRACE(Op);
    expectParity(binOp(Op), {42, 0});                          // By zero.
    expectParity(binOp(Op), {1ull << 63, uint64_t(-1)});       // Overflow.
    expectParity(binOp(Op), {uint64_t(-42), 5});               // Plain.
  }
}

TEST(JitParity, ShiftEdgeCases) {
  for (const char *Op : {"shl", "lshr", "ashr"})
    for (uint64_t Amount : {uint64_t(0), uint64_t(1), uint64_t(63),
                            uint64_t(64), uint64_t(65), uint64_t(-1)}) {
      SCOPED_TRACE(Op);
      expectParity(binOp(Op), {0x8000000000000001ull, Amount});
    }
}

TEST(JitParity, StepLimitTrap) {
  const char *Loop = "define void @f() {\nentry:\n  br label %l\n"
                     "l:\n  br label %l\n}\n";
  expectParity(Loop, {}, /*StepLimit=*/1000);
}

//===----------------------------------------------------------------------===//
// Memory traps
//===----------------------------------------------------------------------===//

TEST(JitParity, OutOfBoundsAccess) {
  // Stores before the trapping one must retire identically; the trapping
  // one must not. The i64 index is raw (wraps like the engines' uint64).
  const char *Src = "module \"oob\"\n\n"
                    "global @g = [4 x i64]\n\n"
                    "define void @f(i64 %i) {\n"
                    "entry:\n"
                    "  %p0 = gep i64, ptr @g, i64 0\n"
                    "  store i64 77, ptr %p0\n"
                    "  %p = gep i64, ptr @g, i64 %i\n"
                    "  store i64 88, ptr %p\n"
                    "  ret void\n"
                    "}\n";
  for (uint64_t I : {uint64_t(1), uint64_t(4), uint64_t(100000),
                     uint64_t(-1), uint64_t(-512)}) {
    SCOPED_TRACE(I);
    expectParity(Src, {I});
  }
}

TEST(JitParity, LoadBelowGuardPage) {
  // The first global sits at 4096; a negative index lands in the guard
  // page below it, which traps even though the address is in range.
  const char *Src = "module \"guard\"\n\n"
                    "global @g = [4 x i64]\n\n"
                    "define i64 @f(i64 %i) {\n"
                    "entry:\n"
                    "  %p = gep i64, ptr @g, i64 %i\n"
                    "  %v = load i64, ptr %p\n"
                    "  ret i64 %v\n"
                    "}\n";
  expectParity(Src, {uint64_t(-1)});
  expectParity(Src, {uint64_t(-512)}); // Exactly address 0.
}

//===----------------------------------------------------------------------===//
// Floating point
//===----------------------------------------------------------------------===//

// The dialect has no bitcast, so NaN payloads travel through memory: the
// raw i64 is stored and re-loaded as a double (addresses are untyped).
std::string fpBinViaMemory(const char *Op, bool MulAfter) {
  std::string Src = "module \"fpbits\"\n\n"
                    "global @buf = [2 x i64]\n\n"
                    "define double @f(i64 %a, i64 %bb) {\n"
                    "entry:\n"
                    "  %pa = gep i64, ptr @buf, i64 0\n"
                    "  %pb = gep i64, ptr @buf, i64 1\n"
                    "  store i64 %a, ptr %pa\n"
                    "  store i64 %bb, ptr %pb\n"
                    "  %x = load double, ptr %pa\n"
                    "  %y = load double, ptr %pb\n";
  Src += std::string("  %r = ") + Op + " double %x, %y\n";
  if (MulAfter)
    Src += "  %s = fmul double %r, %y\n  ret double %s\n}\n";
  else
    Src += "  ret double %r\n}\n";
  return Src;
}

TEST(JitParity, NaNPayloadPropagation) {
  // IEEE leaves *which* NaN an operation returns to the implementation;
  // the engines pin one answer bit-for-bit, so the jit must reproduce the
  // host's operand order exactly (the NaN-order probe).
  std::string Src = fpBinViaMemory("fadd", /*MulAfter=*/true);
  uint64_t Q1 = 0x7FF8000000000001ull, Q2 = 0x7FF8000000000002ull;
  expectParity(Src, {Q1, Q2});
  expectParity(Src, {Q2, Q1});
  expectParity(Src, {Q1, 0x3FF0000000000000ull});
}

TEST(JitParity, SignedZeroAndRounding) {
  std::string Src = fpBinViaMemory("fadd", /*MulAfter=*/false);
  expectParity(Src, {0x8000000000000000ull, 0x0000000000000000ull});
  expectParity(Src, {0x8000000000000000ull, 0x8000000000000000ull});
  // Subnormals and an inexact sum.
  expectParity(Src, {0x0000000000000001ull, 0x0000000000000001ull});
  expectParity(Src, {0x3FF0000000000001ull, 0x3CA0000000000000ull});
  // Division: operand order is forced, not commutative.
  expectParity(fpBinViaMemory("fdiv", false),
               {0x3FF0000000000000ull, 0x0000000000000000ull}); // 1/0 = inf.
}

TEST(JitParity, FPToSISaturation) {
  const char *Src = "module \"sat\"\n\n"
                    "global @buf = [1 x i64]\n\n"
                    "define i64 @f(i64 %a) {\n"
                    "entry:\n"
                    "  %p = gep i64, ptr @buf, i64 0\n"
                    "  store i64 %a, ptr %p\n"
                    "  %x = load double, ptr %p\n"
                    "  %r = fptosi double %x to i64\n"
                    "  ret i64 %r\n"
                    "}\n";
  for (uint64_t Bits :
       {0x7FF8000000000000ull,  // NaN -> 0.
        0x7FF0000000000000ull,  // +inf -> INT64_MAX.
        0xFFF0000000000000ull,  // -inf -> INT64_MIN.
        0x43E0000000000000ull,  // 2^63 -> INT64_MAX.
        0xC3E0000000000000ull,  // -2^63 -> INT64_MIN (exactly representable).
        0x40468C0000000000ull,  // 45.09375 -> 45.
        0xC0468C0000000000ull}) // -45.09375 -> -45.
  {
    SCOPED_TRACE(Bits);
    expectParity(Src, {Bits});
  }
}

TEST(JitParity, FloatSingleRounding) {
  // i64 -> f32 must round once (through double with a final cvtsd2ss is
  // exact; converting via cvtsi2ss twice double-rounds).
  const char *Src = "define float @f(i64 %a) {\n"
                    "entry:\n"
                    "  %r = sitofp i64 %a to float\n"
                    "  ret float %r\n"
                    "}\n";
  expectParity(Src, {0x20000001ull});
  expectParity(Src, {uint64_t(-0x20000001ll)});
  expectParity(Src, {0x7FFFFFFFFFFFFFFFull});
}

//===----------------------------------------------------------------------===//
// Engine facade
//===----------------------------------------------------------------------===//

TEST(JitParity, FactoryFallsBackGracefully) {
  Context Ctx;
  auto M = parseModuleOrDie("define void @f() {\nentry:\n  ret void\n}\n",
                            Ctx);
  auto Engine = ExecutionEngine::create(EngineKind::NativeJit, *M);
  // Supported host: a real jit engine. Unsupported host: the bit-identical
  // vm (after a single process-wide remark) — never a crash.
  if (jit::jitHostSupported())
    EXPECT_STREQ(Engine->engineName(), "jit");
  else
    EXPECT_STREQ(Engine->engineName(), "vm");
  ExecStats S = Engine->run(M->getFunction("f"));
  EXPECT_FALSE(S.Trapped);
}

//===----------------------------------------------------------------------===//
// Corpus replay under the full oracle
//===----------------------------------------------------------------------===//

TEST(JitParity, CorpusReplayUnderThreeWayParity) {
  // Every minimized reproducer through the complete differential oracle
  // with the cross-engine invariant on — which now includes the jit leg
  // on capable hosts (and deliberately skips it elsewhere, where
  // --engine=jit is the vm again).
  OracleOptions Opts;
  Opts.CheckEngineParity = true;
  DifferentialOracle Oracle(Opts);
  size_t Count = 0;
  for (const auto &Entry :
       std::filesystem::directory_iterator(LSLP_FUZZ_CORPUS_DIR)) {
    if (Entry.path().extension() != ".lslp")
      continue;
    ++Count;
    std::ifstream In(Entry.path());
    ASSERT_TRUE(In.good()) << Entry.path();
    std::ostringstream SS;
    SS << In.rdbuf();
    OracleVerdict V = Oracle.check(SS.str());
    EXPECT_TRUE(V.Passed) << Entry.path().filename() << " ["
                          << V.ConfigName << "]: " << V.Reason;
  }
  EXPECT_GE(Count, 4u);
}

} // namespace
