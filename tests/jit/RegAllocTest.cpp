//===- tests/jit/RegAllocTest.cpp - Register-cache behavior --------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The register cache's contract at two levels: unit checks on the code it
// emits (hits emit nothing, clean evictions emit no store, flushes write
// back exactly the dirty set), and an end-to-end spill-pressure run with
// far more simultaneously-live values than the 6-register pool, executed
// natively and compared against the vm.
//
//===----------------------------------------------------------------------===//

#include "jit/RegAlloc.h"

#include "costmodel/TargetTransformInfo.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "jit/ExecMemory.h"
#include "parser/Parser.h"
#include "vm/ExecutionEngine.h"

#include <gtest/gtest.h>

using namespace lslp;
using namespace lslp::jit;

namespace {

TEST(RegCache, SecondReadIsFree) {
  Assembler A;
  RegCache RC(A, RBX, std::vector<bool>(8, true));
  RC.beginInst();
  Gpr First = RC.read(3, RAX);
  size_t AfterLoad = A.size();
  EXPECT_GT(AfterLoad, 0u) << "first read must load from the frame";
  RC.beginInst();
  Gpr Second = RC.read(3, RAX);
  EXPECT_EQ(First, Second);
  EXPECT_EQ(A.size(), AfterLoad) << "cache hit must emit no code";
}

TEST(RegCache, UncacheableSlotGoesThroughScratch) {
  Assembler A;
  std::vector<bool> Cacheable(8, true);
  Cacheable[2] = false;
  RegCache RC(A, RBX, Cacheable);
  RC.beginInst();
  EXPECT_EQ(RC.read(2, RDX), RDX);
  size_t AfterFirst = A.size();
  RC.beginInst();
  EXPECT_EQ(RC.read(2, RDX), RDX);
  EXPECT_GT(A.size(), AfterFirst) << "uncacheable reads reload every time";
}

TEST(RegCache, CleanFlushEmitsNothing) {
  Assembler A;
  RegCache RC(A, RBX, std::vector<bool>(8, true));
  RC.beginInst();
  RC.read(0, RAX);
  RC.read(1, RAX);
  size_t BeforeFlush = A.size();
  RC.flush();
  EXPECT_EQ(A.size(), BeforeFlush) << "clean entries need no writeback";
}

TEST(RegCache, DirtyFlushWritesBack) {
  Assembler A;
  RegCache RC(A, RBX, std::vector<bool>(8, true));
  RC.beginInst();
  Gpr R = RC.writeReg(5, RAX);
  RC.commit(5, R);
  size_t BeforeFlush = A.size();
  RC.flush();
  EXPECT_GT(A.size(), BeforeFlush) << "dirty entry must be stored";
  size_t AfterFlush = A.size();
  RC.flush();
  EXPECT_EQ(A.size(), AfterFlush) << "flush must also clear the dirty bit";
}

TEST(RegCache, EvictionUnderPressure) {
  // Pool has 6 registers; touching 7 slots forces an eviction of the
  // least recently used entry (slot 0). The still-resident slots then hit
  // for free, and only the evicted slot pays a reload.
  Assembler A;
  RegCache RC(A, RBX, std::vector<bool>(32, true));
  for (uint32_t S = 0; S <= RegCache::PoolSize; ++S) {
    RC.beginInst();
    RC.read(S, RAX);
  }
  size_t AfterFill = A.size();
  for (uint32_t S = 1; S <= RegCache::PoolSize; ++S) {
    RC.beginInst();
    RC.read(S, RAX);
  }
  EXPECT_EQ(A.size(), AfterFill) << "resident slots must hit without code";
  RC.beginInst();
  RC.read(0, RAX);
  EXPECT_GT(A.size(), AfterFill)
      << "re-reading the evicted slot must reload it";
}

//===----------------------------------------------------------------------===//
// End-to-end spill pressure
//===----------------------------------------------------------------------===//

/// A function keeping 20 scalar values live at once (each %vNN is born
/// early and only dies in the final reduction chain), far beyond the
/// 6-register pool — every extra value demand-spills through the frame.
std::string spillPressureSource() {
  std::string Src = "define i64 @f(i64 %n) {\nentry:\n";
  for (int I = 0; I < 20; ++I)
    Src += "  %v" + std::to_string(I) + " = add i64 %n, " +
           std::to_string(I * 7 + 1) + "\n";
  // Fold in reverse order so the first values stay live the longest.
  Src += "  %m0 = mul i64 %v19, 3\n";
  for (int I = 1; I < 20; ++I)
    Src += "  %m" + std::to_string(I) + " = add i64 %m" +
           std::to_string(I - 1) + ", %v" + std::to_string(19 - I) + "\n";
  Src += "  %r = xor i64 %m19, %v0\n  ret i64 %r\n}\n";
  return Src;
}

TEST(RegAllocExecution, SpillPressureMatchesVM) {
  if (!jitHostSupported())
    GTEST_SKIP() << "host cannot execute generated x86-64 code";
  Context Ctx;
  auto M = parseModuleOrDie(spillPressureSource(), Ctx);
  SkylakeTTI TTI;
  auto VM = ExecutionEngine::create(EngineKind::Bytecode, *M, &TTI);
  auto JIT = ExecutionEngine::create(EngineKind::NativeJit, *M, &TTI);
  ASSERT_STREQ(JIT->engineName(), "jit");
  for (uint64_t N :
       {uint64_t(0), uint64_t(1), uint64_t(12345), uint64_t(-7)}) {
    std::vector<RuntimeValue> Args = {
        RuntimeValue::makeInt(Ctx.getInt64Ty(), N)};
    ExecStats A = VM->run(M->getFunction("f"), Args);
    ExecStats B = JIT->run(M->getFunction("f"), Args);
    ASSERT_FALSE(A.Trapped);
    ASSERT_FALSE(B.Trapped);
    EXPECT_EQ(A.ReturnValue.asUInt(), B.ReturnValue.asUInt()) << "n=" << N;
    EXPECT_EQ(A.DynamicInsts, B.DynamicInsts);
    EXPECT_EQ(A.TotalCost, B.TotalCost);
  }
}

} // namespace
