; jit function @sum: slots=15
; prologue
  0000: 53                             push rbx
  0001: 55                             push rbp
  0002: 41 54                          push r12
  0004: 41 55                          push r13
  0006: 41 56                          push r14
  0008: 41 57                          push r15
  000a: 48 89 fd                       mov rbp, rdi
  000d: 48 8b 5d 00                    mov rbx, [rbp]
  0011: 4c 8b 65 08                    mov r12, [rbp+8]
  0015: 4c 8b 6d 10                    mov r13, [rbp+16]
  0019: 4d 31 f6                       xor r14, r14
  001c: 4d 31 ff                       xor r15, r15
; [   0] Br to=11 cost=1
  001f: 49 83 c6 01                    add r14, 1
  0023: 4c 3b 75 18                    cmp r14, [rbp+24]
  0027: 0f 87 c4 01 00 00              ja L5
  002d: 49 83 c7 01                    add r15, 1
  0031: e9 76 01 00 00                 jmp L0
L3:
; [   1] PhiCommit dst=r1 a=r2
  0036: 49 83 c6 01                    add r14, 1
  003a: 4c 3b 75 18                    cmp r14, [rbp+24]
  003e: 0f 87 ad 01 00 00              ja L5
  0044: 48 8b 73 10                    mov rsi, [rbx+16]
  0048: 48 89 f7                       mov rdi, rsi
; [   2] PhiCommit dst=r3 a=r4
  004b: 49 83 c6 01                    add r14, 1
  004f: 4c 3b 75 18                    cmp r14, [rbp+24]
  0053: 0f 87 98 01 00 00              ja L5
  0059: 4c 8b 43 20                    mov r8, [rbx+32]
  005d: 4d 89 c1                       mov r9, r8
; [   3] Gep dst=r5 base=r11 idx=r1 scale=8
  0060: 49 83 c6 01                    add r14, 1
  0064: 4c 3b 75 18                    cmp r14, [rbp+24]
  0068: 0f 87 83 01 00 00              ja L5
  006e: 4c 8b 53 58                    mov r10, [rbx+88]
  0072: 48 89 f9                       mov rcx, rdi
  0075: 48 6b c9 08                    imul rcx, rcx, 8
  0079: 4c 01 d1                       add rcx, r10
  007c: 49 89 cb                       mov r11, rcx
; [   4] Load dst=r6 ptr=r5 size=8 cost=1
  007f: 49 83 c6 01                    add r14, 1
  0083: 4c 3b 75 18                    cmp r14, [rbp+24]
  0087: 0f 87 64 01 00 00              ja L5
  008d: 49 83 c7 01                    add r15, 1
  0091: 4c 89 d9                       mov rcx, r11
  0094: 48 81 f9 00 10 00 00           cmp rcx, 4096
  009b: 0f 82 5c 01 00 00              jb L6
  00a1: 48 8d 51 08                    lea rdx, [rcx+8]
  00a5: 4c 39 ea                       cmp rdx, r13
  00a8: 0f 87 4f 01 00 00              ja L6
  00ae: 49 8b 14 0c                    mov rdx, [r12+rcx*1]
  00b2: 48 89 d6                       mov rsi, rdx
; [   5] IntBin mul i64 dst=r7 a=r6 b=r12 cost=1
  00b5: 49 83 c6 01                    add r14, 1
  00b9: 4c 3b 75 18                    cmp r14, [rbp+24]
  00bd: 0f 87 2e 01 00 00              ja L5
  00c3: 49 83 c7 01                    add r15, 1
  00c7: 48 89 f0                       mov rax, rsi
  00ca: 4c 8b 43 60                    mov r8, [rbx+96]
  00ce: 4c 89 c1                       mov rcx, r8
  00d1: 48 0f af c1                    imul rax, rcx
  00d5: 4c 89 4b 18                    mov [rbx+24], r9
  00d9: 49 89 c1                       mov r9, rax
; [   6] IntBin add i64 dst=r8 a=r3 b=r7 cost=1
  00dc: 49 83 c6 01                    add r14, 1
  00e0: 4c 3b 75 18                    cmp r14, [rbp+24]
  00e4: 0f 87 07 01 00 00              ja L5
  00ea: 49 83 c7 01                    add r15, 1
  00ee: 4c 8b 53 18                    mov r10, [rbx+24]
  00f2: 4c 89 d0                       mov rax, r10
  00f5: 4c 89 c9                       mov rcx, r9
  00f8: 48 01 c8                       add rax, rcx
  00fb: 48 89 7b 08                    mov [rbx+8], rdi
  00ff: 48 89 c7                       mov rdi, rax
; [   7] IntBin add i64 dst=r9 a=r1 b=r13 cost=1
  0102: 49 83 c6 01                    add r14, 1
  0106: 4c 3b 75 18                    cmp r14, [rbp+24]
  010a: 0f 87 e1 00 00 00              ja L5
  0110: 49 83 c7 01                    add r15, 1
  0114: 4c 89 5b 28                    mov [rbx+40], r11
  0118: 4c 8b 5b 08                    mov r11, [rbx+8]
  011c: 4c 89 d8                       mov rax, r11
  011f: 48 89 73 30                    mov [rbx+48], rsi
  0123: 48 8b 73 68                    mov rsi, [rbx+104]
  0127: 48 89 f1                       mov rcx, rsi
  012a: 48 01 c8                       add rax, rcx
  012d: 49 89 c0                       mov r8, rax
; [   8] ICmp slt i64 dst=r10 a=r9 b=r0 cost=1
  0130: 49 83 c6 01                    add r14, 1
  0134: 4c 3b 75 18                    cmp r14, [rbp+24]
  0138: 0f 87 b3 00 00 00              ja L5
  013e: 49 83 c7 01                    add r15, 1
  0142: 4c 8b 13                       mov r10, [rbx]
  0145: 4d 39 d0                       cmp r8, r10
  0148: 0f 9c c2                       setl rdx.8
  014b: 48 0f b6 d2                    movzx rdx, rdx.8
  014f: 4c 89 4b 38                    mov [rbx+56], r9
  0153: 49 89 d1                       mov r9, rdx
; [   9] CondBr cond=r10 true=14 false=10 cost=1
  0156: 49 83 c6 01                    add r14, 1
  015a: 4c 3b 75 18                    cmp r14, [rbp+24]
  015e: 0f 87 8d 00 00 00              ja L5
  0164: 49 83 c7 01                    add r15, 1
  0168: 49 f7 c1 01 00 00 00           test r9, 1
  016f: 48 89 7b 40                    mov [rbx+64], rdi
  0173: 4c 89 43 48                    mov [rbx+72], r8
  0177: 4c 89 4b 50                    mov [rbx+80], r9
  017b: 0f 85 42 00 00 00              jne L1
  0181: e9 00 00 00 00                 jmp L2
L2:
; [  10] Ret a=r8 cost=1
  0186: 49 83 c6 01                    add r14, 1
  018a: 4c 3b 75 18                    cmp r14, [rbp+24]
  018e: 0f 87 5d 00 00 00              ja L5
  0194: 49 83 c7 01                    add r15, 1
  0198: 48 8b 43 40                    mov rax, [rbx+64]
  019c: 48 89 45 40                    mov [rbp+64], rax
  01a0: c7 45 38 01 00 00 00           mov.32 [rbp+56], 1
  01a7: e9 32 00 00 00                 jmp L4
L0:
; [  11] Copy dst=r2 a=r14 free
  01ac: 48 8b 73 70                    mov rsi, [rbx+112]
  01b0: 48 89 f7                       mov rdi, rsi
; [  12] Copy dst=r4 a=r14 free
  01b3: 49 89 f0                       mov r8, rsi
; [  13] Jump to=1 free
  01b6: 48 89 7b 10                    mov [rbx+16], rdi
  01ba: 4c 89 43 20                    mov [rbx+32], r8
  01be: e9 73 fe ff ff                 jmp L3
L1:
; [  14] Copy dst=r2 a=r9 free
  01c3: 48 8b 73 48                    mov rsi, [rbx+72]
  01c7: 48 89 f7                       mov rdi, rsi
; [  15] Copy dst=r4 a=r8 free
  01ca: 4c 8b 43 40                    mov r8, [rbx+64]
  01ce: 4d 89 c1                       mov r9, r8
; [  16] Jump to=1 free
  01d1: 48 89 7b 10                    mov [rbx+16], rdi
  01d5: 4c 89 4b 20                    mov [rbx+32], r9
  01d9: e9 58 fe ff ff                 jmp L3
; epilogue
L4:
  01de: 4c 89 75 20                    mov [rbp+32], r14
  01e2: 4c 89 7d 28                    mov [rbp+40], r15
  01e6: 41 5f                          pop r15
  01e8: 41 5e                          pop r14
  01ea: 41 5d                          pop r13
  01ec: 41 5c                          pop r12
  01ee: 5d                             pop rbp
  01ef: 5b                             pop rbx
  01f0: c3                             ret
; trap: step limit exceeded (infinite loop?)
L5:
  01f1: c7 45 3c 01 00 00 00           mov.32 [rbp+60], 1
  01f8: e9 e1 ff ff ff                 jmp L4
; trap: out-of-bounds memory access
L6:
  01fd: c7 45 3c 08 00 00 00           mov.32 [rbp+60], 8
  0204: e9 d5 ff ff ff                 jmp L4

; jit function @scale: slots=9
; prologue
  0000: 53                             push rbx
  0001: 55                             push rbp
  0002: 41 54                          push r12
  0004: 41 55                          push r13
  0006: 41 56                          push r14
  0008: 41 57                          push r15
  000a: 48 89 fd                       mov rbp, rdi
  000d: 48 8b 5d 00                    mov rbx, [rbp]
  0011: 4c 8b 65 08                    mov r12, [rbp+8]
  0015: 4c 8b 6d 10                    mov r13, [rbp+16]
  0019: 4d 31 f6                       xor r14, r14
  001c: 4d 31 ff                       xor r15, r15
; [   0] Gep dst=r0 base=r6 idx=r7 scale=8
  001f: 49 83 c6 01                    add r14, 1
  0023: 4c 3b 75 18                    cmp r14, [rbp+24]
  0027: 0f 87 8c 01 00 00              ja L1
  002d: 48 8b 73 30                    mov rsi, [rbx+48]
  0031: 48 8b 7b 38                    mov rdi, [rbx+56]
  0035: 48 89 f9                       mov rcx, rdi
  0038: 48 6b c9 08                    imul rcx, rcx, 8
  003c: 48 01 f1                       add rcx, rsi
  003f: 49 89 c8                       mov r8, rcx
; [   1] Gep dst=r1 base=r6 idx=r8 scale=8
  0042: 49 83 c6 01                    add r14, 1
  0046: 4c 3b 75 18                    cmp r14, [rbp+24]
  004a: 0f 87 69 01 00 00              ja L1
  0050: 4c 8b 4b 40                    mov r9, [rbx+64]
  0054: 4c 89 c9                       mov rcx, r9
  0057: 48 6b c9 08                    imul rcx, rcx, 8
  005b: 48 01 f1                       add rcx, rsi
  005e: 49 89 ca                       mov r10, rcx
; [   2] Load dst=r2 ptr=r0 size=8 cost=1
  0061: 49 83 c6 01                    add r14, 1
  0065: 4c 3b 75 18                    cmp r14, [rbp+24]
  0069: 0f 87 4a 01 00 00              ja L1
  006f: 49 83 c7 01                    add r15, 1
  0073: 4c 89 c1                       mov rcx, r8
  0076: 48 81 f9 00 10 00 00           cmp rcx, 4096
  007d: 0f 82 42 01 00 00              jb L2
  0083: 48 8d 51 08                    lea rdx, [rcx+8]
  0087: 4c 39 ea                       cmp rdx, r13
  008a: 0f 87 35 01 00 00              ja L2
  0090: 49 8b 14 0c                    mov rdx, [r12+rcx*1]
  0094: 49 89 d3                       mov r11, rdx
; [   3] Load dst=r3 ptr=r1 size=8 cost=1
  0097: 49 83 c6 01                    add r14, 1
  009b: 4c 3b 75 18                    cmp r14, [rbp+24]
  009f: 0f 87 14 01 00 00              ja L1
  00a5: 49 83 c7 01                    add r15, 1
  00a9: 4c 89 d1                       mov rcx, r10
  00ac: 48 81 f9 00 10 00 00           cmp rcx, 4096
  00b3: 0f 82 0c 01 00 00              jb L2
  00b9: 48 8d 51 08                    lea rdx, [rcx+8]
  00bd: 4c 39 ea                       cmp rdx, r13
  00c0: 0f 87 ff 00 00 00              ja L2
  00c6: 49 8b 14 0c                    mov rdx, [r12+rcx*1]
  00ca: 48 89 d7                       mov rdi, rdx
; [   4] FPBin fmul f64 dst=r4 a=r2 b=r2 cost=1
  00cd: 49 83 c6 01                    add r14, 1
  00d1: 4c 3b 75 18                    cmp r14, [rbp+24]
  00d5: 0f 87 de 00 00 00              ja L1
  00db: 49 83 c7 01                    add r15, 1
  00df: 4c 89 d8                       mov rax, r11
  00e2: 4c 89 d9                       mov rcx, r11
  00e5: 66 48 0f 6e c0                 movq xmm0, rax
  00ea: 66 48 0f 6e c9                 movq xmm1, rcx
  00ef: f2 0f 59 c1                    mulsd xmm0, xmm1
  00f3: 66 48 0f 7e c2                 movq rdx, xmm0
  00f8: 48 89 d6                       mov rsi, rdx
; [   5] FPBin fmul f64 dst=r5 a=r3 b=r3 cost=1
  00fb: 49 83 c6 01                    add r14, 1
  00ff: 4c 3b 75 18                    cmp r14, [rbp+24]
  0103: 0f 87 b0 00 00 00              ja L1
  0109: 49 83 c7 01                    add r15, 1
  010d: 48 89 f8                       mov rax, rdi
  0110: 48 89 f9                       mov rcx, rdi
  0113: 66 48 0f 6e c0                 movq xmm0, rax
  0118: 66 48 0f 6e c9                 movq xmm1, rcx
  011d: f2 0f 59 c1                    mulsd xmm0, xmm1
  0121: 66 48 0f 7e c2                 movq rdx, xmm0
  0126: 49 89 d1                       mov r9, rdx
; [   6] Store val=r4 ptr=r0 size=8 cost=1
  0129: 49 83 c6 01                    add r14, 1
  012d: 4c 3b 75 18                    cmp r14, [rbp+24]
  0131: 0f 87 82 00 00 00              ja L1
  0137: 49 83 c7 01                    add r15, 1
  013b: 4c 89 c1                       mov rcx, r8
  013e: 48 81 f9 00 10 00 00           cmp rcx, 4096
  0145: 0f 82 7a 00 00 00              jb L2
  014b: 48 8d 51 08                    lea rdx, [rcx+8]
  014f: 4c 39 ea                       cmp rdx, r13
  0152: 0f 87 6d 00 00 00              ja L2
  0158: 49 89 34 0c                    mov [r12+rcx*1], rsi
; [   7] Store val=r5 ptr=r1 size=8 cost=1
  015c: 49 83 c6 01                    add r14, 1
  0160: 4c 3b 75 18                    cmp r14, [rbp+24]
  0164: 0f 87 4f 00 00 00              ja L1
  016a: 49 83 c7 01                    add r15, 1
  016e: 4c 89 d1                       mov rcx, r10
  0171: 48 81 f9 00 10 00 00           cmp rcx, 4096
  0178: 0f 82 47 00 00 00              jb L2
  017e: 48 8d 51 08                    lea rdx, [rcx+8]
  0182: 4c 39 ea                       cmp rdx, r13
  0185: 0f 87 3a 00 00 00              ja L2
  018b: 4d 89 0c 0c                    mov [r12+rcx*1], r9
; [   8] RetVoid cost=1
  018f: 49 83 c6 01                    add r14, 1
  0193: 4c 3b 75 18                    cmp r14, [rbp+24]
  0197: 0f 87 1c 00 00 00              ja L1
  019d: 49 83 c7 01                    add r15, 1
  01a1: e9 00 00 00 00                 jmp L0
; epilogue
L0:
  01a6: 4c 89 75 20                    mov [rbp+32], r14
  01aa: 4c 89 7d 28                    mov [rbp+40], r15
  01ae: 41 5f                          pop r15
  01b0: 41 5e                          pop r14
  01b2: 41 5d                          pop r13
  01b4: 41 5c                          pop r12
  01b6: 5d                             pop rbp
  01b7: 5b                             pop rbx
  01b8: c3                             ret
; trap: step limit exceeded (infinite loop?)
L1:
  01b9: c7 45 3c 01 00 00 00           mov.32 [rbp+60], 1
  01c0: e9 e1 ff ff ff                 jmp L0
; trap: out-of-bounds memory access
L2:
  01c5: c7 45 3c 08 00 00 00           mov.32 [rbp+60], 8
  01cc: e9 d5 ff ff ff                 jmp L0
