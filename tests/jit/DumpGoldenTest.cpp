//===- tests/jit/DumpGoldenTest.cpp - Listing golden files ---------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Locks the exact text of the two listing surfaces behind `lslpc
// --dump-bytecode` and `--dump-jit-asm` against golden files. Both
// listings are deliberately host-independent (the jit dump is produced
// with default options, without the host NaN-order probe), so the golden
// bytes must match on every platform and compiler.
//
// To regenerate after an intentional format or lowering change:
//   LSLP_UPDATE_GOLDEN=1 ./jit_test --gtest_filter='DumpGolden.*'
//
//===----------------------------------------------------------------------===//

#include "costmodel/TargetTransformInfo.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "jit/JITEngine.h"
#include "parser/Parser.h"
#include "vm/BytecodeDump.h"

#include <cstdlib>
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

using namespace lslp;

namespace {

/// A small module touching the interesting lowering shapes: a counted
/// loop (phis, condbr), scalar and x2-vector memory traffic, an integer
/// multiply and a float op — enough to keep the listing honest without
/// pinning hundreds of lines.
const char *kInput = "module \"golden\"\n"
                     "\n"
                     "global @a = [8 x i64]\n"
                     "global @d = [4 x double]\n"
                     "\n"
                     "define i64 @sum(i64 %n) {\n"
                     "entry:\n"
                     "  br label %loop\n"
                     "\n"
                     "loop:\n"
                     "  %i = phi i64 [ 0, %entry ], [ %next, %loop ]\n"
                     "  %acc = phi i64 [ 0, %entry ], [ %acc2, %loop ]\n"
                     "  %p = gep i64, ptr @a, i64 %i\n"
                     "  %v = load i64, ptr %p\n"
                     "  %t = mul i64 %v, 3\n"
                     "  %acc2 = add i64 %acc, %t\n"
                     "  %next = add i64 %i, 1\n"
                     "  %c = icmp slt i64 %next, %n\n"
                     "  br i1 %c, label %loop, label %exit\n"
                     "\n"
                     "exit:\n"
                     "  ret i64 %acc2\n"
                     "}\n"
                     "\n"
                     "define void @scale() {\n"
                     "entry:\n"
                     "  %p0 = gep double, ptr @d, i64 0\n"
                     "  %p1 = gep double, ptr @d, i64 1\n"
                     "  %x0 = load double, ptr %p0\n"
                     "  %x1 = load double, ptr %p1\n"
                     "  %y0 = fmul double %x0, %x0\n"
                     "  %y1 = fmul double %x1, %x1\n"
                     "  store double %y0, ptr %p0\n"
                     "  store double %y1, ptr %p1\n"
                     "  ret void\n"
                     "}\n";

std::string goldenPath(const char *Name) {
  return std::string(LSLP_JIT_GOLDEN_DIR) + "/" + Name;
}

void checkGolden(const char *Name, const std::string &Actual) {
  std::string Path = goldenPath(Name);
  if (std::getenv("LSLP_UPDATE_GOLDEN")) {
    std::ofstream Out(Path, std::ios::binary);
    ASSERT_TRUE(Out.good()) << "cannot write " << Path;
    Out << Actual;
    GTEST_SKIP() << "regenerated " << Path;
  }
  std::ifstream In(Path, std::ios::binary);
  ASSERT_TRUE(In.good()) << "missing golden file " << Path
                         << " (run with LSLP_UPDATE_GOLDEN=1 to create)";
  std::ostringstream SS;
  SS << In.rdbuf();
  EXPECT_EQ(SS.str(), Actual)
      << "listing drifted from " << Path
      << "; regenerate with LSLP_UPDATE_GOLDEN=1 if intentional";
}

TEST(DumpGolden, Bytecode) {
  Context Ctx;
  auto M = parseModuleOrDie(kInput, Ctx);
  SkylakeTTI TTI;
  checkGolden("golden_module.bytecode.txt",
              vm::dumpModuleBytecode(*M, &TTI));
}

TEST(DumpGolden, JitAsm) {
  Context Ctx;
  auto M = parseModuleOrDie(kInput, Ctx);
  SkylakeTTI TTI;
  checkGolden("golden_module.jit.s", jit::dumpModuleAsm(*M, &TTI));
}

/// Same text twice in one process — the listing builder keeps no global
/// state and the native lowering is deterministic.
TEST(DumpGolden, DumpsAreDeterministic) {
  Context Ctx;
  auto M = parseModuleOrDie(kInput, Ctx);
  SkylakeTTI TTI;
  EXPECT_EQ(jit::dumpModuleAsm(*M, &TTI), jit::dumpModuleAsm(*M, &TTI));
  EXPECT_EQ(vm::dumpModuleBytecode(*M, &TTI),
            vm::dumpModuleBytecode(*M, &TTI));
}

} // namespace
