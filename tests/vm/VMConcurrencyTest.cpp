//===- tests/vm/VMConcurrencyTest.cpp - Concurrent bytecode cache -------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The vm compiles each function to bytecode on first run and caches it.
// That cache is hit from the parallel bench/fuzz drivers, so concurrent
// first-run compiles of different (and the same) functions through one
// shared engine must be safe and produce the same results as serial runs.
// Memory is shared per engine, so the threads below only run functions
// that read arguments — no stores.
//
//===----------------------------------------------------------------------===//

#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/Module.h"
#include "parser/Parser.h"
#include "vm/ExecutionEngine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

using namespace lslp;

namespace {

/// Eight pure functions (arguments in, value out; no loads or stores), so
/// any interleaving of concurrent runs is well-defined.
std::string makePureModule() {
  std::string Src = "module \"pure\"\n";
  for (int F = 0; F != 8; ++F) {
    std::string N = std::to_string(F);
    Src += "define i64 @f" + N + "(i64 %a, i64 %b) {\n"
           "entry:\n"
           "  %s = add i64 %a, %b\n"
           "  %m = mul i64 %s, " + std::to_string(F + 2) + "\n"
           "  %r = xor i64 %m, " + std::to_string(F * 7 + 1) + "\n"
           "  ret i64 %r\n"
           "}\n";
  }
  return Src;
}

uint64_t runOne(ExecutionEngine &Engine, Module &M, Context &Ctx, int F,
                uint64_t A, uint64_t B) {
  return Engine
      .run(M.getFunction("f" + std::to_string(F)),
           {RuntimeValue::makeInt(Ctx.getInt64Ty(), A),
            RuntimeValue::makeInt(Ctx.getInt64Ty(), B)})
      .ReturnValue.asUInt();
}

TEST(VMConcurrency, ConcurrentFirstRunsMatchSerial) {
  std::string Src = makePureModule();

  // Serial reference: a fresh engine, every function once.
  uint64_t Want[8];
  {
    Context Ctx;
    auto M = parseModuleOrDie(Src, Ctx);
    auto Engine = ExecutionEngine::create(EngineKind::Bytecode, *M);
    for (int F = 0; F != 8; ++F)
      Want[F] = runOne(*Engine, *M, Ctx, F, 11, 31);
  }

  // 8 threads hammer one shared engine with a cold cache: every thread
  // triggers first-run compiles of all 8 functions in a different order.
  Context Ctx;
  auto M = parseModuleOrDie(Src, Ctx);
  auto Engine = ExecutionEngine::create(EngineKind::Bytecode, *M);
  std::atomic<int> Mismatches{0};
  std::vector<std::thread> Threads;
  for (int T = 0; T != 8; ++T)
    Threads.emplace_back([&, T] {
      for (int Round = 0; Round != 20; ++Round)
        for (int F = 0; F != 8; ++F) {
          int Fn = (F + T) % 8; // Each thread starts at a different function.
          if (runOne(*Engine, *M, Ctx, Fn, 11, 31) != Want[Fn])
            Mismatches.fetch_add(1, std::memory_order_relaxed);
        }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Mismatches.load(), 0);
}

TEST(VMConcurrency, CachedRunsStayCorrectAfterWarmup) {
  std::string Src = makePureModule();
  Context Ctx;
  auto M = parseModuleOrDie(Src, Ctx);
  auto Engine = ExecutionEngine::create(EngineKind::Bytecode, *M);
  uint64_t Want = runOne(*Engine, *M, Ctx, 3, 5, 9); // Warm the cache.
  std::atomic<int> Mismatches{0};
  std::vector<std::thread> Threads;
  for (int T = 0; T != 4; ++T)
    Threads.emplace_back([&] {
      for (int I = 0; I != 200; ++I)
        if (runOne(*Engine, *M, Ctx, 3, 5, 9) != Want)
          Mismatches.fetch_add(1, std::memory_order_relaxed);
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Mismatches.load(), 0);
}

} // namespace
