//===- tests/vm/VMEngineTest.cpp - Bytecode vm semantics -----------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Semantics of the bytecode register vm, exercised through the
// ExecutionEngine facade. The pinned values mirror the tree-walker's
// InterpreterTest — the vm is a second backend of the same cycle-model
// machine, so everything observable must come out identical.
//
//===----------------------------------------------------------------------===//

#include "costmodel/TargetTransformInfo.h"
#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/Module.h"
#include "parser/Parser.h"
#include "vm/ExecutionEngine.h"

#include <gtest/gtest.h>

using namespace lslp;

namespace {

/// Runs @f from the given module source on the vm with i64 arguments and
/// returns the (i64) result.
uint64_t evalI64(const char *Src, std::vector<uint64_t> Args = {}) {
  Context Ctx;
  auto M = parseModuleOrDie(Src, Ctx);
  auto Engine = ExecutionEngine::create(EngineKind::Bytecode, *M);
  std::vector<RuntimeValue> RTArgs;
  for (uint64_t A : Args)
    RTArgs.push_back(RuntimeValue::makeInt(Ctx.getInt64Ty(), A));
  return Engine->run(M->getFunction("f"), RTArgs).ReturnValue.asUInt();
}

double evalF64(const char *Src, std::vector<double> Args = {}) {
  Context Ctx;
  auto M = parseModuleOrDie(Src, Ctx);
  auto Engine = ExecutionEngine::create(EngineKind::Bytecode, *M);
  std::vector<RuntimeValue> RTArgs;
  for (double A : Args)
    RTArgs.push_back(RuntimeValue::makeFP(Ctx.getDoubleTy(), A));
  return Engine->run(M->getFunction("f"), RTArgs).ReturnValue.asFP();
}

//===----------------------------------------------------------------------===//
// Facade
//===----------------------------------------------------------------------===//

TEST(ExecutionEngineFacade, FactorySelectsBackend) {
  Context Ctx;
  auto M = parseModuleOrDie("define void @f() {\nentry:\n  ret void\n}\n",
                            Ctx);
  auto Interp = ExecutionEngine::create(EngineKind::TreeWalk, *M);
  auto VM = ExecutionEngine::create(EngineKind::Bytecode, *M);
  EXPECT_STREQ(Interp->engineName(), "interp");
  EXPECT_STREQ(VM->engineName(), "vm");
}

TEST(ExecutionEngineFacade, ParseEngineKind) {
  EngineKind K = EngineKind::TreeWalk;
  EXPECT_TRUE(parseEngineKind("vm", K));
  EXPECT_EQ(K, EngineKind::Bytecode);
  EXPECT_TRUE(parseEngineKind("interp", K));
  EXPECT_EQ(K, EngineKind::TreeWalk);
  EXPECT_TRUE(parseEngineKind("jit", K));
  EXPECT_EQ(K, EngineKind::NativeJit);
  // Unknown, near-miss and empty spellings must all be rejected — every
  // tool funnels through this one parser, so this is the only place the
  // rejection needs proving.
  for (const char *Bad : {"", "JIT", "vm ", "interp,vm", "native", "jitt"}) {
    EngineKind Probe = EngineKind::Bytecode;
    EXPECT_FALSE(parseEngineKind(Bad, Probe)) << "'" << Bad << "'";
    EXPECT_EQ(Probe, EngineKind::Bytecode) << "out-param clobbered";
  }
  EXPECT_STREQ(engineKindName(EngineKind::TreeWalk), "interp");
  EXPECT_STREQ(engineKindName(EngineKind::Bytecode), "vm");
  EXPECT_STREQ(engineKindName(EngineKind::NativeJit), "jit");
  EXPECT_STREQ(engineKindChoices(), "interp|vm|jit");
  // Wire-tag validation: every EngineKind round-trips, one past the end
  // does not.
  EXPECT_TRUE(engineKindFromTag(2, K));
  EXPECT_EQ(K, EngineKind::NativeJit);
  EXPECT_FALSE(engineKindFromTag(3, K));
}

//===----------------------------------------------------------------------===//
// Integer arithmetic (parameterized, same table as the tree-walker)
//===----------------------------------------------------------------------===//

struct BinOpCase {
  const char *Opcode;
  uint64_t A, B, Expected;
};

class VMIntBinOpTest : public ::testing::TestWithParam<BinOpCase> {};

TEST_P(VMIntBinOpTest, Evaluates) {
  const BinOpCase &C = GetParam();
  std::string Src = std::string("define i64 @f(i64 %a, i64 %b) {\n"
                                "entry:\n  %r = ") +
                    C.Opcode + " i64 %a, %b\n  ret i64 %r\n}\n";
  EXPECT_EQ(evalI64(Src.c_str(), {C.A, C.B}), C.Expected)
      << C.Opcode << " " << C.A << ", " << C.B;
}

INSTANTIATE_TEST_SUITE_P(
    Arithmetic, VMIntBinOpTest,
    ::testing::Values(
        BinOpCase{"add", 3, 4, 7},
        BinOpCase{"add", UINT64_MAX, 1, 0}, // Wraps.
        BinOpCase{"sub", 3, 5, uint64_t(-2)},
        BinOpCase{"mul", 7, 6, 42},
        BinOpCase{"mul", 1ULL << 63, 2, 0}, // Wraps.
        BinOpCase{"udiv", 42, 5, 8},
        BinOpCase{"sdiv", uint64_t(-42), 5, uint64_t(-8)},
        BinOpCase{"urem", 42, 5, 2},
        BinOpCase{"srem", uint64_t(-42), 5, uint64_t(-2)},
        BinOpCase{"and", 0b1100, 0b1010, 0b1000},
        BinOpCase{"or", 0b1100, 0b1010, 0b1110},
        BinOpCase{"xor", 0b1100, 0b1010, 0b0110},
        BinOpCase{"shl", 1, 10, 1024},
        BinOpCase{"shl", 1, 64, 0}, // Oversized shift yields zero.
        BinOpCase{"lshr", 1024, 3, 128},
        BinOpCase{"lshr", uint64_t(-1), 63, 1},
        BinOpCase{"ashr", uint64_t(-8), 1, uint64_t(-4)},
        BinOpCase{"ashr", uint64_t(-1), 70, uint64_t(-1)}));

//===----------------------------------------------------------------------===//
// Floating point
//===----------------------------------------------------------------------===//

TEST(VMEngine, FPArithmetic) {
  EXPECT_DOUBLE_EQ(evalF64(R"(
define double @f(double %a, double %b) {
entry:
  %s = fadd double %a, %b
  %d = fsub double %s, 1.0
  %m = fmul double %d, %b
  %q = fdiv double %m, 2.0
  ret double %q
}
)",
                           {2.5, 4.0}),
                   ((2.5 + 4.0 - 1.0) * 4.0) / 2.0);
}

TEST(VMEngine, FloatPrecisionIsSingle) {
  // Float-typed arithmetic must round to binary32 on every operation.
  Context Ctx;
  auto M = parseModuleOrDie(R"(
global @F = [4 x float]
define void @f() {
entry:
  %p = gep float, ptr @F, i64 0
  %v = load float, ptr %p
  %r = fmul float %v, %v
  %q = gep float, ptr @F, i64 1
  store float %r, ptr %q
  ret void
}
)",
                            Ctx);
  auto Engine = ExecutionEngine::create(EngineKind::Bytecode, *M);
  Engine->writeGlobalFP("F", 0, 1.1);
  Engine->run(M->getFunction("f"));
  float Expected = float(1.1) * float(1.1);
  EXPECT_EQ(Engine->readGlobalFP("F", 1), double(Expected));
}

//===----------------------------------------------------------------------===//
// Memory, globals and control flow
//===----------------------------------------------------------------------===//

TEST(VMEngine, GlobalReadWrite) {
  Context Ctx;
  auto M = parseModuleOrDie(R"(
global @A = [8 x i64]
define void @f() {
entry:
  %p0 = gep i64, ptr @A, i64 0
  %p1 = gep i64, ptr @A, i64 1
  %v = load i64, ptr %p0
  %w = add i64 %v, 5
  store i64 %w, ptr %p1
  ret void
}
)",
                            Ctx);
  auto Engine = ExecutionEngine::create(EngineKind::Bytecode, *M);
  Engine->writeGlobalInt("A", 0, 37);
  Engine->run(M->getFunction("f"));
  EXPECT_EQ(Engine->readGlobalInt("A", 1), 42u);
}

TEST(VMEngine, NegativeGepIndex) {
  // The gep index is sign-extended before scaling.
  Context Ctx;
  auto M = parseModuleOrDie(R"(
global @A = [8 x i64]
define void @f() {
entry:
  %p = gep i64, ptr @A, i64 4
  %q = gep i64, ptr %p, i64 -3
  store i64 9, ptr %q
  ret void
}
)",
                            Ctx);
  auto Engine = ExecutionEngine::create(EngineKind::Bytecode, *M);
  Engine->run(M->getFunction("f"));
  EXPECT_EQ(Engine->readGlobalInt("A", 1), 9u);
}

TEST(VMEngine, LoopSum) {
  Context Ctx;
  auto M = parseModuleOrDie(R"(
global @S = [1 x i64]
define void @f(i64 %n) {
entry:
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %next, %loop ]
  %p = gep i64, ptr @S, i64 0
  %acc = load i64, ptr %p
  %acc2 = add i64 %acc, %i
  store i64 %acc2, ptr %p
  %next = add i64 %i, 1
  %c = icmp slt i64 %next, %n
  br i1 %c, label %loop, label %exit
exit:
  ret void
}
)",
                            Ctx);
  auto Engine = ExecutionEngine::create(EngineKind::Bytecode, *M);
  Engine->run(M->getFunction("f"),
              {RuntimeValue::makeInt(Ctx.getInt64Ty(), 10)});
  EXPECT_EQ(Engine->readGlobalInt("S", 0), 45u);
}

TEST(VMEngine, PhiSwapIsParallel) {
  // The parallel-copy lowering (edge stubs into staging slots, committed
  // at block entry) must behave as simultaneous assignment.
  EXPECT_EQ(evalI64(R"(
define i64 @f(i64 %n) {
entry:
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %next, %loop ]
  %x = phi i64 [ 1, %entry ], [ %y, %loop ]
  %y = phi i64 [ 2, %entry ], [ %x, %loop ]
  %next = add i64 %i, 1
  %c = icmp slt i64 %next, %n
  br i1 %c, label %loop, label %exit
exit:
  %r = mul i64 %x, 10
  %r2 = add i64 %r, %y
  ret i64 %r2
}
)",
                    {3}),
            12u);
}

TEST(VMEngine, ConditionalBranching) {
  const char *Src = R"(
define i64 @f(i64 %a) {
entry:
  %c = icmp sgt i64 %a, 10
  br i1 %c, label %big, label %small
big:
  br label %done
small:
  br label %done
done:
  %r = phi i64 [ 100, %big ], [ 7, %small ]
  ret i64 %r
}
)";
  EXPECT_EQ(evalI64(Src, {50}), 100u);
  EXPECT_EQ(evalI64(Src, {3}), 7u);
}

//===----------------------------------------------------------------------===//
// Vector operations
//===----------------------------------------------------------------------===//

TEST(VMEngine, VectorLoadComputeStore) {
  Context Ctx;
  auto M = parseModuleOrDie(R"(
global @A = [8 x i64]
define void @f() {
entry:
  %p = gep i64, ptr @A, i64 0
  %v = load <4 x i64>, ptr %p
  %w = mul <4 x i64> %v, <i64 1, i64 2, i64 3, i64 4>
  %q = gep i64, ptr @A, i64 4
  store <4 x i64> %w, ptr %q
  ret void
}
)",
                            Ctx);
  auto Engine = ExecutionEngine::create(EngineKind::Bytecode, *M);
  for (uint64_t I = 0; I < 4; ++I)
    Engine->writeGlobalInt("A", I, 10 + I);
  Engine->run(M->getFunction("f"));
  EXPECT_EQ(Engine->readGlobalInt("A", 4), 10u);
  EXPECT_EQ(Engine->readGlobalInt("A", 5), 22u);
  EXPECT_EQ(Engine->readGlobalInt("A", 6), 36u);
  EXPECT_EQ(Engine->readGlobalInt("A", 7), 52u);
}

TEST(VMEngine, InsertExtractShuffle) {
  EXPECT_EQ(evalI64(R"(
define i64 @f(i64 %a, i64 %b) {
entry:
  %v0 = insertelement <2 x i64> undef, i64 %a, i32 0
  %v1 = insertelement <2 x i64> %v0, i64 %b, i32 1
  %sw = shufflevector <2 x i64> %v1, <2 x i64> %v1, [1, 0]
  %x = extractelement <2 x i64> %sw, i32 0
  %y = extractelement <2 x i64> %sw, i32 1
  %r = sub i64 %x, %y
  ret i64 %r
}
)",
                    {3, 10}),
            7u);
}

TEST(VMEngine, ShuffleSelectsAcrossInputs) {
  EXPECT_EQ(evalI64(R"(
define i64 @f(i64 %a, i64 %b) {
entry:
  %v0 = insertelement <2 x i64> undef, i64 %a, i32 0
  %v1 = insertelement <2 x i64> %v0, i64 %a, i32 1
  %w0 = insertelement <2 x i64> undef, i64 %b, i32 0
  %w1 = insertelement <2 x i64> %w0, i64 %b, i32 1
  %m = shufflevector <2 x i64> %v1, <2 x i64> %w1, [0, 3]
  %x = extractelement <2 x i64> %m, i32 0
  %y = extractelement <2 x i64> %m, i32 1
  %r = add i64 %x, %y
  ret i64 %r
}
)",
                    {5, 11}),
            16u);
}

//===----------------------------------------------------------------------===//
// Cost accounting and statistics (pins identical to the tree-walker)
//===----------------------------------------------------------------------===//

TEST(VMEngine, CostAccountingCountsDynamicInstructions) {
  Context Ctx;
  auto M = parseModuleOrDie(R"(
define void @f(i64 %n) {
entry:
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %next, %loop ]
  %next = add i64 %i, 1
  %c = icmp slt i64 %next, %n
  br i1 %c, label %loop, label %exit
exit:
  ret void
}
)",
                            Ctx);
  SkylakeTTI TTI;
  auto Engine = ExecutionEngine::create(EngineKind::Bytecode, *M, &TTI);
  auto R10 = Engine->run(M->getFunction("f"),
                         {RuntimeValue::makeInt(Ctx.getInt64Ty(), 10)});
  auto R20 = Engine->run(M->getFunction("f"),
                         {RuntimeValue::makeInt(Ctx.getInt64Ty(), 20)});
  // br(entry) + 10*(phi,add,icmp,br) + ret = 42 dynamic instructions.
  EXPECT_EQ(R10.DynamicInsts, 1 + 10 * 4 + 1u);
  EXPECT_GT(R20.TotalCost, R10.TotalCost);
  // phi costs 0, add/icmp/br cost 1 each: 1 + 10*3 + 1.
  EXPECT_EQ(R10.TotalCost, 1 + 10 * 3 + 1u);
}

TEST(VMEngine, OpcodeStatsCollection) {
  Context Ctx;
  auto M = parseModuleOrDie(R"(
global @A = [8 x i64]
define void @f() {
entry:
  %p = gep i64, ptr @A, i64 0
  %v = load <4 x i64>, ptr %p
  %w = add <4 x i64> %v, <i64 1, i64 1, i64 1, i64 1>
  store <4 x i64> %w, ptr %p
  %x = add i64 1, 2
  ret void
}
)",
                            Ctx);
  SkylakeTTI TTI;
  auto Engine = ExecutionEngine::create(EngineKind::Bytecode, *M, &TTI);
  Engine->setCollectStats(true);
  auto R = Engine->run(M->getFunction("f"));
  EXPECT_EQ(R.VectorOpCounts[ValueID::Load], 1u);
  EXPECT_EQ(R.VectorOpCounts[ValueID::Add], 1u);
  EXPECT_EQ(R.VectorOpCounts[ValueID::Store], 1u);
  EXPECT_EQ(R.ScalarOpCounts[ValueID::Add], 1u);
  EXPECT_EQ(R.ScalarOpCounts[ValueID::Gep], 1u);
  EXPECT_EQ(R.ScalarOpCounts.count(ValueID::Load), 0u);
}

TEST(VMEngine, StatsOffByDefault) {
  Context Ctx;
  auto M = parseModuleOrDie(R"(
define void @f() {
entry:
  %x = add i64 1, 2
  ret void
}
)",
                            Ctx);
  auto Engine = ExecutionEngine::create(EngineKind::Bytecode, *M);
  auto R = Engine->run(M->getFunction("f"));
  EXPECT_TRUE(R.ScalarOpCounts.empty());
  EXPECT_TRUE(R.VectorOpCounts.empty());
}

//===----------------------------------------------------------------------===//
// Casts
//===----------------------------------------------------------------------===//

TEST(VMEngine, Casts) {
  EXPECT_EQ(evalI64(R"(
define i64 @f(i64 %a) {
entry:
  %t = trunc i64 %a to i8
  %s = sext i8 %t to i64
  ret i64 %s
}
)",
                    {0xFFu}),
            uint64_t(-1));
  EXPECT_EQ(evalI64(R"(
define i64 @f(i64 %a) {
entry:
  %t = trunc i64 %a to i8
  %z = zext i8 %t to i64
  ret i64 %z
}
)",
                    {0x1FFu}),
            0xFFu);
  EXPECT_DOUBLE_EQ(evalF64(R"(
define double @f() {
entry:
  %c = sitofp i64 -3 to double
  ret double %c
}
)"),
                   -3.0);
  EXPECT_EQ(evalI64(R"(
define i64 @f() {
entry:
  %c = fptosi double 42.9 to i64
  ret i64 %c
}
)"),
            42u);
}

//===----------------------------------------------------------------------===//
// Engine mechanics: compile cache, step limit
//===----------------------------------------------------------------------===//

TEST(VMEngine, RepeatedRunsReuseCompiledCode) {
  Context Ctx;
  auto M = parseModuleOrDie(R"(
define i64 @f(i64 %a) {
entry:
  %r = mul i64 %a, %a
  ret i64 %r
}
)",
                            Ctx);
  auto Engine = ExecutionEngine::create(EngineKind::Bytecode, *M);
  for (uint64_t I = 1; I <= 5; ++I) {
    auto R = Engine->run(M->getFunction("f"),
                         {RuntimeValue::makeInt(Ctx.getInt64Ty(), I)});
    EXPECT_EQ(R.ReturnValue.asUInt(), I * I);
  }
}

TEST(VMEngine, StepLimitTrapsCleanly) {
  Context Ctx;
  auto M = parseModuleOrDie(R"(
define void @f() {
entry:
  br label %loop
loop:
  br label %loop
}
)",
                            Ctx);
  auto Engine = ExecutionEngine::create(EngineKind::Bytecode, *M);
  Engine->setStepLimit(1000);
  ExecStats S = Engine->run(M->getFunction("f"));
  EXPECT_TRUE(S.Trapped);
  EXPECT_EQ(S.TrapReason, "step limit exceeded (infinite loop?)");
}

} // namespace
