//===- tests/vm/EngineParityTest.cpp - Cross-engine invariance -----------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Execution edge cases asserted to behave IDENTICALLY on the tree-walking
// interpreter and the bytecode vm: trapping division/remainder, signed
// overflow wrap-around, NaN propagation through vector lanes,
// out-of-bounds accesses, and full ExecStats equality on real kernel
// modules (scalar and vectorized). Traps are clean results
// (ExecStats::Trapped + an engine-agnostic reason), never process aborts,
// and the reason string must match across engines verbatim.
//
//===----------------------------------------------------------------------===//

#include "costmodel/TargetTransformInfo.h"
#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/Module.h"
#include "ir/Verifier.h"
#include "kernels/Kernels.h"
#include "parser/Parser.h"
#include "vectorizer/SLPVectorizerPass.h"
#include "vm/ExecutionEngine.h"

#include <gtest/gtest.h>

using namespace lslp;

namespace {

std::unique_ptr<ExecutionEngine> makeEngine(EngineKind Kind, const Module &M,
                                            const TargetTransformInfo *TTI) {
  auto Engine = ExecutionEngine::create(Kind, M, TTI);
  Engine->setCollectStats(true);
  return Engine;
}

/// Runs every function of \p M (int args all \p Arg) on both engines and
/// asserts bit-identical memory, return values and full ExecStats.
void expectParity(const Module &M, uint64_t Arg = 0) {
  SkylakeTTI TTI;
  auto A = makeEngine(EngineKind::TreeWalk, M, &TTI);
  auto B = makeEngine(EngineKind::Bytecode, M, &TTI);
  for (const auto &F : M.functions()) {
    if (F->empty())
      continue;
    std::vector<RuntimeValue> Args;
    for (unsigned I = 0; I < F->getNumArgs(); ++I)
      Args.push_back(RuntimeValue::makeInt(
          M.getContext().getInt64Ty(), Arg));
    ExecStats RA = A->run(F.get(), Args);
    ExecStats RB = B->run(F.get(), Args);
    EXPECT_EQ(RA.DynamicInsts, RB.DynamicInsts) << "@" << F->getName();
    EXPECT_EQ(RA.TotalCost, RB.TotalCost) << "@" << F->getName();
    EXPECT_EQ(RA.ScalarOpCounts, RB.ScalarOpCounts) << "@" << F->getName();
    EXPECT_EQ(RA.VectorOpCounts, RB.VectorOpCounts) << "@" << F->getName();
    EXPECT_EQ(RA.ReturnValue.isValid(), RB.ReturnValue.isValid());
    if (RA.ReturnValue.isValid() && RB.ReturnValue.isValid()) {
      EXPECT_EQ(RA.ReturnValue.Lanes, RB.ReturnValue.Lanes)
          << "@" << F->getName();
    }
  }
  EXPECT_EQ(A->getMemoryImage(), B->getMemoryImage());
}

void expectParityOnSource(const char *Src, uint64_t Arg = 0) {
  Context Ctx;
  auto M = parseModuleOrDie(Src, Ctx);
  expectParity(*M, Arg);
}

/// Both engines must report a clean trap whose reason is exactly \p What
/// when running @f with \p Arg — no abort, no exit, and identical
/// diagnostics across engines (the reason carries no engine prefix).
void expectBothTrap(const char *Src, uint64_t Arg, const char *What) {
  for (EngineKind Kind : {EngineKind::TreeWalk, EngineKind::Bytecode}) {
    Context Ctx;
    auto M = parseModuleOrDie(Src, Ctx);
    auto Engine = ExecutionEngine::create(Kind, *M);
    Function *F = M->getFunction("f");
    std::vector<RuntimeValue> Args;
    for (unsigned I = 0; I < F->getNumArgs(); ++I)
      Args.push_back(RuntimeValue::makeInt(Ctx.getInt64Ty(), Arg));
    ExecStats S = Engine->run(F, Args);
    EXPECT_TRUE(S.Trapped) << engineKindName(Kind);
    EXPECT_EQ(S.TrapReason, What) << engineKindName(Kind);
    EXPECT_FALSE(S.ReturnValue.isValid()) << engineKindName(Kind);
  }
}

//===----------------------------------------------------------------------===//
// Trapping division and remainder
//===----------------------------------------------------------------------===//

TEST(EngineParity, UDivByZeroTrapsOnBothEngines) {
  expectBothTrap(R"(
define i64 @f(i64 %a) {
entry:
  %r = udiv i64 %a, 0
  ret i64 %r
}
)",
                 1, "udiv by zero");
}

TEST(EngineParity, SDivByZeroTrapsOnBothEngines) {
  expectBothTrap(R"(
define i64 @f(i64 %a) {
entry:
  %r = sdiv i64 %a, 0
  ret i64 %r
}
)",
                 1, "sdiv by zero");
}

TEST(EngineParity, URemByZeroTrapsOnBothEngines) {
  expectBothTrap(R"(
define i64 @f(i64 %a) {
entry:
  %r = urem i64 %a, 0
  ret i64 %r
}
)",
                 1, "urem by zero");
}

TEST(EngineParity, SRemByZeroTrapsOnBothEngines) {
  expectBothTrap(R"(
define i64 @f(i64 %a) {
entry:
  %r = srem i64 %a, 0
  ret i64 %r
}
)",
                 1, "srem by zero");
}

TEST(EngineParity, SDivOverflowTrapsOnBothEngines) {
  // INT64_MIN / -1 overflows; UB on hardware, a defined trap here.
  expectBothTrap(R"(
define i64 @f(i64 %a) {
entry:
  %r = sdiv i64 %a, -1
  ret i64 %r
}
)",
                 uint64_t(1) << 63, "sdiv overflow");
}

TEST(EngineParity, SRemOverflowTrapsOnBothEngines) {
  expectBothTrap(R"(
define i64 @f(i64 %a) {
entry:
  %r = srem i64 %a, -1
  ret i64 %r
}
)",
                 uint64_t(1) << 63, "srem overflow");
}

TEST(EngineParity, VectorDivByZeroLaneTrapsOnBothEngines) {
  // The zero hides in lane 1 of a vector udiv.
  expectBothTrap(R"(
define void @f(i64 %a) {
entry:
  %v0 = insertelement <2 x i64> undef, i64 %a, i32 0
  %v1 = insertelement <2 x i64> %v0, i64 0, i32 1
  %r = udiv <2 x i64> %v1, %v1
  ret void
}
)",
                 7, "udiv by zero");
}

//===----------------------------------------------------------------------===//
// Signed overflow wraps identically
//===----------------------------------------------------------------------===//

TEST(EngineParity, SignedOverflowWraps) {
  expectParityOnSource(R"(
define i64 @f(i64 %a) {
entry:
  %big = mul i64 %a, 6148914691236517205
  %sum = add i64 %big, %big
  %w = add i64 9223372036854775807, 1
  %r = add i64 %sum, %w
  ret i64 %r
}
)",
                       0x7FFFFFFFFFFFFFFFull);
}

TEST(EngineParity, NarrowIntegerWrapAndShifts) {
  expectParityOnSource(R"(
define i64 @f(i64 %a) {
entry:
  %t = trunc i64 %a to i8
  %m = mul i8 %t, %t
  %s = sext i8 %m to i64
  %z = zext i8 %m to i64
  %sh = shl i64 %s, 65
  %r = add i64 %z, %sh
  ret i64 %r
}
)",
                       200);
}

//===----------------------------------------------------------------------===//
// NaN propagation through vector lanes
//===----------------------------------------------------------------------===//

TEST(EngineParity, NaNPropagatesThroughVectorLanes) {
  // Lane 0 becomes 0.0/0.0 = NaN; lane 1 stays finite. The NaN must
  // propagate through the fadd/fmul chain into memory with identical
  // bit patterns on both engines (the memory-image comparison inside
  // expectParity is bit-exact).
  expectParityOnSource(R"(
global @A = [4 x double]
define void @f() {
entry:
  %p = gep double, ptr @A, i64 0
  %v = load <2 x double>, ptr %p
  %q = fdiv <2 x double> %v, %v
  %s = fadd <2 x double> %q, <double 1.0, double 2.0>
  %m = fmul <2 x double> %s, %s
  %o = gep double, ptr @A, i64 2
  store <2 x double> %m, ptr %o
  ret void
}
)");
}

TEST(EngineParity, NaNToIntSaturates) {
  // fptosi of NaN is UB on hardware; both engines define it as 0, and a
  // negative value converts by truncation — identical on both backends.
  expectParityOnSource(R"(
global @R = [2 x i64]
define void @f() {
entry:
  %nan = fdiv double 0.0, 0.0
  %c = fptosi double %nan to i64
  %p = gep i64, ptr @R, i64 0
  store i64 %c, ptr %p
  %neg = fdiv double -7.9, 2.0
  %d = fptosi double %neg to i64
  %q = gep i64, ptr @R, i64 1
  store i64 %d, ptr %q
  ret void
}
)");
}

//===----------------------------------------------------------------------===//
// Out-of-bounds accesses
//===----------------------------------------------------------------------===//

TEST(EngineParity, OOBLoadTrapsOnBothEngines) {
  expectBothTrap(R"(
global @A = [4 x i64]
define i64 @f(i64 %a) {
entry:
  %p = gep i64, ptr @A, i64 %a
  %v = load i64, ptr %p
  ret i64 %v
}
)",
                 100000000, "out-of-bounds memory access");
}

TEST(EngineParity, OOBStoreTrapsOnBothEngines) {
  expectBothTrap(R"(
global @A = [4 x i64]
define void @f(i64 %a) {
entry:
  %p = gep i64, ptr @A, i64 %a
  store i64 1, ptr %p
  ret void
}
)",
                 100000000, "out-of-bounds memory access");
}

TEST(EngineParity, NullPageAccessTrapsOnBothEngines) {
  // Addresses below 4096 are a guard page: address 0 (and any pointer
  // fabricated from an integer that lands there) must trap.
  expectBothTrap(R"(
global @A = [4 x i64]
define i64 @f(i64 %a) {
entry:
  %base = gep i64, ptr @A, i64 0
  %off = sub i64 %a, 600
  %p = gep i8, ptr %base, i64 %off
  %v = load i64, ptr %p
  ret i64 %v
}
)",
                 0, "out-of-bounds memory access");
}

TEST(EngineParity, StepLimitTrapsOnBothEngines) {
  for (EngineKind Kind : {EngineKind::TreeWalk, EngineKind::Bytecode}) {
    Context Ctx;
    auto M = parseModuleOrDie(R"(
define void @f() {
entry:
  br label %loop
loop:
  br label %loop
}
)",
                              Ctx);
    auto Engine = ExecutionEngine::create(Kind, *M);
    Engine->setStepLimit(1000);
    ExecStats S = Engine->run(M->getFunction("f"));
    EXPECT_TRUE(S.Trapped) << engineKindName(Kind);
    EXPECT_EQ(S.TrapReason, "step limit exceeded (infinite loop?)")
        << engineKindName(Kind);
    EXPECT_EQ(S.DynamicInsts, 1001u) << engineKindName(Kind);
  }
}

//===----------------------------------------------------------------------===//
// Whole-kernel parity, scalar and vectorized
//===----------------------------------------------------------------------===//

/// Full-stats parity on a real kernel module, optionally after running
/// the LSLP vectorizer (vector ops, shuffles and blends included).
void expectKernelParity(const char *KernelName, bool Vectorize) {
  const KernelSpec *Spec = findKernel(KernelName);
  ASSERT_NE(Spec, nullptr) << KernelName;
  Context Ctx;
  SkylakeTTI TTI;
  auto M = buildKernelModule(*Spec, Ctx);
  if (Vectorize) {
    SLPVectorizerPass Pass(VectorizerConfig::lslp(), TTI);
    Pass.runOnModule(*M);
    ASSERT_TRUE(verifyModule(*M));
  }
  auto A = makeEngine(EngineKind::TreeWalk, *M, &TTI);
  auto B = makeEngine(EngineKind::Bytecode, *M, &TTI);
  initKernelMemory(*A, *M);
  initKernelMemory(*B, *M);
  auto Run = [&](ExecutionEngine &E) {
    return E.run(M->getFunction(Spec->EntryFunction),
                 {RuntimeValue::makeInt(Ctx.getInt64Ty(), Spec->DefaultN)});
  };
  ExecStats RA = Run(*A);
  ExecStats RB = Run(*B);
  EXPECT_EQ(RA.DynamicInsts, RB.DynamicInsts);
  EXPECT_EQ(RA.TotalCost, RB.TotalCost);
  EXPECT_EQ(RA.ScalarOpCounts, RB.ScalarOpCounts);
  EXPECT_EQ(RA.VectorOpCounts, RB.VectorOpCounts);
  EXPECT_EQ(A->getMemoryImage(), B->getMemoryImage());
  EXPECT_EQ(checksumGlobals(*A, *M, Spec->OutputArrays),
            checksumGlobals(*B, *M, Spec->OutputArrays));
}

TEST(EngineParity, ScalarKernels) {
  for (const char *K : {"povray-dot", "453.calc-z3", "filler-branchy",
                        "433.mult-su2", "wrf-stencil"}) {
    SCOPED_TRACE(K);
    expectKernelParity(K, false);
  }
}

TEST(EngineParity, VectorizedKernels) {
  for (const char *K : {"povray-dot", "453.calc-z3", "453.boy-surface",
                        "gromacs-lj", "stream-add"}) {
    SCOPED_TRACE(K);
    expectKernelParity(K, true);
  }
}

} // namespace
