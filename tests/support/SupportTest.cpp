//===- tests/support/SupportTest.cpp - Support library tests -----------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Casting.h"
#include "support/OStream.h"
#include "support/RNG.h"
#include "support/StringUtil.h"

#include <gtest/gtest.h>

using namespace lslp;

namespace {

//===----------------------------------------------------------------------===//
// Casting
//===----------------------------------------------------------------------===//

struct Shape {
  enum Kind { SquareKind, CircleKind, RoundedSquareKind } K;
  explicit Shape(Kind K) : K(K) {}
};
struct Square : Shape {
  Square() : Shape(SquareKind) {}
  explicit Square(Kind K) : Shape(K) {}
  static bool classof(const Shape *S) {
    return S->K == SquareKind || S->K == RoundedSquareKind;
  }
};
struct RoundedSquare : Square {
  RoundedSquare() : Square(RoundedSquareKind) {}
  static bool classof(const Shape *S) { return S->K == RoundedSquareKind; }
};
struct Circle : Shape {
  Circle() : Shape(CircleKind) {}
  static bool classof(const Shape *S) { return S->K == CircleKind; }
};

TEST(Casting, IsaBasics) {
  Square Sq;
  Circle Ci;
  Shape *S1 = &Sq, *S2 = &Ci;
  EXPECT_TRUE(isa<Square>(S1));
  EXPECT_FALSE(isa<Circle>(S1));
  EXPECT_TRUE(isa<Circle>(S2));
  EXPECT_FALSE(isa<Square>(S2));
}

TEST(Casting, IsaRangeStyleClassof) {
  RoundedSquare RS;
  Shape *S = &RS;
  // classof covering a subrange of kinds behaves like LLVM hierarchies.
  EXPECT_TRUE(isa<Square>(S));
  EXPECT_TRUE(isa<RoundedSquare>(S));
}

TEST(Casting, CastAndDynCast) {
  Square Sq;
  Shape *S = &Sq;
  Square *Down = cast<Square>(S);
  EXPECT_EQ(Down, &Sq);
  EXPECT_EQ(dyn_cast<Circle>(S), nullptr);
  EXPECT_EQ(dyn_cast<Square>(S), &Sq);
}

TEST(Casting, ConstVariants) {
  Square Sq;
  const Shape *S = &Sq;
  EXPECT_TRUE(isa<Square>(S));
  EXPECT_EQ(cast<Square>(S), &Sq);
  EXPECT_EQ(dyn_cast<Circle>(S), nullptr);
}

TEST(Casting, PresentVariants) {
  Shape *Null = nullptr;
  EXPECT_FALSE(isa_and_present<Square>(Null));
  EXPECT_EQ(dyn_cast_if_present<Square>(Null), nullptr);
  Square Sq;
  Shape *S = &Sq;
  EXPECT_TRUE(isa_and_present<Square>(S));
  EXPECT_EQ(dyn_cast_if_present<Square>(S), &Sq);
}

TEST(Casting, ReferenceForms) {
  Square Sq;
  Shape &S = Sq;
  EXPECT_TRUE(isa<Square>(S));
  EXPECT_EQ(&cast<Square>(S), &Sq);
}

//===----------------------------------------------------------------------===//
// OStream
//===----------------------------------------------------------------------===//

TEST(OStream, BasicFormatting) {
  std::string Buf;
  StringOStream OS(Buf);
  OS << "x=" << 42 << " y=" << int64_t(-7) << " z=" << 1.5 << " b=" << true;
  EXPECT_EQ(Buf, "x=42 y=-7 z=1.5 b=true");
}

TEST(OStream, UnsignedAndChar) {
  std::string Buf;
  StringOStream OS(Buf);
  OS << uint64_t(18446744073709551615ULL) << '!' << uint32_t(7);
  EXPECT_EQ(Buf, "18446744073709551615!7");
}

TEST(OStream, PadToColumn) {
  std::string Buf;
  StringOStream OS(Buf);
  OS << "ab";
  OS.padToColumn(5);
  OS << "c";
  EXPECT_EQ(Buf, "ab   c");
}

TEST(OStream, PadToColumnResetsAtNewline) {
  std::string Buf;
  StringOStream OS(Buf);
  OS << "long line\nx";
  OS.padToColumn(3);
  EXPECT_EQ(Buf, "long line\nx  ");
}

TEST(OStream, Justification) {
  std::string Buf;
  StringOStream OS(Buf);
  OS.leftJustify("ab", 4);
  OS << "|";
  OS.rightJustify("cd", 4);
  EXPECT_EQ(Buf, "ab  |  cd");
}

TEST(OStream, JustifyLongerThanWidth) {
  std::string Buf;
  StringOStream OS(Buf);
  OS.leftJustify("abcdef", 3);
  OS.rightJustify("ghijkl", 2);
  EXPECT_EQ(Buf, "abcdefghijkl");
}

//===----------------------------------------------------------------------===//
// StringUtil
//===----------------------------------------------------------------------===//

TEST(StringUtil, FormatDouble) {
  EXPECT_EQ(formatDouble(1.2345, 2), "1.23");
  EXPECT_EQ(formatDouble(2.0, 0), "2");
  EXPECT_EQ(formatDouble(-0.5, 3), "-0.500");
}

TEST(StringUtil, Join) {
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"a"}, ", "), "a");
  EXPECT_EQ(join({"a", "b", "c"}, "-"), "a-b-c");
}

TEST(StringUtil, StartsWith) {
  EXPECT_TRUE(startsWith("foobar", "foo"));
  EXPECT_TRUE(startsWith("foo", ""));
  EXPECT_FALSE(startsWith("fo", "foo"));
  EXPECT_FALSE(startsWith("xfoo", "foo"));
}

TEST(StringUtil, ParseIntValid) {
  int64_t V = 0;
  EXPECT_TRUE(parseInt("0", V));
  EXPECT_EQ(V, 0);
  EXPECT_TRUE(parseInt("12345", V));
  EXPECT_EQ(V, 12345);
  EXPECT_TRUE(parseInt("-42", V));
  EXPECT_EQ(V, -42);
  EXPECT_TRUE(parseInt("9223372036854775807", V));
  EXPECT_EQ(V, INT64_MAX);
  EXPECT_TRUE(parseInt("-9223372036854775808", V));
  EXPECT_EQ(V, INT64_MIN);
}

TEST(StringUtil, ParseIntInvalid) {
  int64_t V = 0;
  EXPECT_FALSE(parseInt("", V));
  EXPECT_FALSE(parseInt("-", V));
  EXPECT_FALSE(parseInt("12a", V));
  EXPECT_FALSE(parseInt("9223372036854775808", V));  // INT64_MAX + 1
  EXPECT_FALSE(parseInt("-9223372036854775809", V)); // INT64_MIN - 1
  EXPECT_FALSE(parseInt("184467440737095516160", V));
}

//===----------------------------------------------------------------------===//
// RNG
//===----------------------------------------------------------------------===//

TEST(RNG, ExactSequenceSeed0) {
  // The canonical SplitMix64 test vector (state 0). Pinning the exact
  // sequence guarantees fuzz seeds reproduce identical modules across
  // platforms, standard libraries, and compiler versions.
  RNG R(0);
  EXPECT_EQ(R.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(R.next(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(R.next(), 0x06c45d188009454fULL);
  EXPECT_EQ(R.next(), 0xf88bb8a8724c81ecULL);
  EXPECT_EQ(R.next(), 0x1b39896a51a8749bULL);
}

TEST(RNG, ExactSequenceSeed42) {
  RNG R(42);
  EXPECT_EQ(R.next(), 0xbdd732262feb6e95ULL);
  EXPECT_EQ(R.next(), 0x28efe333b266f103ULL);
  EXPECT_EQ(R.next(), 0x47526757130f9f52ULL);
  EXPECT_EQ(R.next(), 0x581ce1ff0e4ae394ULL);
  EXPECT_EQ(R.next(), 0x09bc585a244823f2ULL);
}

TEST(RNG, ExactDerivedSequences) {
  // The derived helpers are part of the stable contract too: a change in
  // how nextBelow/nextDouble consume raw outputs would silently reshuffle
  // every fuzz corpus.
  RNG A(0xdeadbeef);
  const uint64_t Below[] = {67, 54, 29, 64, 20, 75, 47, 22};
  for (uint64_t Expected : Below)
    EXPECT_EQ(A.nextBelow(100), Expected);
  RNG B(7);
  EXPECT_DOUBLE_EQ(B.nextDouble(), 0.38982974839127149);
  EXPECT_DOUBLE_EQ(B.nextDouble(), 0.016788294528156111);
  EXPECT_DOUBLE_EQ(B.nextDouble(), 0.90076068060688341);
}

TEST(RNG, DeterministicAcrossInstances) {
  RNG A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RNG, DifferentSeedsDiffer) {
  RNG A(1), B(2);
  bool AnyDifferent = false;
  for (int I = 0; I < 10; ++I)
    AnyDifferent |= (A.next() != B.next());
  EXPECT_TRUE(AnyDifferent);
}

TEST(RNG, NextBelowInRange) {
  RNG R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.nextBelow(17), 17u);
}

TEST(RNG, NextInRangeInclusive) {
  RNG R(9);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I < 2000; ++I) {
    int64_t V = R.nextInRange(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    SawLo |= (V == -3);
    SawHi |= (V == 3);
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(RNG, NextDoubleUnitInterval) {
  RNG R(11);
  for (int I = 0; I < 1000; ++I) {
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(RNG, ChanceExtremes) {
  RNG R(13);
  for (int I = 0; I < 100; ++I) {
    EXPECT_FALSE(R.nextChance(0, 10));
    EXPECT_TRUE(R.nextChance(10, 10));
  }
}

} // namespace
