//===- tests/support/ThreadPoolTest.cpp - ThreadPool tests --------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

using namespace lslp;

namespace {

//===----------------------------------------------------------------------===//
// Pool basics
//===----------------------------------------------------------------------===//

TEST(ThreadPool, PoolOfOneRunsTasksInSubmissionOrder) {
  // A single worker pops the FIFO queue, so a pool of 1 *is* the serial
  // run — the determinism contract every parallel driver leans on.
  ThreadPool Pool(1);
  std::vector<int> Order;
  for (int I = 0; I != 64; ++I)
    Pool.async([&Order, I] { Order.push_back(I); });
  Pool.wait();
  ASSERT_EQ(Order.size(), 64u);
  for (int I = 0; I != 64; ++I)
    EXPECT_EQ(Order[static_cast<size_t>(I)], I);
}

TEST(ThreadPool, AtLeastOneWorker) {
  ThreadPool Pool(0);
  EXPECT_GE(Pool.getNumThreads(), 1u);
  auto F = Pool.async([] { return 7; });
  EXPECT_EQ(F.get(), 7);
}

TEST(ThreadPool, FutureCarriesResult) {
  ThreadPool Pool(2);
  auto A = Pool.async([] { return 21 * 2; });
  auto B = Pool.async([] { return std::string("ok"); });
  EXPECT_EQ(A.get(), 42);
  EXPECT_EQ(B.get(), "ok");
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool Pool(2);
  auto F = Pool.async([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(F.get(), std::runtime_error);
  // The worker that ran the throwing task must survive and keep serving.
  auto G = Pool.async([] { return 5; });
  EXPECT_EQ(G.get(), 5);
}

TEST(ThreadPool, OversubscriptionCompletesEveryTask) {
  // Far more tasks than workers: all of them must run exactly once.
  ThreadPool Pool(4);
  std::atomic<uint64_t> Sum{0};
  constexpr uint64_t N = 500;
  for (uint64_t I = 1; I <= N; ++I)
    Pool.async([&Sum, I] { Sum.fetch_add(I, std::memory_order_relaxed); });
  Pool.wait();
  EXPECT_EQ(Sum.load(), N * (N + 1) / 2);
}

TEST(ThreadPool, WaitThenReuse) {
  ThreadPool Pool(2);
  std::atomic<int> Count{0};
  for (int I = 0; I != 10; ++I)
    Pool.async([&Count] { ++Count; });
  Pool.wait();
  EXPECT_EQ(Count.load(), 10);
  for (int I = 0; I != 10; ++I)
    Pool.async([&Count] { ++Count; });
  Pool.wait();
  EXPECT_EQ(Count.load(), 20);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> Count{0};
  {
    ThreadPool Pool(2);
    for (int I = 0; I != 100; ++I)
      Pool.async([&Count] { ++Count; });
    // No wait(): the destructor must still run everything queued.
  }
  EXPECT_EQ(Count.load(), 100);
}

TEST(ThreadPool, ResolveJobs) {
  EXPECT_EQ(ThreadPool::resolveJobs(3), 3u);
  EXPECT_EQ(ThreadPool::resolveJobs(1), 1u);
  EXPECT_GE(ThreadPool::resolveJobs(0), 1u); // hardware concurrency
}

//===----------------------------------------------------------------------===//
// Ordered collect
//===----------------------------------------------------------------------===//

TEST(ThreadPool, ParallelMapOrderedReturnsIndexOrder) {
  ThreadPool Pool(4);
  // Early indices sleep longest, so completion order is roughly the
  // reverse of index order — the collect must still return index order.
  std::vector<size_t> Out = parallelMapOrdered(Pool, 32, [](size_t I) {
    std::this_thread::sleep_for(std::chrono::microseconds((32 - I) * 50));
    return I * I;
  });
  ASSERT_EQ(Out.size(), 32u);
  for (size_t I = 0; I != 32; ++I)
    EXPECT_EQ(Out[I], I * I);
}

TEST(ThreadPool, ParallelForOrderedConsumesAscendingOnCallingThread) {
  ThreadPool Pool(4);
  const std::thread::id Caller = std::this_thread::get_id();
  std::vector<size_t> Consumed;
  parallelForOrdered(
      Pool, 48,
      [](size_t I) {
        std::this_thread::sleep_for(std::chrono::microseconds((I % 7) * 40));
        return I + 1000;
      },
      [&](size_t I, size_t V) {
        EXPECT_EQ(std::this_thread::get_id(), Caller);
        EXPECT_EQ(V, I + 1000);
        Consumed.push_back(I);
      });
  ASSERT_EQ(Consumed.size(), 48u);
  for (size_t I = 0; I != 48; ++I)
    EXPECT_EQ(Consumed[I], I);
}

TEST(ThreadPool, ParallelMapOrderedMatchesSerialForEveryPoolSize) {
  auto Work = [](size_t I) { return I * 3 + 1; };
  std::vector<size_t> Want;
  for (size_t I = 0; I != 40; ++I)
    Want.push_back(Work(I));
  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    ThreadPool Pool(Threads);
    EXPECT_EQ(parallelMapOrdered(Pool, 40, Work), Want)
        << "pool size " << Threads;
  }
}

} // namespace
