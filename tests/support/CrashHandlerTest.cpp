//===- tests/support/CrashHandlerTest.cpp - Crash containment tests ------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
// Crash recovery is process-global write-once state, so the pre-install
// test comes first in declaration order and every crashing test installs
// the handlers itself (idempotent — also correct when ctest runs each
// case in its own process).
// The crashes are raised as SIGABRT: a real deployment mostly catches
// SIGSEGV too, but sanitizer builds own that signal for their reports, so
// the portable signal to test with is SIGABRT.
//
//===----------------------------------------------------------------------===//

#include "support/CrashHandler.h"

#include <gtest/gtest.h>

#include <csignal>
#include <fstream>
#include <sstream>
#include <thread>

using namespace lslp;

namespace {

const char *CrashDir = "crash-handler-test.dir";

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

TEST(CrashHandler, AAA_UnprotectedRunBeforeInstall) {
  ASSERT_FALSE(crashHandlersInstalled());
  bool Ran = false;
  CrashInfo Info;
  EXPECT_TRUE(runWithCrashRecovery([&] { Ran = true; }, Info));
  EXPECT_TRUE(Ran);
}

TEST(CrashHandler, AAB_InstallIsIdempotent) {
  installCrashHandlers(CrashDir);
  EXPECT_TRUE(crashHandlersInstalled());
  EXPECT_EQ(crashReproDir(), CrashDir);
  // Second install is a no-op; the first crash dir stays.
  installCrashHandlers("some-other-dir");
  EXPECT_EQ(crashReproDir(), CrashDir);
}

TEST(CrashHandler, RecoversFromAbortAndWritesReproducer) {
  // Each ctest case runs in its own process; install is idempotent.
  installCrashHandlers(CrashDir);
  const std::string IR = "define void @boom() {\nentry:\n  ret void\n}\n";
  const std::string Config = "{\"name\":\"LSLP\"}";
  CrashPayload Payload(&IR, &Config);
  CrashScope Outer("pass", "slp-vectorizer");

  bool AfterCrash = false;
  CrashInfo Info;
  bool Completed = runWithCrashRecovery(
      [&] {
        CrashScope Inner("function", "boom");
        std::raise(SIGABRT);
        AfterCrash = true; // Unreachable: the handler unwinds past this.
      },
      Info);

  EXPECT_FALSE(Completed);
  EXPECT_FALSE(AfterCrash);
  EXPECT_EQ(Info.Signal, SIGABRT);
  EXPECT_EQ(Info.SignalName, "SIGABRT");
  EXPECT_NE(Info.Breadcrumbs.find("function=boom"), std::string::npos);

  ASSERT_FALSE(Info.ReproPath.empty());
  std::string Repro = slurp(Info.ReproPath);
  EXPECT_NE(Repro.find("; crash reproducer"), std::string::npos);
  EXPECT_NE(Repro.find("; signal: SIGABRT"), std::string::npos);
  EXPECT_NE(Repro.find("; context: pass=slp-vectorizer"), std::string::npos);
  EXPECT_NE(Repro.find("; context: function=boom"), std::string::npos);
  EXPECT_NE(Repro.find("define void @boom()"), std::string::npos);

  // The config JSON lands next to the .ll under the same stem.
  std::string JSONPath = Info.ReproPath;
  ASSERT_GE(JSONPath.size(), 3u);
  JSONPath.replace(JSONPath.size() - 3, 3, ".json");
  EXPECT_EQ(slurp(JSONPath), Config + "\n");
}

TEST(CrashHandler, ThreadKeepsRunningAfterRecovery) {
  // Each ctest case runs in its own process; install is idempotent.
  installCrashHandlers(CrashDir);
  // The fuzz sweep pattern: a pool worker recovers from a crashing seed
  // and carries on with the next one.
  const std::string IR = "; worker payload\n";
  bool SecondUnitRan = false;
  std::thread Worker([&] {
    CrashPayload Payload(&IR, nullptr);
    CrashInfo Info;
    EXPECT_FALSE(
        runWithCrashRecovery([] { std::raise(SIGABRT); }, Info));
    EXPECT_EQ(Info.Signal, SIGABRT);
    CrashInfo Info2;
    EXPECT_TRUE(runWithCrashRecovery([&] { SecondUnitRan = true; }, Info2));
  });
  Worker.join();
  EXPECT_TRUE(SecondUnitRan);
}

TEST(CrashHandler, BreadcrumbStackUnwindsAcrossRecovery) {
  // Each ctest case runs in its own process; install is idempotent.
  installCrashHandlers(CrashDir);
  // Scopes skipped over by the recovery siglongjmp must not leak into
  // later crashes' contexts.
  const std::string IR = ";\n";
  CrashPayload Payload(&IR, nullptr);
  CrashInfo Info;
  runWithCrashRecovery(
      [&] {
        CrashScope Leaky("leaky", "scope");
        std::raise(SIGABRT);
      },
      Info);
  EXPECT_NE(Info.Breadcrumbs.find("leaky=scope"), std::string::npos);

  CrashInfo Info2;
  runWithCrashRecovery([] { std::raise(SIGABRT); }, Info2);
  EXPECT_EQ(Info2.Breadcrumbs.find("leaky=scope"), std::string::npos);
}

TEST(CrashHandler, NoReproducerWithoutPayload) {
  // Each ctest case runs in its own process; install is idempotent.
  installCrashHandlers(CrashDir);
  CrashInfo Info;
  EXPECT_FALSE(runWithCrashRecovery([] { std::raise(SIGABRT); }, Info));
  EXPECT_EQ(Info.Signal, SIGABRT);
  EXPECT_TRUE(Info.ReproPath.empty());
}

} // namespace
