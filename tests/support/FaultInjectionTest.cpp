//===- tests/support/FaultInjectionTest.cpp - Fault-stream determinism ---------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"

#include <gtest/gtest.h>

#include <vector>

using namespace lslp;

namespace {

std::vector<bool> drawSequence(const FaultInjector &Inj,
                               std::string_view FnName, unsigned N) {
  FaultStream S = Inj.streamFor(FnName);
  std::vector<bool> Draws;
  for (unsigned I = 0; I != N; ++I)
    Draws.push_back(S.shouldFail(
        static_cast<FaultSite>(I % NumFaultSites)));
  return Draws;
}

TEST(FaultInjection, ProbabilityZeroNeverFires) {
  FaultInjector Inj(/*Seed=*/123, /*Probability=*/0.0);
  FaultStream S = Inj.streamFor("f");
  for (unsigned I = 0; I != 1000; ++I)
    EXPECT_FALSE(S.shouldFail(FaultSite::GraphNode));
  EXPECT_EQ(S.injectedCount(), 0u);
  EXPECT_EQ(Inj.totalInjected(), 0u);
}

TEST(FaultInjection, ProbabilityOneAlwaysFires) {
  FaultInjector Inj(/*Seed=*/123, /*Probability=*/1.0);
  FaultStream S = Inj.streamFor("f");
  for (unsigned I = 0; I != 100; ++I)
    EXPECT_TRUE(S.shouldFail(FaultSite::Permutation));
  EXPECT_EQ(S.injectedCount(), 100u);
  EXPECT_EQ(Inj.totalInjected(), 100u);
}

// The cornerstone property: draws are a pure function of
// (seed, function name, site, per-site counter). Two injectors with the
// same seed must produce identical streams — this is what lets the
// oracle's determinism check re-run the pass with a fresh injector and
// still get byte-identical output.
TEST(FaultInjection, StreamsAreDeterministic) {
  FaultInjector A(/*Seed=*/0xfeed, /*Probability=*/0.3);
  FaultInjector B(/*Seed=*/0xfeed, /*Probability=*/0.3);
  EXPECT_EQ(drawSequence(A, "foo", 256), drawSequence(B, "foo", 256));
  EXPECT_EQ(drawSequence(A, "bar", 256), drawSequence(B, "bar", 256));
}

// Streams must not depend on what other streams drew: whether functions
// are vectorized serially or across --jobs workers, each one sees the
// same faults.
TEST(FaultInjection, StreamsAreIndependent) {
  FaultInjector A(/*Seed=*/0xfeed, /*Probability=*/0.3);
  std::vector<bool> FooAlone = drawSequence(A, "foo", 128);

  FaultInjector B(/*Seed=*/0xfeed, /*Probability=*/0.3);
  // Interleave other streams before and between foo's draws.
  drawSequence(B, "bar", 500);
  std::vector<bool> FooInterleaved = drawSequence(B, "foo", 128);
  drawSequence(B, "baz", 500);
  EXPECT_EQ(FooAlone, FooInterleaved);
}

TEST(FaultInjection, DifferentSeedsDiffer) {
  FaultInjector A(/*Seed=*/1, /*Probability=*/0.5);
  FaultInjector B(/*Seed=*/2, /*Probability=*/0.5);
  EXPECT_NE(drawSequence(A, "foo", 512), drawSequence(B, "foo", 512));
}

TEST(FaultInjection, DifferentFunctionsDiffer) {
  FaultInjector Inj(/*Seed=*/7, /*Probability=*/0.5);
  EXPECT_NE(drawSequence(Inj, "foo", 512), drawSequence(Inj, "bar", 512));
}

// The empirical rate should be in the right ballpark — a grossly wrong
// rate would make --inject-faults=P either a no-op or a storm.
TEST(FaultInjection, RateRoughlyMatchesProbability) {
  FaultInjector Inj(/*Seed=*/42, /*Probability=*/0.25);
  FaultStream S = Inj.streamFor("rate");
  unsigned Fired = 0;
  constexpr unsigned N = 10000;
  for (unsigned I = 0; I != N; ++I)
    if (S.shouldFail(FaultSite::LookAhead))
      ++Fired;
  EXPECT_GT(Fired, N / 5);     // > 0.20
  EXPECT_LT(Fired, 3 * N / 10); // < 0.30
}

TEST(FaultInjection, SiteNamesAreStable) {
  EXPECT_STREQ(faultSiteName(FaultSite::GraphNode), "graph-node");
  EXPECT_STREQ(faultSiteName(FaultSite::Permutation), "permutation");
  EXPECT_STREQ(faultSiteName(FaultSite::LookAhead), "look-ahead");
  EXPECT_STREQ(faultSiteName(FaultSite::Verify), "verify");
  EXPECT_STREQ(faultSiteName(FaultSite::IoTornRead), "io-torn-read");
  EXPECT_STREQ(faultSiteName(FaultSite::IoShortWrite), "io-short-write");
  EXPECT_STREQ(faultSiteName(FaultSite::IoDelay), "io-delay");
  EXPECT_STREQ(faultSiteName(FaultSite::IoReset), "io-reset");
  EXPECT_STREQ(faultSiteName(FaultSite::IoEintr), "io-eintr");
}

// Appending the IO sites must not have perturbed the draw sequences of
// the pre-existing sites: old (seed, probability) reproducers name the
// same faults they always did. This pins the first few draws of a known
// stream so an accidental renumbering fails loudly.
TEST(FaultInjection, AppendOnlySitesPreserveOldDraws) {
  FaultInjector A(/*Seed=*/0xfeed, /*Probability=*/0.3);
  FaultInjector B(/*Seed=*/0xfeed, /*Probability=*/0.3);
  FaultStream SA = A.streamFor("pin");
  FaultStream SB = B.streamFor("pin");
  for (unsigned I = 0; I != 256; ++I) {
    // Draws at the original four sites, with IO-site draws interleaved in
    // one stream only: per-site counters mean the extra sites cannot
    // shift the originals.
    FaultSite Old = static_cast<FaultSite>(I % 4);
    bool DrawA = SA.shouldFail(Old);
    SB.shouldFail(static_cast<FaultSite>(4 + (I % 5)));
    bool DrawB = SB.shouldFail(Old);
    EXPECT_EQ(DrawA, DrawB) << "draw " << I;
  }
}

} // namespace
