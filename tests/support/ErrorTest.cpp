//===- tests/support/ErrorTest.cpp - Error/Expected semantics ------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Error.h"

#include <gtest/gtest.h>

using namespace lslp;

namespace {

TEST(Error, DefaultIsSuccess) {
  Error E;
  EXPECT_FALSE(E);
  EXPECT_TRUE(E.isSuccess());
  EXPECT_EQ(E.category(), ErrorCategory::None);
  EXPECT_EQ(E.str(), "success");
}

TEST(Error, MakeCarriesCategoryAndMessage) {
  Error E = Error::make(ErrorCategory::Parse, "unexpected token");
  EXPECT_TRUE(static_cast<bool>(E));
  EXPECT_FALSE(E.isSuccess());
  EXPECT_EQ(E.category(), ErrorCategory::Parse);
  EXPECT_EQ(E.message(), "unexpected token");
  EXPECT_EQ(E.str(), "parse error: unexpected token");
}

TEST(Error, CategoryNamesAreStable) {
  EXPECT_STREQ(errorCategoryName(ErrorCategory::None), "none");
  EXPECT_STREQ(errorCategoryName(ErrorCategory::Parse), "parse");
  EXPECT_STREQ(errorCategoryName(ErrorCategory::Verify), "verify");
  EXPECT_STREQ(errorCategoryName(ErrorCategory::Trap), "trap");
  EXPECT_STREQ(errorCategoryName(ErrorCategory::Budget), "budget");
  EXPECT_STREQ(errorCategoryName(ErrorCategory::IO), "io");
}

// The two bool polarities are easy to mix up: Error is true when it holds
// a FAILURE, Expected is true when it holds a VALUE (LLVM convention).
TEST(Error, BoolPolarity) {
  Error Fail = Error::make(ErrorCategory::IO, "nope");
  Error Ok = Error::success();
  EXPECT_TRUE(static_cast<bool>(Fail));
  EXPECT_FALSE(static_cast<bool>(Ok));

  Expected<int> Value(7);
  Expected<int> Errored(Error::make(ErrorCategory::Budget, "out of gas"));
  EXPECT_TRUE(static_cast<bool>(Value));
  EXPECT_FALSE(static_cast<bool>(Errored));
}

TEST(Expected, ValueAccess) {
  Expected<std::string> E(std::string("hello"));
  ASSERT_TRUE(E.hasValue());
  EXPECT_EQ(*E, "hello");
  EXPECT_EQ(E->size(), 5u);
  E.get() += "!";
  EXPECT_EQ(*E, "hello!");
}

TEST(Expected, ErrorAccess) {
  Expected<int> E(Error::make(ErrorCategory::Trap, "udiv by zero"));
  ASSERT_FALSE(E.hasValue());
  EXPECT_EQ(E.getError().category(), ErrorCategory::Trap);
  Error Taken = E.takeError();
  EXPECT_EQ(Taken.message(), "udiv by zero");
}

TEST(Expected, MoveOnlyPayload) {
  auto Make = []() -> Expected<std::unique_ptr<int>> {
    return std::make_unique<int>(42);
  };
  Expected<std::unique_ptr<int>> E = Make();
  ASSERT_TRUE(static_cast<bool>(E));
  std::unique_ptr<int> P = std::move(*E);
  EXPECT_EQ(*P, 42);
}

TEST(Error, PropagationPattern) {
  auto Inner = [](bool Fail) -> Error {
    if (Fail)
      return Error::make(ErrorCategory::Verify, "bad block");
    return Error::success();
  };
  auto Outer = [&](bool Fail) -> Error {
    if (Error E = Inner(Fail))
      return E;
    return Error::success();
  };
  EXPECT_FALSE(static_cast<bool>(Outer(false)));
  Error E = Outer(true);
  ASSERT_TRUE(static_cast<bool>(E));
  EXPECT_EQ(E.category(), ErrorCategory::Verify);
}

} // namespace
