//===- tests/server/DaemonTest.cpp - End-to-end daemon tests -------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// In-process lslpd: a Daemon running on a background thread, real clients
// on real unix-domain sockets. Covers the serving guarantees DESIGN.md
// promises: responses identical to local runCompileRequest (cold, cached,
// and under 8 concurrent clients), a mid-request disconnect or a crashed
// worker poisons only its own request, crash injection is opt-in, and the
// stats/shutdown control requests work.
//
//===----------------------------------------------------------------------===//

#include "server/ChaosSocket.h"
#include "server/Client.h"
#include "server/CompileService.h"
#include "server/Daemon.h"

#include "ir/Context.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "kernels/Kernels.h"
#include "vectorizer/Config.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

using namespace lslp;
using namespace lslp::server;

namespace {

std::string kernelModuleText(const char *Name) {
  const KernelSpec *Spec = findKernel(Name);
  EXPECT_NE(Spec, nullptr) << Name;
  Context Ctx;
  auto M = buildKernelModule(*Spec, Ctx);
  return moduleToString(*M);
}

CompileRequest makeRequest(std::string ModuleText) {
  CompileRequest Req;
  Req.InputName = "test.ll";
  Req.ModuleText = std::move(ModuleText);
  Req.ConfigJSON = VectorizerConfig::lslp(8).toJSON();
  Req.Report = true;
  return Req;
}

/// Everything but the CacheHit diagnostic bit must match.
void expectSameResponse(const CompileResponse &Got,
                        const CompileResponse &Want) {
  EXPECT_EQ(Got.ExitCode, Want.ExitCode);
  EXPECT_EQ(Got.ErrCategory, Want.ErrCategory);
  EXPECT_EQ(Got.ReportText, Want.ReportText);
  EXPECT_EQ(Got.IRText, Want.IRText);
  EXPECT_EQ(Got.RemarksText, Want.RemarksText);
  EXPECT_EQ(Got.StatsText, Want.StatsText);
  EXPECT_EQ(Got.ErrorText, Want.ErrorText);
}

/// One in-process daemon on a unique socket, served from a background
/// thread. requestShutdown() in TearDown is enough: the run loop polls
/// with a 200ms timeout, so it observes the flag even when idle.
class DaemonTest : public ::testing::Test {
protected:
  void startDaemon(DaemonOptions Opts = DaemonOptions()) {
    static std::atomic<unsigned> Counter{0};
    Opts.SocketPath = "/tmp/lslpd-ut-" + std::to_string(::getpid()) + "-" +
                      std::to_string(Counter.fetch_add(1)) + ".sock";
    D = std::make_unique<Daemon>(std::move(Opts));
    Error E = D->bind();
    ASSERT_FALSE(static_cast<bool>(E)) << E.message();
    Server = std::thread([this] { Served = D->run(); });
  }

  void TearDown() override {
    if (D)
      D->requestShutdown();
    if (Server.joinable())
      Server.join();
  }

  const std::string &socketPath() const { return D->socketPath(); }

  std::unique_ptr<Daemon> D;
  std::thread Server;
  uint64_t Served = 0;
};

TEST_F(DaemonTest, CompileMatchesLocalAndReplaysFromCache) {
  startDaemon();
  CompileRequest Req = makeRequest(kernelModuleText("motivation-multi"));
  CompileResponse Local = runCompileRequest(Req);
  ASSERT_EQ(Local.ExitCode, 0) << Local.ErrorText;
  ASSERT_NE(Local.ReportText.find("vectorized"), std::string::npos);

  DaemonClient Client;
  Error E = Client.connect(socketPath());
  ASSERT_FALSE(static_cast<bool>(E)) << E.message();

  CompileResponse First;
  E = Client.compile(Req, First);
  ASSERT_FALSE(static_cast<bool>(E)) << E.message();
  EXPECT_FALSE(First.CacheHit);
  expectSameResponse(First, Local);

  CompileResponse Second;
  E = Client.compile(Req, Second);
  ASSERT_FALSE(static_cast<bool>(E)) << E.message();
  EXPECT_TRUE(Second.CacheHit); // byte-identical replay, flagged as a hit
  expectSameResponse(Second, Local);
}

TEST_F(DaemonTest, ParseFailuresMatchLocalAndAreNeverCached) {
  startDaemon();
  CompileRequest Req = makeRequest("this is not IR\n");
  CompileResponse Local = runCompileRequest(Req);
  ASSERT_EQ(Local.ExitCode, 1);
  ASSERT_FALSE(Local.ErrorText.empty());

  DaemonClient Client;
  ASSERT_FALSE(static_cast<bool>(Client.connect(socketPath())));
  for (int I = 0; I < 2; ++I) {
    CompileResponse Resp;
    Error E = Client.compile(Req, Resp);
    ASSERT_FALSE(static_cast<bool>(E)) << E.message();
    // Failures are recomputed every time — an error entry must not pin
    // cache capacity.
    EXPECT_FALSE(Resp.CacheHit);
    expectSameResponse(Resp, Local);
  }
}

TEST_F(DaemonTest, EightConcurrentClientsMatchSerialCompiles) {
  startDaemon();

  // Serial ground truth, computed locally before any daemon traffic.
  const char *Kernels[] = {"motivation-multi", "453.vsumsqr", "453.mesh1",
                           "453.calc-z3"};
  constexpr size_t NumKernels = sizeof(Kernels) / sizeof(Kernels[0]);
  std::vector<CompileRequest> Requests;
  std::vector<CompileResponse> Serial;
  for (const char *Name : Kernels) {
    Requests.push_back(makeRequest(kernelModuleText(Name)));
    Serial.push_back(runCompileRequest(Requests.back()));
    ASSERT_EQ(Serial.back().ExitCode, 0) << Name;
  }

  // 8 clients hammer concurrently, each walking the kernels from its own
  // starting offset so rounds mix distinct requests into shared batches.
  constexpr size_t NumClients = 8;
  constexpr size_t RoundsPerClient = 3;
  std::vector<CompileResponse>
      Got(NumClients * RoundsPerClient * NumKernels);
  std::vector<std::string> ConnectErrors(NumClients);
  std::vector<std::thread> Threads;
  for (size_t C = 0; C < NumClients; ++C)
    Threads.emplace_back([&, C] {
      DaemonClient Client;
      if (Error E = Client.connect(socketPath())) {
        ConnectErrors[C] = E.message();
        return;
      }
      for (size_t R = 0; R < RoundsPerClient; ++R)
        for (size_t K = 0; K < NumKernels; ++K) {
          size_t Idx = (C + R + K) % NumKernels;
          size_t Slot = (C * RoundsPerClient + R) * NumKernels + K;
          if (Error E = Client.compile(Requests[Idx], Got[Slot]))
            Got[Slot].ErrorText = "transport error: " + E.message();
        }
    });
  for (std::thread &T : Threads)
    T.join();

  for (size_t C = 0; C < NumClients; ++C)
    ASSERT_TRUE(ConnectErrors[C].empty()) << ConnectErrors[C];
  for (size_t C = 0; C < NumClients; ++C)
    for (size_t R = 0; R < RoundsPerClient; ++R)
      for (size_t K = 0; K < NumKernels; ++K) {
        size_t Idx = (C + R + K) % NumKernels;
        size_t Slot = (C * RoundsPerClient + R) * NumKernels + K;
        SCOPED_TRACE("client " + std::to_string(C) + " round " +
                     std::to_string(R) + " kernel " + Kernels[Idx]);
        expectSameResponse(Got[Slot], Serial[Idx]);
      }
}

/// Connects a raw socket to \p Path (bypassing DaemonClient) so tests can
/// send pathological bytes.
int rawConnect(const std::string &Path) {
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

TEST_F(DaemonTest, MidRequestDisconnectPoisonsOnlyThatConnection) {
  startDaemon();

  // A truncated frame: the length prefix promises 64 bytes, 10 arrive,
  // then the client vanishes.
  int Fd = rawConnect(socketPath());
  ASSERT_GE(Fd, 0);
  unsigned char Prefix[4] = {64, 0, 0, 0};
  ASSERT_EQ(::send(Fd, Prefix, 4, 0), 4);
  ASSERT_EQ(::send(Fd, "0123456789", 10, 0), 10);
  ::close(Fd);

  // A full request whose client disconnects without reading the reply.
  {
    int Fd2 = rawConnect(socketPath());
    ASSERT_GE(Fd2, 0);
    std::string Payload =
        encodeCompileRequest(makeRequest(kernelModuleText("453.vsumsqr")));
    ASSERT_FALSE(static_cast<bool>(writeFrame(Fd2, Payload)));
    ::close(Fd2);
  }

  // The daemon keeps serving fresh clients.
  CompileRequest Req = makeRequest(kernelModuleText("motivation-multi"));
  CompileResponse Local = runCompileRequest(Req);
  DaemonClient Client;
  Error E = Client.connect(socketPath());
  ASSERT_FALSE(static_cast<bool>(E)) << E.message();
  CompileResponse Resp;
  E = Client.compile(Req, Resp);
  ASSERT_FALSE(static_cast<bool>(E)) << E.message();
  expectSameResponse(Resp, Local);
}

TEST_F(DaemonTest, WorkerCrashIsContainedAndNeverCached) {
  DaemonOptions Opts;
  Opts.AllowCrashRequests = true;
  startDaemon(Opts);

  DaemonClient Client;
  ASSERT_FALSE(static_cast<bool>(Client.connect(socketPath())));

  CompileRequest Crash = makeRequest(kernelModuleText("motivation-multi"));
  Crash.InjectCrash = true;
  CompileResponse Resp;
  Error E = Client.compile(Crash, Resp);
  ASSERT_FALSE(static_cast<bool>(E)) << E.message();
  EXPECT_EQ(Resp.ExitCode, 2);
  EXPECT_EQ(Resp.ErrCategory,
            static_cast<uint8_t>(ErrorCategory::Internal));
  EXPECT_FALSE(Resp.CacheHit);
  EXPECT_NE(Resp.ErrorText.find("daemon worker crashed"), std::string::npos)
      << Resp.ErrorText;

  // The daemon survived: the same module now compiles normally, and the
  // crash did not poison the cache.
  CompileRequest Req = Crash;
  Req.InjectCrash = false;
  CompileResponse Local = runCompileRequest(Req);
  CompileResponse After;
  E = Client.compile(Req, After);
  ASSERT_FALSE(static_cast<bool>(E)) << E.message();
  EXPECT_FALSE(After.CacheHit);
  expectSameResponse(After, Local);

  std::string StatsJSON;
  E = Client.stats(StatsJSON);
  ASSERT_FALSE(static_cast<bool>(E)) << E.message();
  EXPECT_NE(StatsJSON.find("\"worker-crashes\":1"), std::string::npos)
      << StatsJSON;
}

TEST_F(DaemonTest, CrashInjectionIsRejectedWithoutOptIn) {
  startDaemon(); // AllowCrashRequests defaults to false
  DaemonClient Client;
  ASSERT_FALSE(static_cast<bool>(Client.connect(socketPath())));

  CompileRequest Crash = makeRequest(kernelModuleText("motivation-multi"));
  Crash.InjectCrash = true;
  CompileResponse Resp;
  Error E = Client.compile(Crash, Resp);
  ASSERT_TRUE(static_cast<bool>(E));
  EXPECT_EQ(E.category(), ErrorCategory::Internal);
  EXPECT_NE(E.message().find("crash injection rejected"), std::string::npos)
      << E.message();

  // The rejection is per-request; the connection stays usable.
  CompileRequest Req = Crash;
  Req.InjectCrash = false;
  DaemonClient Client2;
  ASSERT_FALSE(static_cast<bool>(Client2.connect(socketPath())));
  CompileResponse After;
  E = Client2.compile(Req, After);
  ASSERT_FALSE(static_cast<bool>(E)) << E.message();
  EXPECT_EQ(After.ExitCode, 0);
}

TEST_F(DaemonTest, StatsRequestReportsCountersAndCacheBlock) {
  startDaemon();
  DaemonClient Client;
  ASSERT_FALSE(static_cast<bool>(Client.connect(socketPath())));

  CompileRequest Req = makeRequest(kernelModuleText("motivation-multi"));
  CompileResponse Resp;
  ASSERT_FALSE(static_cast<bool>(Client.compile(Req, Resp)));
  ASSERT_FALSE(static_cast<bool>(Client.compile(Req, Resp)));
  EXPECT_TRUE(Resp.CacheHit);

  std::string JSON;
  Error E = Client.stats(JSON);
  ASSERT_FALSE(static_cast<bool>(E)) << E.message();
  EXPECT_NE(JSON.find("\"compiles\":2"), std::string::npos) << JSON;
  EXPECT_NE(JSON.find("\"worker-crashes\":0"), std::string::npos) << JSON;
  EXPECT_NE(JSON.find("\"cache\":{"), std::string::npos) << JSON;
  EXPECT_NE(JSON.find("\"hits\":1"), std::string::npos) << JSON;
  EXPECT_NE(JSON.find("\"misses\":1"), std::string::npos) << JSON;
}

/// Waits (up to \p TimeoutMs) for the daemon to close \p Fd. Returns true
/// when EOF/reset was observed.
bool waitForPeerClose(int Fd, int TimeoutMs) {
  pollfd P{Fd, POLLIN, 0};
  auto Start = std::chrono::steady_clock::now();
  for (;;) {
    auto Elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - Start)
                       .count();
    if (Elapsed >= TimeoutMs)
      return false;
    int Ready = ::poll(&P, 1, static_cast<int>(TimeoutMs - Elapsed));
    if (Ready < 0 && errno == EINTR)
      continue;
    if (Ready <= 0)
      return false;
    char Buf[64];
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), MSG_DONTWAIT);
    if (N == 0 || (N < 0 && errno != EAGAIN && errno != EINTR))
      return true; // EOF or reset: the daemon reaped us.
  }
}

// The slow-loris attack: a client trickling one byte of a request frame
// per interval must be reaped at the request deadline — and must not
// delay a well-behaved concurrent client by more than normal batching.
TEST_F(DaemonTest, SlowLorisClientIsReapedWithoutDelayingOthers) {
  DaemonOptions Opts;
  Opts.RequestTimeoutMs = 300;
  Opts.IdleTimeoutMs = 0; // isolate the request deadline
  startDaemon(Opts);

  int Loris = rawConnect(socketPath());
  ASSERT_GE(Loris, 0);
  std::atomic<bool> Reaped{false};
  std::thread Attacker([&] {
    // A length prefix promising 4096 bytes, then a trickle that could
    // run for minutes if nobody reaps it.
    unsigned char Prefix[4] = {0, 16, 0, 0};
    ::send(Loris, Prefix, 4, MSG_NOSIGNAL);
    for (int I = 0; I < 200 && !Reaped.load(); ++I) {
      char Byte = 'x';
      if (::send(Loris, &Byte, 1, MSG_NOSIGNAL) <= 0) {
        Reaped.store(true);
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    if (!Reaped.load())
      Reaped.store(waitForPeerClose(Loris, 2000));
  });

  // Meanwhile a normal client keeps compiling successfully.
  CompileRequest Req = makeRequest(kernelModuleText("motivation-multi"));
  CompileResponse Local = runCompileRequest(Req);
  DaemonClient Client;
  ASSERT_FALSE(static_cast<bool>(Client.connect(socketPath())));
  for (int I = 0; I < 3; ++I) {
    CompileResponse Resp;
    Error E = Client.compile(Req, Resp);
    ASSERT_FALSE(static_cast<bool>(E)) << E.message();
    expectSameResponse(Resp, Local);
  }

  Attacker.join();
  ::close(Loris);
  EXPECT_TRUE(Reaped.load()) << "slow-loris connection was never reaped";

  std::string JSON;
  ASSERT_FALSE(static_cast<bool>(Client.stats(JSON)));
  EXPECT_NE(JSON.find("\"deadline-misses\":"), std::string::npos) << JSON;
  EXPECT_EQ(JSON.find("\"deadline-misses\":0"), std::string::npos) << JSON;
}

TEST_F(DaemonTest, IdleConnectionIsReaped) {
  DaemonOptions Opts;
  Opts.IdleTimeoutMs = 150;
  Opts.RequestTimeoutMs = 0; // isolate the idle deadline
  startDaemon(Opts);

  int Fd = rawConnect(socketPath());
  ASSERT_GE(Fd, 0);
  EXPECT_TRUE(waitForPeerClose(Fd, 3000));
  ::close(Fd);

  DaemonClient Client;
  ASSERT_FALSE(static_cast<bool>(Client.connect(socketPath())));
  std::string JSON;
  ASSERT_FALSE(static_cast<bool>(Client.stats(JSON)));
  EXPECT_NE(JSON.find("\"reaped-idle\":1"), std::string::npos) << JSON;
}

// Admission control: with MaxPending=1, two compile frames arriving in
// one round get one real compile and one structured Overloaded shed.
// (Sending both frames in a single send() makes them land in one read
// round deterministically; the shed reply is queued immediately, so it
// arrives before the batched compile response.)
TEST_F(DaemonTest, OverloadShedsWithStructuredError) {
  DaemonOptions Opts;
  Opts.MaxPending = 1;
  startDaemon(Opts);

  CompileRequest Req = makeRequest(kernelModuleText("motivation-multi"));
  CompileResponse Local = runCompileRequest(Req);
  std::string Payload = encodeCompileRequest(Req);
  std::string Frame;
  uint32_t Len = static_cast<uint32_t>(Payload.size());
  for (int Shift = 0; Shift < 32; Shift += 8)
    Frame.push_back(static_cast<char>((Len >> Shift) & 0xff));
  Frame += Payload;
  std::string Two = Frame + Frame;

  int Fd = rawConnect(socketPath());
  ASSERT_GE(Fd, 0);
  ASSERT_EQ(::send(Fd, Two.data(), Two.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(Two.size()));

  std::string First, Second;
  ASSERT_FALSE(static_cast<bool>(readFrame(Fd, First, nullptr, 30000)));
  ASSERT_FALSE(static_cast<bool>(readFrame(Fd, Second, nullptr, 30000)));
  ::close(Fd);

  ASSERT_EQ(peekKind(First), MessageKind::ErrorResponse);
  ErrorResponse Shed;
  std::string Err;
  ASSERT_TRUE(decodeErrorResponse(First, Shed, Err)) << Err;
  EXPECT_EQ(Shed.Category, static_cast<uint8_t>(ErrorCategory::Overloaded));
  EXPECT_NE(Shed.Message.find("overloaded"), std::string::npos)
      << Shed.Message;

  ASSERT_EQ(peekKind(Second), MessageKind::CompileResponse);
  CompileResponse Resp;
  ASSERT_TRUE(decodeCompileResponse(Second, Resp, Err)) << Err;
  expectSameResponse(Resp, Local);

  DaemonClient Client;
  ASSERT_FALSE(static_cast<bool>(Client.connect(socketPath())));
  std::string JSON;
  ASSERT_FALSE(static_cast<bool>(Client.stats(JSON)));
  EXPECT_NE(JSON.find("\"overloaded\":1"), std::string::npos) << JSON;
}

TEST_F(DaemonTest, HealthProbeAnswersInline) {
  startDaemon();
  DaemonClient Client;
  ASSERT_FALSE(static_cast<bool>(Client.connect(socketPath())));
  HealthResponse H;
  Error E = Client.health(H);
  ASSERT_FALSE(static_cast<bool>(E)) << E.message();
  EXPECT_TRUE(H.Ready);
  EXPECT_EQ(H.QueueDepth, 0u);
  EXPECT_EQ(H.DeadlineMisses, 0u);
}

// Chaos, lossless sites only: with torn reads, short writes, delays, and
// EINTR storms shredding every socket call on both ends, every compile
// must still converge to the byte-identical response.
TEST_F(DaemonTest, LosslessChaosStillConvergesByteIdentical) {
  CompileRequest Req = makeRequest(kernelModuleText("motivation-multi"));
  CompileResponse Local = runCompileRequest(Req);

  ChaosSocket::Options CO;
  CO.Seed = 0xc4a05;
  CO.Probability = 0.05;
  CO.Resets = false; // lossless legs only: no connection may be lost
  CO.DelayMicros = 200;
  ScopedChaosSocket Chaos(CO);

  startDaemon();
  DaemonClient Client;
  ASSERT_FALSE(static_cast<bool>(Client.connect(socketPath())));
  for (int I = 0; I < 4; ++I) {
    CompileResponse Resp;
    Error E = Client.compile(Req, Resp);
    ASSERT_FALSE(static_cast<bool>(E)) << E.message();
    expectSameResponse(Resp, Local);
  }
  EXPECT_GT(Chaos.socket().totalInjected(), 0u);

  // Shut the daemon down while chaos is still installed: the drain path
  // must also survive shredded IO.
  ASSERT_FALSE(static_cast<bool>(Client.shutdownDaemon()));
  Server.join();
}

// Full chaos including resets: connections get torn down mid-request, and
// the client's bounded retry absorbs every loss without surfacing an
// error or a wrong answer.
TEST_F(DaemonTest, ResetChaosIsAbsorbedByClientRetry) {
  CompileRequest Req = makeRequest(kernelModuleText("453.vsumsqr"));
  CompileResponse Local = runCompileRequest(Req);

  ChaosSocket::Options CO;
  CO.Seed = 0x5eed;
  CO.Probability = 0.02;
  CO.DelayMicros = 100;
  ScopedChaosSocket Chaos(CO);

  startDaemon();
  ClientOptions Retry;
  Retry.MaxRetries = 10; // resets hit both ends; give the client headroom
  Retry.BackoffBaseMs = 5;
  DaemonClient Client(Retry);
  Error E = Client.connect(socketPath());
  for (int Attempt = 0; E && Attempt < 10; ++Attempt)
    E = Client.connect(socketPath()); // connect() itself can draw a reset
  ASSERT_FALSE(static_cast<bool>(E)) << E.message();
  for (int I = 0; I < 4; ++I) {
    CompileResponse Resp;
    E = Client.compile(Req, Resp);
    ASSERT_FALSE(static_cast<bool>(E)) << E.message();
    expectSameResponse(Resp, Local);
  }
  EXPECT_GT(Chaos.socket().totalInjected(), 0u);
}

TEST_F(DaemonTest, ShutdownRequestDrainsAndUnlinksTheSocket) {
  startDaemon();
  std::string Path = socketPath();

  DaemonClient Client;
  ASSERT_FALSE(static_cast<bool>(Client.connect(Path)));
  CompileRequest Req = makeRequest(kernelModuleText("motivation-multi"));
  CompileResponse Resp;
  ASSERT_FALSE(static_cast<bool>(Client.compile(Req, Resp)));

  Error E = Client.shutdownDaemon();
  ASSERT_FALSE(static_cast<bool>(E)) << E.message();
  Server.join();
  EXPECT_GE(Served, 2u); // the compile + the shutdown frame
  EXPECT_NE(::access(Path.c_str(), F_OK), 0); // socket name removed
}

} // namespace
