//===- tests/server/ClientRetryTest.cpp - Client resilience tests --------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// DaemonClient retry/backoff/deadline behavior against scripted fake
// daemons (raw listeners that misbehave on purpose), plus
// runFuzzSweepViaDaemons failover: a dead daemon's seed range re-shards
// across survivors with byte-identical delivery.
//
//===----------------------------------------------------------------------===//

#include "server/Client.h"
#include "server/Daemon.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace lslp;
using namespace lslp::server;

namespace {

std::string uniqueSocketPath() {
  static std::atomic<unsigned> Counter{0};
  return "/tmp/lslp-crt-" + std::to_string(::getpid()) + "-" +
         std::to_string(Counter.fetch_add(1)) + ".sock";
}

/// A scripted one-connection-at-a-time fake daemon: accepts, then hands
/// each accepted fd to \p Serve until the listener is closed.
class FakeDaemon {
public:
  explicit FakeDaemon(std::function<void(int Fd)> Serve)
      : Path(uniqueSocketPath()), ServeFn(std::move(Serve)) {
    ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un Addr{};
    Addr.sun_family = AF_UNIX;
    std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
    EXPECT_EQ(::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
                     sizeof(Addr)),
              0);
    EXPECT_EQ(::listen(ListenFd, 8), 0);
    Acceptor = std::thread([this] {
      for (;;) {
        int Fd = ::accept(ListenFd, nullptr, nullptr);
        if (Fd < 0)
          return; // listener closed: shut down
        ServeFn(Fd);
        ::close(Fd);
      }
    });
  }

  ~FakeDaemon() {
    // shutdown() unblocks accept() reliably; close() alone may not.
    ::shutdown(ListenFd, SHUT_RDWR);
    ::close(ListenFd);
    if (Acceptor.joinable())
      Acceptor.join();
    ::unlink(Path.c_str());
  }

  const std::string &path() const { return Path; }

private:
  std::string Path;
  int ListenFd = -1;
  std::function<void(int)> ServeFn;
  std::thread Acceptor;
};

CompileResponse cannedResponse() {
  CompileResponse Resp;
  Resp.ExitCode = 0;
  Resp.IRText = "; canned\n";
  return Resp;
}

// An Overloaded shed is an invitation to back off and resend on the same
// connection — the client must deliver the eventual success, and the
// caller never sees the shed.
TEST(ClientRetry, OverloadedShedIsRetriedToSuccess) {
  std::atomic<int> Requests{0};
  FakeDaemon Fake([&](int Fd) {
    std::string Frame;
    while (!readFrame(Fd, Frame)) {
      ++Requests;
      if (Requests.load() == 1) {
        ErrorResponse Shed;
        Shed.Category = static_cast<uint8_t>(ErrorCategory::Overloaded);
        Shed.Message = "daemon overloaded: try later";
        if (writeFrame(Fd, encodeErrorResponse(Shed)))
          return;
      } else {
        if (writeFrame(Fd, encodeCompileResponse(cannedResponse())))
          return;
      }
    }
  });

  ClientOptions Opts;
  Opts.MaxRetries = 2;
  Opts.BackoffBaseMs = 5;
  DaemonClient Client(Opts);
  ASSERT_FALSE(static_cast<bool>(Client.connect(Fake.path())));
  CompileResponse Resp;
  Error E = Client.compile(CompileRequest(), Resp);
  ASSERT_FALSE(static_cast<bool>(E)) << E.message();
  EXPECT_EQ(Resp.IRText, "; canned\n");
  EXPECT_EQ(Requests.load(), 2);
}

// A daemon that drops the connection mid-reply: the client reconnects and
// retries; the second connection serves normally.
TEST(ClientRetry, MidReplyDisconnectTriggersReconnectRetry) {
  std::atomic<int> Connections{0};
  FakeDaemon Fake([&](int Fd) {
    int Conn = ++Connections;
    std::string Frame;
    while (!readFrame(Fd, Frame)) {
      if (Conn == 1) {
        // Half a frame, then hang up.
        char Torn[6] = {100, 0, 0, 0, 'x', 'y'};
        ::send(Fd, Torn, sizeof(Torn), MSG_NOSIGNAL);
        return;
      }
      if (writeFrame(Fd, encodeCompileResponse(cannedResponse())))
        return;
    }
  });

  ClientOptions Opts;
  Opts.MaxRetries = 2;
  Opts.BackoffBaseMs = 5;
  DaemonClient Client(Opts);
  ASSERT_FALSE(static_cast<bool>(Client.connect(Fake.path())));
  CompileResponse Resp;
  Error E = Client.compile(CompileRequest(), Resp);
  ASSERT_FALSE(static_cast<bool>(E)) << E.message();
  EXPECT_EQ(Resp.IRText, "; canned\n");
  EXPECT_EQ(Connections.load(), 2);
}

// With retries exhausted the client reports the transport error rather
// than hanging or looping forever.
TEST(ClientRetry, RetriesAreBounded) {
  std::atomic<int> Connections{0};
  FakeDaemon Fake([&](int Fd) {
    ++Connections;
    std::string Frame;
    (void)readFrame(Fd, Frame); // swallow the request...
    (void)readFrame(Fd, Frame); // ...and stall: each attempt must time out
  });

  ClientOptions Opts;
  Opts.MaxRetries = 2;
  Opts.BackoffBaseMs = 2;
  Opts.RequestTimeoutMs = 150; // each attempt times out quickly
  DaemonClient Client(Opts);
  ASSERT_FALSE(static_cast<bool>(Client.connect(Fake.path())));
  CompileResponse Resp;
  Error E = Client.compile(CompileRequest(), Resp);
  ASSERT_TRUE(static_cast<bool>(E));
  EXPECT_EQ(E.category(), ErrorCategory::IO);
  EXPECT_EQ(Connections.load(), 3); // 1 attempt + 2 retries
}

// Satellite: control requests against a stalled daemon must time out
// cleanly (short deadline) instead of hanging the operator's terminal.
TEST(ClientRetry, ControlRequestsTimeOutAgainstStalledDaemon) {
  FakeDaemon Fake([&](int Fd) {
    std::string Frame;
    (void)readFrame(Fd, Frame); // accept the request...
    (void)readFrame(Fd, Frame); // ...then stall until the client gives up
  });

  ClientOptions Opts;
  Opts.ControlTimeoutMs = 150;
  DaemonClient Client(Opts);
  ASSERT_FALSE(static_cast<bool>(Client.connect(Fake.path())));
  std::string JSON;
  Error E = Client.stats(JSON);
  ASSERT_TRUE(static_cast<bool>(E));
  EXPECT_EQ(E.category(), ErrorCategory::IO);
  EXPECT_NE(E.message().find("timed out"), std::string::npos) << E.message();

  DaemonClient Client2(Opts);
  ASSERT_FALSE(static_cast<bool>(Client2.connect(Fake.path())));
  E = Client2.shutdownDaemon();
  ASSERT_TRUE(static_cast<bool>(E));
  EXPECT_EQ(E.category(), ErrorCategory::IO);
}

/// A real in-process daemon for the failover tests.
struct RealDaemon {
  explicit RealDaemon(DaemonOptions Opts = DaemonOptions()) {
    Opts.SocketPath = uniqueSocketPath();
    D = std::make_unique<Daemon>(std::move(Opts));
    Error E = D->bind();
    EXPECT_FALSE(static_cast<bool>(E)) << E.message();
    Server = std::thread([this] { D->run(); });
  }
  ~RealDaemon() {
    D->requestShutdown();
    if (Server.joinable())
      Server.join();
  }
  const std::string &path() const { return D->socketPath(); }
  std::unique_ptr<Daemon> D;
  std::thread Server;
};

FuzzSweepOptions smallSweep() {
  FuzzSweepOptions Opts;
  Opts.Count = 12;
  Opts.FirstSeed = 100;
  Opts.Jobs = 2;
  return Opts;
}

/// One sweep's delivered outcomes plus its result, flattened so tests can
/// compare runs without juggling Expected's no-default-state invariant.
struct SweepRun {
  std::vector<SeedOutcome> Outcomes;
  int64_t Failures = 0;
  bool OK = false;
  std::string ErrMsg;
};

SweepRun collectSweep(const FuzzSweepOptions &Opts,
                      const std::vector<std::string> &Socks,
                      const ClientOptions &Client) {
  SweepRun Run;
  Expected<int64_t> Result = runFuzzSweepViaDaemons(
      Opts, Socks, [&](const SeedOutcome &O) { Run.Outcomes.push_back(O); },
      Client);
  if ((Run.OK = Result.hasValue()))
    Run.Failures = *Result;
  else
    Run.ErrMsg = Result.getError().message();
  return Run;
}

// The tentpole failover contract: one dead daemon out of two costs
// latency, not the sweep — and the delivered outcome stream is
// byte-identical to an all-healthy run.
TEST(ClientRetry, DeadDaemonRangeFailsOverToSurvivor) {
  RealDaemon Live;
  std::string DeadPath = uniqueSocketPath(); // nothing listens here

  ClientOptions Fast;
  Fast.ConnectTimeoutMs = 500;
  Fast.MaxRetries = 1;
  Fast.BackoffBaseMs = 5;

  SweepRun Healthy = collectSweep(smallSweep(), {Live.path()}, Fast);
  ASSERT_TRUE(Healthy.OK) << Healthy.ErrMsg;

  SweepRun Failover =
      collectSweep(smallSweep(), {Live.path(), DeadPath}, Fast);
  ASSERT_TRUE(Failover.OK) << Failover.ErrMsg;
  EXPECT_EQ(Failover.Failures, Healthy.Failures);

  ASSERT_EQ(Failover.Outcomes.size(), Healthy.Outcomes.size());
  for (size_t I = 0; I != Healthy.Outcomes.size(); ++I) {
    EXPECT_EQ(Failover.Outcomes[I].Seed, Healthy.Outcomes[I].Seed)
        << "outcome " << I;
    EXPECT_EQ(Failover.Outcomes[I].Passed, Healthy.Outcomes[I].Passed)
        << "outcome " << I;
    EXPECT_EQ(Failover.Outcomes[I].Reason, Healthy.Outcomes[I].Reason)
        << "outcome " << I;
  }
}

// Satellite: when a sweep does fail, the error names the daemon socket
// and the seed range it owned — the two facts triage actually needs.
TEST(ClientRetry, SweepErrorNamesSocketAndSeedRange) {
  std::string Dead1 = uniqueSocketPath();
  std::string Dead2 = uniqueSocketPath();

  ClientOptions Fast;
  Fast.ConnectTimeoutMs = 200;
  Fast.MaxRetries = 0;
  Fast.BackoffBaseMs = 1;

  SweepRun Run = collectSweep(smallSweep(), {Dead1, Dead2}, Fast);
  ASSERT_FALSE(Run.OK);
  const std::string &Msg = Run.ErrMsg;
  EXPECT_NE(Msg.find(Dead1), std::string::npos) << Msg;
  EXPECT_NE(Msg.find(Dead2), std::string::npos) << Msg;
  EXPECT_NE(Msg.find("seeds [100, 106)"), std::string::npos) << Msg;
  EXPECT_NE(Msg.find("seeds [106, 112)"), std::string::npos) << Msg;
}

} // namespace
