//===- tests/server/ContentCacheTest.cpp - Compile memoization tests -----------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The daemon's content-hash cache: canonical module hashing (formatting
// noise must not defeat memoization), key construction (every
// response-shaping request field participates, Jobs deliberately does
// not), LRU eviction, and byte-identical replay.
//
//===----------------------------------------------------------------------===//

#include "server/ContentCache.h"

#include <gtest/gtest.h>

using namespace lslp;
using namespace lslp::server;

namespace {

const char *IRSource = "define void @f() {\n"
                       "entry:\n"
                       "  ret void\n"
                       "}\n";

TEST(ContentCache, CanonicalHashIgnoresFormattingNoise) {
  uint64_t Base = hashCanonicalModuleText(IRSource);
  // Comments, trailing whitespace, and blank lines are invisible.
  EXPECT_EQ(hashCanonicalModuleText("; produced by a build system\n"
                                    "define void @f() {   \n"
                                    "entry:\t\n"
                                    "\n"
                                    "  ret void  ; tail comment\n"
                                    "}\n\n"),
            Base);
  // Missing trailing newline is also invisible.
  EXPECT_EQ(hashCanonicalModuleText("define void @f() {\n"
                                    "entry:\n"
                                    "  ret void\n"
                                    "}"),
            Base);
  // Real content changes are not.
  EXPECT_NE(hashCanonicalModuleText("define void @g() {\n"
                                    "entry:\n"
                                    "  ret void\n"
                                    "}\n"),
            Base);
  // Leading (indentation) whitespace is significant — it is not stripped,
  // only trailing runs are.
  EXPECT_NE(hashCanonicalModuleText("define void @f() {\n"
                                    "entry:\n"
                                    "ret void\n"
                                    "}\n"),
            Base);
}

TEST(ContentCache, KeyCoversModuleConfigAndShape) {
  CompileRequest Req;
  Req.ModuleText = IRSource;
  Req.ConfigJSON = R"({"name":"LSLP"})";
  Req.Report = true;
  CacheKey Base = cacheKeyFor(Req);
  EXPECT_TRUE(Base == cacheKeyFor(Req));

  {
    CompileRequest R = Req;
    R.ModuleText = "define void @g() {\nentry:\n  ret void\n}\n";
    EXPECT_FALSE(Base == cacheKeyFor(R));
  }
  {
    CompileRequest R = Req;
    R.ConfigJSON = R"({"name":"SLP"})";
    EXPECT_FALSE(Base == cacheKeyFor(R));
  }
  // Every response-shaping field must split the key.
  {
    CompileRequest R = Req;
    R.Report = false;
    EXPECT_FALSE(Base == cacheKeyFor(R));
  }
  {
    CompileRequest R = Req;
    R.PrintIR = false;
    EXPECT_FALSE(Base == cacheKeyFor(R));
  }
  {
    CompileRequest R = Req;
    R.Vectorize = false;
    EXPECT_FALSE(Base == cacheKeyFor(R));
  }
  {
    CompileRequest R = Req;
    R.EarlyCSE = true;
    EXPECT_FALSE(Base == cacheKeyFor(R));
  }
  {
    CompileRequest R = Req;
    R.Remarks = RemarkWireFormat::Text;
    EXPECT_FALSE(Base == cacheKeyFor(R));
  }
  {
    CompileRequest R = Req;
    R.WantStats = true;
    EXPECT_FALSE(Base == cacheKeyFor(R));
  }
  {
    CompileRequest R = Req;
    R.InputName = "other.ll"; // parse diagnostics embed the name
    EXPECT_FALSE(Base == cacheKeyFor(R));
  }
  {
    CompileRequest R = Req;
    R.FaultSeed = 1;
    EXPECT_FALSE(Base == cacheKeyFor(R));
  }
  {
    CompileRequest R = Req;
    R.FaultProbability = 0.5;
    EXPECT_FALSE(Base == cacheKeyFor(R));
  }
  // Jobs is the one field that must NOT split the key: output is
  // byte-identical for any worker count (the determinism contract), so a
  // 1-job and an 8-job client share entries.
  {
    CompileRequest R = Req;
    R.Jobs = 8;
    EXPECT_TRUE(Base == cacheKeyFor(R));
  }
  // Module formatting noise shares the entry too (canonical hash).
  {
    CompileRequest R = Req;
    R.ModuleText = std::string("; noise\n") + IRSource;
    EXPECT_TRUE(Base == cacheKeyFor(R));
  }
}

CacheKey keyN(uint64_t N) {
  CacheKey K;
  K.ModuleHash = N;
  K.ConfigHash = ~N;
  K.ShapeHash = N * 3;
  return K;
}

CompileResponse responseN(uint64_t N) {
  CompileResponse R;
  R.ReportText = "; response " + std::to_string(N) + "\n";
  R.IRText = "define void @f" + std::to_string(N) + "() {\n}\n";
  return R;
}

TEST(ContentCache, HitReplaysByteIdenticalAndMarksCacheHit) {
  ContentCache Cache(4);
  CacheKey K = keyN(1);
  EXPECT_FALSE(Cache.lookup(K).has_value());
  EXPECT_EQ(Cache.misses(), 1u);

  CompileResponse Stored = responseN(1);
  Stored.RemarksText = "remark line\n";
  Stored.StatsText = "stats\n";
  Stored.ErrorText = "warning-ish\n";
  Cache.insert(K, Stored);
  EXPECT_EQ(Cache.entries(), 1u);

  auto Hit = Cache.lookup(K);
  ASSERT_TRUE(Hit.has_value());
  EXPECT_EQ(Cache.hits(), 1u);
  // Byte-identical replay, with the diagnostic CacheHit bit flipped on.
  EXPECT_TRUE(Hit->CacheHit);
  EXPECT_EQ(Hit->ExitCode, Stored.ExitCode);
  EXPECT_EQ(Hit->ReportText, Stored.ReportText);
  EXPECT_EQ(Hit->IRText, Stored.IRText);
  EXPECT_EQ(Hit->RemarksText, Stored.RemarksText);
  EXPECT_EQ(Hit->StatsText, Stored.StatsText);
  EXPECT_EQ(Hit->ErrorText, Stored.ErrorText);
}

TEST(ContentCache, EvictsLeastRecentlyUsed) {
  ContentCache Cache(3);
  for (uint64_t N = 1; N <= 3; ++N)
    Cache.insert(keyN(N), responseN(N));
  EXPECT_EQ(Cache.entries(), 3u);

  // Touch 1 so 2 becomes the LRU entry, then overflow.
  ASSERT_TRUE(Cache.lookup(keyN(1)).has_value());
  Cache.insert(keyN(4), responseN(4));
  EXPECT_EQ(Cache.entries(), 3u);
  EXPECT_EQ(Cache.evictions(), 1u);

  EXPECT_TRUE(Cache.lookup(keyN(1)).has_value());
  EXPECT_FALSE(Cache.lookup(keyN(2)).has_value()); // evicted
  EXPECT_TRUE(Cache.lookup(keyN(3)).has_value());
  EXPECT_TRUE(Cache.lookup(keyN(4)).has_value());
}

TEST(ContentCache, ReinsertRefreshesInsteadOfDuplicating) {
  // Two workers can miss on the same key concurrently and both insert;
  // the second insert must refresh, not grow the cache or evict.
  ContentCache Cache(2);
  Cache.insert(keyN(1), responseN(1));
  Cache.insert(keyN(1), responseN(7));
  EXPECT_EQ(Cache.entries(), 1u);
  EXPECT_EQ(Cache.evictions(), 0u);
  auto Hit = Cache.lookup(keyN(1));
  ASSERT_TRUE(Hit.has_value());
  EXPECT_EQ(Hit->ReportText, responseN(7).ReportText);
}

TEST(ContentCache, StatsJSONCarriesTheCounters) {
  ContentCache Cache(8);
  Cache.insert(keyN(1), responseN(1));
  (void)Cache.lookup(keyN(1));
  (void)Cache.lookup(keyN(2));
  std::string JSON = Cache.statsJSON();
  EXPECT_NE(JSON.find("\"capacity\":8"), std::string::npos) << JSON;
  EXPECT_NE(JSON.find("\"entries\":1"), std::string::npos) << JSON;
  EXPECT_NE(JSON.find("\"hits\":1"), std::string::npos) << JSON;
  EXPECT_NE(JSON.find("\"misses\":1"), std::string::npos) << JSON;
  EXPECT_NE(JSON.find("\"evictions\":0"), std::string::npos) << JSON;
}

} // namespace
