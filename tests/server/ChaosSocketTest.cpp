//===- tests/server/ChaosSocketTest.cpp - Chaos transport unit tests -----------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The ChaosSocket itself: deterministic schedules, per-site counters, and
// the lossless guarantee — a frame round-trip over a socketpair converges
// byte-identically under full shredding as long as resets stay off.
//
//===----------------------------------------------------------------------===//

#include "server/ChaosSocket.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

using namespace lslp;
using namespace lslp::server;

namespace {

/// A connected AF_UNIX socketpair with RAII close.
struct SocketPair {
  int Fds[2] = {-1, -1};
  SocketPair() {
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  }
  ~SocketPair() {
    ::close(Fds[0]);
    ::close(Fds[1]);
  }
};

/// Drives a fixed single-threaded traffic pattern through \p Sock and
/// returns the per-site injection counts. Same options => same counts.
std::array<uint64_t, NumFaultSites> driveFixedTraffic(ChaosSocket &Sock) {
  SocketPair Pair;
  char Buf[64];
  for (unsigned I = 0; I != 200; ++I) {
    ssize_t N = Sock.sendSome(Pair.Fds[0], "payload-bytes", 13, MSG_NOSIGNAL);
    if (N < 0)
      continue; // injected reset/EINTR: nothing was queued
    ssize_t Got = 0;
    while (Got < N) {
      ssize_t R = Sock.recvSome(Pair.Fds[1], Buf, sizeof(Buf), 0);
      if (R > 0)
        Got += R;
      // Injected failures on the read side: retry; the bytes are queued.
    }
  }
  std::array<uint64_t, NumFaultSites> Counts{};
  for (unsigned I = 0; I != NumFaultSites; ++I)
    Counts[I] = Sock.injectedAt(static_cast<FaultSite>(I));
  return Counts;
}

// Chaos schedules must be reproducible: the whole point of recording
// (seed, probability) in a failing run is that re-running names the same
// faults.
TEST(ChaosSocket, SameSeedSameSchedule) {
  ChaosSocket::Options Opts;
  Opts.Seed = 0xc4a0;
  Opts.Probability = 0.15;
  Opts.Resets = false; // keep the traffic pattern itself deterministic
  Opts.Eintr = false;
  Opts.DelayMicros = 1;

  ChaosSocket A(Opts);
  ChaosSocket B(Opts);
  EXPECT_EQ(driveFixedTraffic(A), driveFixedTraffic(B));
  EXPECT_GT(A.totalInjected(), 0u);
}

TEST(ChaosSocket, DifferentSeedsDiverge) {
  ChaosSocket::Options Opts;
  Opts.Probability = 0.15;
  Opts.Resets = false;
  Opts.Eintr = false;
  Opts.DelayMicros = 1;

  Opts.Seed = 1;
  ChaosSocket A(Opts);
  Opts.Seed = 2;
  ChaosSocket B(Opts);
  EXPECT_NE(driveFixedTraffic(A), driveFixedTraffic(B));
}

// Site switches gate exactly their own fault class, and the counters
// attribute injections to the right site. (Torn reads at p=1 still
// converge because every one-byte recv makes progress — unlike an
// EINTR-only p=1 schedule, which would genuinely livelock a retry loop.)
TEST(ChaosSocket, CountersTrackOnlyEnabledSites) {
  ChaosSocket::Options Opts;
  Opts.Seed = 7;
  Opts.Probability = 1.0;
  Opts.TornReads = true;
  Opts.ShortWrites = false;
  Opts.Delays = false;
  Opts.Resets = false;
  Opts.Eintr = false;

  ChaosSocket Sock(Opts);
  SocketPair Pair;
  ASSERT_EQ(Sock.sendSome(Pair.Fds[0], "abcdef", 6, MSG_NOSIGNAL), 6);
  char Buf[16];
  size_t Got = 0;
  while (Got < 6) {
    ssize_t R = Sock.recvSome(Pair.Fds[1], Buf + Got, sizeof(Buf) - Got, 0);
    ASSERT_EQ(R, 1) << "torn read must deliver exactly one byte";
    Got += static_cast<size_t>(R);
  }
  EXPECT_EQ(std::string(Buf, 6), "abcdef");
  EXPECT_EQ(Sock.injectedAt(FaultSite::IoTornRead), 6u);
  EXPECT_EQ(Sock.injectedAt(FaultSite::IoShortWrite), 0u);
  EXPECT_EQ(Sock.injectedAt(FaultSite::IoDelay), 0u);
  EXPECT_EQ(Sock.injectedAt(FaultSite::IoReset), 0u);
  EXPECT_EQ(Sock.injectedAt(FaultSite::IoEintr), 0u);
  EXPECT_EQ(Sock.totalInjected(), 6u);
}

TEST(ChaosSocket, ResetFailsTheCallWithEconnreset) {
  ChaosSocket::Options Opts;
  Opts.Seed = 7;
  Opts.Probability = 1.0;
  Opts.TornReads = false;
  Opts.ShortWrites = false;
  Opts.Delays = false;
  Opts.Resets = true;
  Opts.Eintr = false;

  ChaosSocket Sock(Opts);
  SocketPair Pair;
  errno = 0;
  EXPECT_EQ(Sock.sendSome(Pair.Fds[0], "x", 1, MSG_NOSIGNAL), -1);
  EXPECT_EQ(errno, ECONNRESET);
  errno = 0;
  char C;
  EXPECT_EQ(Sock.recvSome(Pair.Fds[1], &C, 1, 0), -1);
  EXPECT_EQ(errno, ECONNRESET);
  EXPECT_EQ(Sock.injectedAt(FaultSite::IoReset), 2u);
}

// The lossless contract end to end: writeFrame/readFrame through an
// installed chaos transport (shredding every call, no resets) still move
// a large frame byte-identically — the deadline loops must treat one-byte
// progress and EINTR as progress, not failure.
TEST(ChaosSocket, LosslessChaosFrameRoundTripConverges) {
  ChaosSocket::Options Opts;
  Opts.Seed = 0x10551e55;
  Opts.Probability = 0.2;
  Opts.Resets = false;
  Opts.DelayMicros = 50;

  ScopedChaosSocket Chaos(Opts);

  SocketPair Pair;
  std::string Payload;
  Payload.reserve(128 * 1024);
  for (unsigned I = 0; Payload.size() < 128 * 1024; ++I)
    Payload += static_cast<char>('a' + (I % 26));

  std::thread Writer([&] {
    Error E = writeFrame(Pair.Fds[0], Payload, /*TimeoutMs=*/20000);
    EXPECT_FALSE(static_cast<bool>(E)) << E.message();
  });
  std::string Got;
  Error E = readFrame(Pair.Fds[1], Got, nullptr, /*TimeoutMs=*/20000);
  Writer.join();
  ASSERT_FALSE(static_cast<bool>(E)) << E.message();
  EXPECT_EQ(Got, Payload);
  EXPECT_GT(Chaos.socket().totalInjected(), 0u);
}

} // namespace
