//===- tests/server/ProtocolTest.cpp - lslpd wire protocol tests ---------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Encode/decode round-trips for every message kind, strict trailing-byte
// rejection, and the framed socket IO (clean EOF vs truncation vs
// corrupt length prefix) over a socketpair.
//
//===----------------------------------------------------------------------===//

#include "server/Protocol.h"

#include <gtest/gtest.h>

#include <chrono>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

using namespace lslp;
using namespace lslp::server;

namespace {

TEST(Protocol, CompileRequestRoundTrip) {
  CompileRequest In;
  In.InputName = "<stdin>";
  In.ModuleText = "define void @f() {\nentry:\n  ret void\n}\n";
  In.ConfigJSON = R"({"name":"LSLP"})";
  In.Vectorize = true;
  In.EarlyCSE = true;
  In.Report = true;
  In.PrintIR = false;
  In.VerifyEach = true;
  In.WantStats = true;
  In.StatsJSON = true;
  In.Remarks = RemarkWireFormat::JSON;
  In.Jobs = 7;
  In.FaultProbability = 0.125;
  In.FaultSeed = 0xdeadbeefcafe;
  In.InjectCrash = true;

  std::string Payload = encodeCompileRequest(In);
  EXPECT_EQ(peekKind(Payload), MessageKind::CompileRequest);

  CompileRequest Out;
  std::string Err;
  ASSERT_TRUE(decodeCompileRequest(Payload, Out, Err)) << Err;
  EXPECT_EQ(Out.InputName, In.InputName);
  EXPECT_EQ(Out.ModuleText, In.ModuleText);
  EXPECT_EQ(Out.ConfigJSON, In.ConfigJSON);
  EXPECT_EQ(Out.EarlyCSE, In.EarlyCSE);
  EXPECT_EQ(Out.Report, In.Report);
  EXPECT_EQ(Out.PrintIR, In.PrintIR);
  EXPECT_EQ(Out.VerifyEach, In.VerifyEach);
  EXPECT_EQ(Out.WantStats, In.WantStats);
  EXPECT_EQ(Out.StatsJSON, In.StatsJSON);
  EXPECT_EQ(Out.Remarks, In.Remarks);
  EXPECT_EQ(Out.Jobs, In.Jobs);
  EXPECT_EQ(Out.FaultProbability, In.FaultProbability);
  EXPECT_EQ(Out.FaultSeed, In.FaultSeed);
  EXPECT_EQ(Out.InjectCrash, In.InjectCrash);
}

TEST(Protocol, CompileResponseRoundTrip) {
  CompileResponse In;
  In.ExitCode = 2;
  In.ErrCategory = 6; // Internal
  In.CacheHit = true;
  In.ReportText = "; config LSLP: 3 bundle(s) vectorized\n";
  In.IRText = "define void @f() {\n}\n";
  In.RemarksText = "{\"remark\":\"vectorized\"}\n";
  In.StatsText = "3 lslpd.hits\n";
  In.ErrorText = "lslpc: something\n";

  std::string Payload = encodeCompileResponse(In);
  EXPECT_EQ(peekKind(Payload), MessageKind::CompileResponse);

  CompileResponse Out;
  std::string Err;
  ASSERT_TRUE(decodeCompileResponse(Payload, Out, Err)) << Err;
  EXPECT_EQ(Out.ExitCode, In.ExitCode);
  EXPECT_EQ(Out.ErrCategory, In.ErrCategory);
  EXPECT_EQ(Out.CacheHit, In.CacheHit);
  EXPECT_EQ(Out.ReportText, In.ReportText);
  EXPECT_EQ(Out.IRText, In.IRText);
  EXPECT_EQ(Out.RemarksText, In.RemarksText);
  EXPECT_EQ(Out.StatsText, In.StatsText);
  EXPECT_EQ(Out.ErrorText, In.ErrorText);
}

TEST(Protocol, FuzzMessagesRoundTrip) {
  FuzzRequest In;
  In.Count = 200;
  In.FirstSeed = -5;
  In.Jobs = 4;
  In.Engine = 1;
  In.ParityAll = true;
  In.FaultProbability = 0.5;
  In.FaultSeed = 99;
  In.Strategy = 1;

  std::string Payload = encodeFuzzRequest(In);
  EXPECT_EQ(peekKind(Payload), MessageKind::FuzzRequest);
  FuzzRequest Out;
  std::string Err;
  ASSERT_TRUE(decodeFuzzRequest(Payload, Out, Err)) << Err;
  EXPECT_EQ(Out.Count, In.Count);
  EXPECT_EQ(Out.FirstSeed, In.FirstSeed);
  EXPECT_EQ(Out.Jobs, In.Jobs);
  EXPECT_EQ(Out.Engine, In.Engine);
  EXPECT_EQ(Out.ParityAll, In.ParityAll);
  EXPECT_EQ(Out.FaultProbability, In.FaultProbability);
  EXPECT_EQ(Out.FaultSeed, In.FaultSeed);
  EXPECT_EQ(Out.Strategy, In.Strategy);

  // The engine tag is validated via the shared engineKindFromTag: every
  // real engine (including jit = 2) decodes, one past the end does not.
  In.Engine = 2;
  ASSERT_TRUE(decodeFuzzRequest(encodeFuzzRequest(In), Out, Err)) << Err;
  EXPECT_EQ(Out.Engine, 2);
  In.Engine = 3;
  EXPECT_FALSE(decodeFuzzRequest(encodeFuzzRequest(In), Out, Err));
  EXPECT_EQ(Err, "bad engine/strategy tag");
  In.Engine = 1;

  FuzzResponse RIn;
  SeedOutcome Pass;
  Pass.Seed = 7;
  Pass.Passed = true;
  SeedOutcome Fail;
  Fail.Seed = 8;
  Fail.ConfigName = "LSLP";
  Fail.Reason = "checksum mismatch";
  Fail.ReducedIR = "define void @f() {\n}\n";
  Fail.ReductionSteps = 12;
  Fail.Crashed = true;
  Fail.CrashSignal = "SIGSEGV";
  Fail.ReproPath = "/tmp/crash-8.ll";
  Fail.VerifyFailed = true;
  Fail.VerifyErrors = "use before def\n";
  RIn.Outcomes = {Pass, Fail};

  std::string RPayload = encodeFuzzResponse(RIn);
  EXPECT_EQ(peekKind(RPayload), MessageKind::FuzzResponse);
  FuzzResponse ROut;
  ASSERT_TRUE(decodeFuzzResponse(RPayload, ROut, Err)) << Err;
  ASSERT_EQ(ROut.Outcomes.size(), 2u);
  EXPECT_EQ(ROut.Outcomes[0].Seed, 7u);
  EXPECT_TRUE(ROut.Outcomes[0].Passed);
  EXPECT_EQ(ROut.Outcomes[1].Seed, 8u);
  EXPECT_FALSE(ROut.Outcomes[1].Passed);
  EXPECT_EQ(ROut.Outcomes[1].ConfigName, "LSLP");
  EXPECT_EQ(ROut.Outcomes[1].Reason, "checksum mismatch");
  EXPECT_EQ(ROut.Outcomes[1].ReducedIR, Fail.ReducedIR);
  EXPECT_EQ(ROut.Outcomes[1].ReductionSteps, 12u);
  EXPECT_TRUE(ROut.Outcomes[1].Crashed);
  EXPECT_EQ(ROut.Outcomes[1].CrashSignal, "SIGSEGV");
  EXPECT_EQ(ROut.Outcomes[1].ReproPath, "/tmp/crash-8.ll");
  EXPECT_TRUE(ROut.Outcomes[1].VerifyFailed);
  EXPECT_EQ(ROut.Outcomes[1].VerifyErrors, "use before def\n");
}

TEST(Protocol, ControlMessagesRoundTrip) {
  EXPECT_EQ(peekKind(encodeStatsRequest()), MessageKind::StatsRequest);
  EXPECT_EQ(peekKind(encodeShutdownRequest()), MessageKind::ShutdownRequest);
  EXPECT_EQ(peekKind(encodeShutdownResponse()),
            MessageKind::ShutdownResponse);

  StatsResponse SIn;
  SIn.JSON = R"({"requests":42})";
  StatsResponse SOut;
  std::string Err;
  ASSERT_TRUE(decodeStatsResponse(encodeStatsResponse(SIn), SOut, Err))
      << Err;
  EXPECT_EQ(SOut.JSON, SIn.JSON);

  ErrorResponse EIn;
  EIn.Category = 6;
  EIn.Message = "worker crashed";
  ErrorResponse EOut;
  ASSERT_TRUE(decodeErrorResponse(encodeErrorResponse(EIn), EOut, Err))
      << Err;
  EXPECT_EQ(EOut.Category, EIn.Category);
  EXPECT_EQ(EOut.Message, EIn.Message);
}

TEST(Protocol, DecodersRejectMalformedPayloads) {
  std::string Err;
  CompileRequest Req;
  // Trailing garbage after a well-formed message.
  std::string Payload = encodeCompileRequest(CompileRequest());
  Payload += 'x';
  EXPECT_FALSE(decodeCompileRequest(Payload, Req, Err));

  // Truncated mid-message.
  Payload = encodeCompileRequest(CompileRequest());
  Payload.resize(Payload.size() / 2);
  EXPECT_FALSE(decodeCompileRequest(Payload, Req, Err));

  // Wrong tag byte for the decoder.
  CompileResponse Resp;
  EXPECT_FALSE(
      decodeCompileResponse(encodeCompileRequest(CompileRequest()), Resp,
                            Err));

  // Empty payload.
  EXPECT_FALSE(decodeCompileRequest("", Req, Err));
  EXPECT_EQ(peekKind(""), MessageKind::Invalid);
  EXPECT_EQ(peekKind(std::string(1, '\x7f')), MessageKind::Invalid);
}

/// RAII socketpair for the frame IO tests.
struct SocketPair {
  int Fds[2] = {-1, -1};
  SocketPair() { EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0); }
  ~SocketPair() {
    closeA();
    closeB();
  }
  void closeA() {
    if (Fds[0] >= 0)
      ::close(Fds[0]);
    Fds[0] = -1;
  }
  void closeB() {
    if (Fds[1] >= 0)
      ::close(Fds[1]);
    Fds[1] = -1;
  }
};

TEST(Protocol, FrameRoundTripOverSocket) {
  SocketPair SP;
  std::string Sent = encodeStatsRequest();
  ASSERT_FALSE(writeFrame(SP.Fds[0], Sent));
  std::string Got;
  ASSERT_FALSE(readFrame(SP.Fds[1], Got));
  EXPECT_EQ(Got, Sent);
}

TEST(Protocol, CleanEOFIsDistinguishedFromTruncation) {
  {
    // Peer closes at a frame boundary: clean EOF.
    SocketPair SP;
    SP.closeA();
    std::string Got;
    bool CleanEOF = false;
    Error E = readFrame(SP.Fds[1], Got, &CleanEOF);
    EXPECT_TRUE(static_cast<bool>(E));
    EXPECT_TRUE(CleanEOF);
  }
  {
    // Peer closes mid-frame: truncation, not clean EOF.
    SocketPair SP;
    // Length prefix claims 100 payload bytes; only 10 arrive.
    unsigned char Prefix[4] = {100, 0, 0, 0};
    ASSERT_EQ(::send(SP.Fds[0], Prefix, 4, 0), 4);
    ASSERT_EQ(::send(SP.Fds[0], "0123456789", 10, 0), 10);
    SP.closeA();
    std::string Got;
    bool CleanEOF = true;
    Error E = readFrame(SP.Fds[1], Got, &CleanEOF);
    EXPECT_TRUE(static_cast<bool>(E));
    EXPECT_FALSE(CleanEOF);
  }
}

TEST(Protocol, OversizedLengthPrefixIsRejectedNotAllocated) {
  SocketPair SP;
  // 0xFFFFFFFF far exceeds MaxFramePayload; readFrame must refuse before
  // attempting the allocation.
  unsigned char Prefix[4] = {0xff, 0xff, 0xff, 0xff};
  ASSERT_EQ(::send(SP.Fds[0], Prefix, 4, 0), 4);
  std::string Got;
  Error E = readFrame(SP.Fds[1], Got);
  EXPECT_TRUE(static_cast<bool>(E));
  EXPECT_EQ(E.category(), ErrorCategory::Internal);
}

TEST(Protocol, HealthMessagesRoundTrip) {
  EXPECT_EQ(peekKind(encodeHealthRequest()), MessageKind::HealthRequest);

  HealthResponse In;
  In.Ready = true;
  In.QueueDepth = 17;
  In.DeadlineMisses = 0xdeadbeefULL;
  std::string Payload = encodeHealthResponse(In);
  EXPECT_EQ(peekKind(Payload), MessageKind::HealthResponse);

  HealthResponse Out;
  std::string Err;
  ASSERT_TRUE(decodeHealthResponse(Payload, Out, Err)) << Err;
  EXPECT_EQ(Out.Ready, In.Ready);
  EXPECT_EQ(Out.QueueDepth, In.QueueDepth);
  EXPECT_EQ(Out.DeadlineMisses, In.DeadlineMisses);

  // Trailing garbage is rejected like every other message.
  Payload += 'x';
  EXPECT_FALSE(decodeHealthResponse(Payload, Out, Err));
}

/// Frames a payload the way writeFrame does: u32 LE length + bytes.
std::string frameBytes(std::string_view Payload) {
  std::string Frame;
  uint32_t Len = static_cast<uint32_t>(Payload.size());
  for (int Shift = 0; Shift < 32; Shift += 8)
    Frame.push_back(static_cast<char>((Len >> Shift) & 0xff));
  Frame.append(Payload);
  return Frame;
}

// The incremental decoder behind the daemon's non-blocking read path:
// feeding a frame one byte at a time — worst-case shredding, splitting
// inside the length prefix — must yield exactly the original payload.
TEST(Protocol, FrameAssemblerReassemblesByteAtATime) {
  std::string Payload = encodeStatsRequest();
  std::string Frame = frameBytes(Payload);

  FrameAssembler Asm;
  std::string Got;
  for (size_t I = 0; I != Frame.size(); ++I) {
    EXPECT_FALSE(Asm.next(Got)) << "frame completed early at byte " << I;
    Asm.feed(&Frame[I], 1);
    // After 1..3 bytes we are inside the length prefix — still mid-frame.
    EXPECT_TRUE(Asm.midFrame());
  }
  ASSERT_TRUE(Asm.next(Got));
  EXPECT_EQ(Got, Payload);
  EXPECT_FALSE(Asm.midFrame());
  EXPECT_EQ(Asm.bufferedBytes(), 0u);
  EXPECT_FALSE(Asm.corrupt());
}

// Several frames delivered in one read, with the tail split mid-prefix:
// next() drains the complete ones and midFrame() reports the remainder.
TEST(Protocol, FrameAssemblerHandlesCoalescedAndSplitFrames) {
  std::string P1 = encodeStatsRequest();
  std::string P2 = encodeShutdownRequest();
  std::string P3 = encodeHealthRequest();
  std::string Wire = frameBytes(P1) + frameBytes(P2) + frameBytes(P3);

  // Deliver everything except the last 2 bytes (mid-payload of P3).
  FrameAssembler Asm;
  Asm.feed(Wire.data(), Wire.size() - 2);
  std::string Got;
  ASSERT_TRUE(Asm.next(Got));
  EXPECT_EQ(Got, P1);
  ASSERT_TRUE(Asm.next(Got));
  EXPECT_EQ(Got, P2);
  EXPECT_FALSE(Asm.next(Got));
  EXPECT_TRUE(Asm.midFrame());

  Asm.feed(Wire.data() + Wire.size() - 2, 2);
  ASSERT_TRUE(Asm.next(Got));
  EXPECT_EQ(Got, P3);
  EXPECT_FALSE(Asm.midFrame());
}

TEST(Protocol, FrameAssemblerFlagsOversizedPrefixAsCorrupt) {
  FrameAssembler Asm;
  char Prefix[4] = {'\xff', '\xff', '\xff', '\xff'};
  Asm.feed(Prefix, 4);
  std::string Got;
  EXPECT_FALSE(Asm.next(Got));
  EXPECT_TRUE(Asm.corrupt());
  // A corrupt stream never resynchronizes, no matter what arrives next.
  std::string Frame = frameBytes(encodeStatsRequest());
  Asm.feed(Frame.data(), Frame.size());
  EXPECT_FALSE(Asm.next(Got));
  EXPECT_TRUE(Asm.corrupt());
}

// Deadline-aware reads: a peer that trickles one byte per interval but
// finishes within the budget succeeds; a peer that stalls mid-frame makes
// readFrame fail with a "timed out" IO error instead of hanging forever.
TEST(Protocol, DeadlineReadSurvivesTrickleButCatchesStall) {
  {
    SocketPair SP;
    std::string Frame = frameBytes(encodeShutdownRequest());
    std::thread Writer([&] {
      for (char C : Frame) {
        ::send(SP.Fds[0], &C, 1, MSG_NOSIGNAL);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
    std::string Got;
    Error E = readFrame(SP.Fds[1], Got, nullptr, /*TimeoutMs=*/5000);
    Writer.join();
    EXPECT_FALSE(static_cast<bool>(E)) << E.message();
    EXPECT_EQ(Got, encodeShutdownRequest());
  }
  {
    SocketPair SP;
    // Half a length prefix, then silence: the deadline must fire.
    ASSERT_EQ(::send(SP.Fds[0], "\x08\x00", 2, 0), 2);
    std::string Got;
    Error E = readFrame(SP.Fds[1], Got, nullptr, /*TimeoutMs=*/100);
    ASSERT_TRUE(static_cast<bool>(E));
    EXPECT_EQ(E.category(), ErrorCategory::IO);
    EXPECT_NE(E.message().find("timed out"), std::string::npos)
        << E.message();
  }
}

// Deadline-aware writes: a peer that never reads eventually fills both
// socket buffers; writeFrame must then fail with a timeout instead of
// blocking the caller forever.
TEST(Protocol, DeadlineWriteCatchesStalledReader) {
  SocketPair SP;
  // Shrink the send buffer so the test fills it quickly.
  int Small = 4096;
  ::setsockopt(SP.Fds[0], SOL_SOCKET, SO_SNDBUF, &Small, sizeof(Small));
  std::string Huge(4u << 20, 'x');
  Error E = writeFrame(SP.Fds[0], Huge, /*TimeoutMs=*/150);
  ASSERT_TRUE(static_cast<bool>(E));
  EXPECT_EQ(E.category(), ErrorCategory::IO);
  EXPECT_NE(E.message().find("timed out"), std::string::npos) << E.message();
}

// Short-written replies on the daemon side of a socketpair: writeFrame
// pushing through a tiny send buffer while the reader drains byte-at-a-
// time must still converge to the identical frame.
TEST(Protocol, ShortWritesAndTornReadsStillConverge) {
  SocketPair SP;
  int Small = 2048;
  ::setsockopt(SP.Fds[0], SOL_SOCKET, SO_SNDBUF, &Small, sizeof(Small));
  CompileResponse Resp;
  Resp.IRText.assign(256 * 1024, 'v');
  std::string Payload = encodeCompileResponse(Resp);
  std::thread Writer(
      [&] { EXPECT_FALSE(writeFrame(SP.Fds[0], Payload, 10000)); });
  std::string Got;
  Error E = readFrame(SP.Fds[1], Got, nullptr, 10000);
  Writer.join();
  ASSERT_FALSE(static_cast<bool>(E)) << E.message();
  EXPECT_EQ(Got, Payload);
}

} // namespace
