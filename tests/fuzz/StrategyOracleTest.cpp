//===- tests/fuzz/StrategyOracleTest.cpp - Strategy-differential oracle --------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The strategy axis of the differential oracle (OracleOptions::
// SweepStrategies): every greedy config is re-run with global packing and
// must (a) satisfy every standing invariant — verification, determinism,
// bit-exact execution on both engines — and (b) never commit a pack set
// with a higher accepted static cost than greedy's.
//
// The curated modules below are the shapes where greedy provably picks
// the worse pack set: the commutative operands are crossed between lanes
// but hidden under a same-opcode layer (shifts, constant-muls,
// constant-adds), so vanilla SLP's depth-0 opcode scoring ties on every
// alternative and keeps the crossed order; the resulting gathers push the
// graph cost to >= 0 — while a single lane-1 swap, found by the pack-set
// solver, lines the loads up consecutively one level down.
//
//===----------------------------------------------------------------------===//

#include "costmodel/TargetTransformInfo.h"
#include "fuzz/DifferentialOracle.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "parser/Parser.h"
#include "vectorizer/SLPVectorizerPass.h"

#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

using namespace lslp;

namespace {

/// Paper Figure 2: the crossed loads hide under same-opcode shifts, so
/// even the shift layer ties under opcode-only scoring.
const char *CrossedAndModule = R"(module "crossed-and"
global @A = [8 x i64]
global @B = [8 x i64]
global @C = [8 x i64]

define void @f(i64 %i) {
entry:
  %i1 = add i64 %i, 1
  %pb0 = gep i64, ptr @B, i64 %i
  %pc0 = gep i64, ptr @C, i64 %i
  %pb1 = gep i64, ptr @B, i64 %i1
  %pc1 = gep i64, ptr @C, i64 %i1
  %b0 = load i64, ptr %pb0
  %c0 = load i64, ptr %pc0
  %c1 = load i64, ptr %pc1
  %b1 = load i64, ptr %pb1
  %sh0l = shl i64 %b0, 1
  %sh0r = shl i64 %c0, 2
  %sh1l = shl i64 %c1, 3
  %sh1r = shl i64 %b1, 4
  %and0 = and i64 %sh0l, %sh0r
  %and1 = and i64 %sh1l, %sh1r
  %pa0 = gep i64, ptr @A, i64 %i
  %pa1 = gep i64, ptr @A, i64 %i1
  store i64 %and0, ptr %pa0
  store i64 %and1, ptr %pa1
  ret void
}
)";

/// Same trap, different opcodes: the crossed loads hide under
/// constant-multiplies (all the same opcode, so greedy's scoring ties at
/// depth 0), feeding a commutative or.
const char *CrossedOrModule = R"(module "crossed-or"
global @A = [8 x i64]
global @B = [8 x i64]
global @C = [8 x i64]

define void @f(i64 %i) {
entry:
  %i1 = add i64 %i, 1
  %pb0 = gep i64, ptr @B, i64 %i
  %pc0 = gep i64, ptr @C, i64 %i
  %pb1 = gep i64, ptr @B, i64 %i1
  %pc1 = gep i64, ptr @C, i64 %i1
  %b0 = load i64, ptr %pb0
  %c0 = load i64, ptr %pc0
  %c1 = load i64, ptr %pc1
  %b1 = load i64, ptr %pb1
  %m0l = mul i64 %b0, 3
  %m0r = mul i64 %c0, 5
  %m1l = mul i64 %c1, 7
  %m1r = mul i64 %b1, 9
  %or0 = or i64 %m0l, %m0r
  %or1 = or i64 %m1l, %m1r
  %pa0 = gep i64, ptr @A, i64 %i
  %pa1 = gep i64, ptr @A, i64 %i1
  store i64 %or0, ptr %pa0
  store i64 %or1, ptr %pa1
  ret void
}
)";

/// Crossed loads under constant-adds, feeding a commutative mul.
const char *CrossedMulModule = R"(module "crossed-mul"
global @A = [8 x i64]
global @B = [8 x i64]
global @C = [8 x i64]

define void @f(i64 %i) {
entry:
  %i1 = add i64 %i, 1
  %pb0 = gep i64, ptr @B, i64 %i
  %pc0 = gep i64, ptr @C, i64 %i
  %pb1 = gep i64, ptr @B, i64 %i1
  %pc1 = gep i64, ptr @C, i64 %i1
  %b0 = load i64, ptr %pb0
  %c0 = load i64, ptr %pc0
  %c1 = load i64, ptr %pc1
  %b1 = load i64, ptr %pb1
  %a0l = add i64 %b0, 11
  %a0r = add i64 %c0, 13
  %a1l = add i64 %c1, 17
  %a1r = add i64 %b1, 19
  %m0 = mul i64 %a0l, %a0r
  %m1 = mul i64 %a1l, %a1r
  %pa0 = gep i64, ptr @A, i64 %i
  %pa1 = gep i64, ptr @A, i64 %i1
  store i64 %m0, ptr %pa0
  store i64 %m1, ptr %pa1
  ret void
}
)";

const char *CuratedModules[] = {CrossedAndModule, CrossedOrModule,
                                CrossedMulModule};

/// Runs the vanilla-SLP config with the given strategy and returns the
/// module report.
ModuleReport runSLP(const std::string &IRText,
                    VectorizerConfig::PackingStrategyKind Strategy) {
  Context Ctx;
  std::string Err;
  std::unique_ptr<Module> M = parseModule(IRText, Ctx, Err);
  EXPECT_TRUE(M) << Err;
  VectorizerConfig Config = VectorizerConfig::slp();
  Config.Strategy = Strategy;
  SkylakeTTI TTI;
  SLPVectorizerPass Pass(Config, TTI);
  return Pass.runOnModule(*M);
}

std::vector<std::filesystem::path> corpusFiles() {
  std::vector<std::filesystem::path> Files;
  for (const auto &Entry :
       std::filesystem::directory_iterator(LSLP_FUZZ_CORPUS_DIR))
    if (Entry.path().extension() == ".lslp")
      Files.push_back(Entry.path());
  std::sort(Files.begin(), Files.end());
  return Files;
}

TEST(StrategyOracle, GlobalCommitsStrictlyCheaperPackSets) {
  // The acceptance bar for the strategy: on each curated module the
  // global solver must commit a strictly cheaper pack set than greedy —
  // here greedy commits nothing at all (the crossed bundle costs >= 0).
  for (const char *IRText : CuratedModules) {
    ModuleReport Greedy =
        runSLP(IRText, VectorizerConfig::PackingStrategyKind::Greedy);
    ModuleReport Global =
        runSLP(IRText, VectorizerConfig::PackingStrategyKind::Global);
    EXPECT_EQ(Greedy.numAccepted(), 0u) << IRText;
    EXPECT_EQ(Global.numAccepted(), 1u) << IRText;
    EXPECT_LT(Global.acceptedCost(), Greedy.acceptedCost()) << IRText;
  }
}

TEST(StrategyOracle, CuratedModulesPassTheFullSweep) {
  // Bit-identical execution on BOTH engines for every config, greedy and
  // global twins alike, plus the global<=greedy cost invariant.
  OracleOptions Opts;
  Opts.CheckEngineParity = true;
  ASSERT_TRUE(Opts.SweepStrategies); // the axis is on by default
  DifferentialOracle Oracle(Opts);
  for (const char *IRText : CuratedModules) {
    OracleVerdict V = Oracle.check(IRText);
    EXPECT_TRUE(V.Passed) << "[" << V.ConfigName << "]: " << V.Reason;
  }
}

TEST(StrategyOracle, GlobalOnlySweepPasses) {
  // A sweep whose configs are already Global must run each exactly once
  // (the axis only twins Greedy configs) and still pass every invariant.
  OracleOptions Opts;
  for (VectorizerConfig C : DifferentialOracle::defaultConfigs()) {
    C.Strategy = VectorizerConfig::PackingStrategyKind::Global;
    C.Name += "-global";
    Opts.Configs.push_back(std::move(C));
  }
  DifferentialOracle Oracle(Opts);
  for (const char *IRText : CuratedModules) {
    OracleVerdict V = Oracle.check(IRText);
    EXPECT_TRUE(V.Passed) << "[" << V.ConfigName << "]: " << V.Reason;
  }
}

TEST(StrategyOracle, CappedSolverDegeneratesToGreedy) {
  // MaxSolverCandidates=1 leaves the solver exactly one evaluation — the
  // empty (greedy) plan — so the global twin must commit the identical
  // pack set: equal cost (the invariant allows equality) and bit-exact
  // output. A capped search is a smaller search, never a wrong one.
  OracleOptions Opts;
  VectorizerConfig C = VectorizerConfig::slp();
  C.MaxSolverCandidates = 1;
  Opts.Configs.push_back(C);
  DifferentialOracle Oracle(Opts);
  for (const char *IRText : CuratedModules) {
    OracleVerdict V = Oracle.check(IRText);
    EXPECT_TRUE(V.Passed) << "[" << V.ConfigName << "]: " << V.Reason;
  }
}

TEST(StrategyOracle, CorpusReplaysUnderStrategyAxis) {
  // Every minimized reproducer in the corpus replays under the strategy
  // axis: the default sweep now twins each config, and this test
  // additionally pins the whole sweep to Global (the CI sanitizer mode)
  // so a solver-only regression cannot hide behind the greedy runs.
  OracleOptions Opts;
  for (VectorizerConfig C : DifferentialOracle::defaultConfigs()) {
    C.Strategy = VectorizerConfig::PackingStrategyKind::Global;
    C.Name += "-global";
    Opts.Configs.push_back(std::move(C));
  }
  DifferentialOracle Oracle(Opts);
  for (const std::filesystem::path &Path : corpusFiles()) {
    std::ifstream In(Path);
    ASSERT_TRUE(In.good()) << Path;
    std::ostringstream SS;
    SS << In.rdbuf();
    OracleVerdict V = Oracle.check(SS.str());
    EXPECT_TRUE(V.Passed) << Path.filename() << " [" << V.ConfigName
                          << "]: " << V.Reason << "\n"
                          << V.VectorizedIR;
  }
}

TEST(StrategyOracle, StrategySweepSurvivesFaultInjection) {
  // Faults hit the solver's extra charge sites too; exhausted runs must
  // fall back to clean scalar behavior and be excluded from the cost
  // comparison rather than tripping a false "regression".
  OracleOptions Opts;
  Opts.FaultProbability = 0.2;
  Opts.FaultSeed = 23;
  DifferentialOracle Oracle(Opts);
  for (const char *IRText : CuratedModules) {
    OracleVerdict V = Oracle.check(IRText);
    EXPECT_TRUE(V.Passed) << "[" << V.ConfigName << "]: " << V.Reason;
  }
}

} // namespace
