//===- tests/fuzz/ReducerTest.cpp - Test-case reducer tests --------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Proves the shrinking loop end-to-end: a deliberate miscompile is
// injected behind the oracle's test-only hook, and the reducer must strip
// the surrounding noise (unrelated store groups, control flow, unused
// globals) while the minimized module keeps failing.
//
//===----------------------------------------------------------------------===//

#include "fuzz/DifferentialOracle.h"
#include "fuzz/Reducer.h"
#include "ir/BasicBlock.h"
#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/Instruction.h"
#include "ir/Module.h"
#include "support/Casting.h"

#include <algorithm>
#include <gtest/gtest.h>

using namespace lslp;

namespace {

/// The miscompile payload is the pair of subs feeding @O. Everything else
/// (the diamond, the @N junk group, the unused @U global) is noise the
/// reducer should strip.
const char *NoisyModule = R"(module "noisy"
global @A = [8 x i64]
global @B = [8 x i64]
global @O = [8 x i64]
global @N = [8 x i64]
global @U = [8 x i64]

define void @f() {
entry:
  %pn0 = gep i64, ptr @N, i64 0
  %pn1 = gep i64, ptr @N, i64 1
  %n0 = load i64, ptr %pn0
  %n1 = load i64, ptr %pn1
  %j0 = add i64 %n0, 3
  %j1 = add i64 %n1, 3
  %pn4 = gep i64, ptr @N, i64 4
  %pn5 = gep i64, ptr @N, i64 5
  store i64 %j0, ptr %pn4
  store i64 %j1, ptr %pn5
  %c = icmp slt i64 %n0, 100
  br i1 %c, label %then, label %join

then:
  %pn6 = gep i64, ptr @N, i64 6
  %x = mul i64 %n1, 7
  store i64 %x, ptr %pn6
  br label %join

join:
  %pa0 = gep i64, ptr @A, i64 0
  %pa1 = gep i64, ptr @A, i64 1
  %pb0 = gep i64, ptr @B, i64 0
  %pb1 = gep i64, ptr @B, i64 1
  %a0 = load i64, ptr %pa0
  %a1 = load i64, ptr %pa1
  %b0 = load i64, ptr %pb0
  %b1 = load i64, ptr %pb1
  %d0 = sub i64 %a0, %b0
  %d1 = sub i64 %a1, %b1
  %po0 = gep i64, ptr @O, i64 0
  %po1 = gep i64, ptr @O, i64 1
  store i64 %d0, ptr %po0
  store i64 %d1, ptr %po1
  ret void
}
)";

void swapSubOperands(Module &M) {
  for (const auto &F : M.functions())
    for (auto BIt = F->begin(); BIt != F->end(); ++BIt)
      for (const auto &I : **BIt)
        if (auto *Bin = dyn_cast<BinaryOperator>(I.get()))
          if (Bin->getOpcode() == ValueID::Sub ||
              Bin->getOpcode() == ValueID::FSub) {
            Value *L = Bin->getLHS(), *R = Bin->getRHS();
            Bin->setOperand(0, R);
            Bin->setOperand(1, L);
          }
}

size_t countLines(const std::string &S) {
  return static_cast<size_t>(std::count(S.begin(), S.end(), '\n'));
}

TEST(Reducer, ShrinksInjectedMiscompile) {
  OracleOptions Opts;
  Opts.AfterPassHook = swapSubOperands;
  DifferentialOracle Oracle(Opts);
  ASSERT_FALSE(Oracle.check(NoisyModule).Passed)
      << "the injected miscompile must fail before reduction";

  Reducer Shrinker(
      [&](const std::string &Text) { return !Oracle.check(Text).Passed; });
  Reducer::Result R = Shrinker.reduce(NoisyModule);

  EXPECT_TRUE(R.InitiallyFailing);
  EXPECT_GT(R.StepsAdopted, 0u);
  EXPECT_GT(R.CandidatesTried, 0u);
  EXPECT_LT(countLines(R.IRText), countLines(NoisyModule))
      << "reducer made no progress:\n"
      << R.IRText;

  // The reproducer still fails, and for the same reason: it must keep a
  // sub whose operand swap is observable.
  OracleVerdict V = Oracle.check(R.IRText);
  EXPECT_FALSE(V.Passed);
  EXPECT_NE(R.IRText.find("sub"), std::string::npos) << R.IRText;

  // The pure noise must be gone: the unused global, the junk group's
  // destination window, and the diamond.
  EXPECT_EQ(R.IRText.find("@U"), std::string::npos) << R.IRText;
  EXPECT_EQ(R.IRText.find("@N"), std::string::npos) << R.IRText;
  EXPECT_EQ(R.IRText.find("br i1"), std::string::npos) << R.IRText;
}

TEST(Reducer, ReportsPassingInputs) {
  DifferentialOracle Oracle;
  Reducer Shrinker(
      [&](const std::string &Text) { return !Oracle.check(Text).Passed; });
  Reducer::Result R = Shrinker.reduce(NoisyModule);
  EXPECT_FALSE(R.InitiallyFailing);
  EXPECT_EQ(R.IRText, NoisyModule);
  EXPECT_EQ(R.StepsAdopted, 0u);
}

TEST(Reducer, ReductionIsDeterministic) {
  OracleOptions Opts;
  Opts.AfterPassHook = swapSubOperands;
  DifferentialOracle Oracle(Opts);
  Reducer Shrinker(
      [&](const std::string &Text) { return !Oracle.check(Text).Passed; });
  Reducer::Result A = Shrinker.reduce(NoisyModule);
  Reducer::Result B = Shrinker.reduce(NoisyModule);
  EXPECT_EQ(A.IRText, B.IRText);
  EXPECT_EQ(A.StepsAdopted, B.StepsAdopted);
}

} // namespace
