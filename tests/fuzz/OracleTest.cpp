//===- tests/fuzz/OracleTest.cpp - DifferentialOracle tests --------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "fuzz/DifferentialOracle.h"
#include "fuzz/ModuleGenerator.h"
#include "ir/BasicBlock.h"
#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/Instruction.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

using namespace lslp;

namespace {

/// A module whose lanes subtract loads: operand order matters, so the
/// miscompile hook below provably changes results.
const char *SubModule = R"(module "sub"
global @A = [8 x i64]
global @B = [8 x i64]
global @O = [8 x i64]

define void @f() {
entry:
  %pa0 = gep i64, ptr @A, i64 0
  %pa1 = gep i64, ptr @A, i64 1
  %pb0 = gep i64, ptr @B, i64 0
  %pb1 = gep i64, ptr @B, i64 1
  %a0 = load i64, ptr %pa0
  %a1 = load i64, ptr %pa1
  %b0 = load i64, ptr %pb0
  %b1 = load i64, ptr %pb1
  %d0 = sub i64 %a0, %b0
  %d1 = sub i64 %a1, %b1
  %po0 = gep i64, ptr @O, i64 0
  %po1 = gep i64, ptr @O, i64 1
  store i64 %d0, ptr %po0
  store i64 %d1, ptr %po1
  ret void
}
)";

/// Swaps the operands of every (scalar or vector) Sub: a deliberate
/// miscompile, used to prove the oracle detects real bugs.
void swapSubOperands(Module &M) {
  for (const auto &F : M.functions())
    for (auto BIt = F->begin(); BIt != F->end(); ++BIt)
      for (const auto &I : **BIt)
        if (auto *Bin = dyn_cast<BinaryOperator>(I.get()))
          if (Bin->getOpcode() == ValueID::Sub ||
              Bin->getOpcode() == ValueID::FSub) {
            Value *L = Bin->getLHS(), *R = Bin->getRHS();
            Bin->setOperand(0, R);
            Bin->setOperand(1, L);
          }
}

TEST(DifferentialOracle, PassesOnGeneratedModules) {
  DifferentialOracle Oracle;
  for (uint64_t Seed = 0; Seed != 30; ++Seed) {
    Context Ctx;
    ModuleGenerator Gen(Seed);
    std::unique_ptr<Module> M = Gen.generate(Ctx);
    OracleVerdict V = Oracle.check(moduleToString(*M));
    EXPECT_TRUE(V.Passed) << "seed " << Seed << " [" << V.ConfigName
                          << "]: " << V.Reason;
  }
}

TEST(DifferentialOracle, PassesOnHandWrittenModule) {
  DifferentialOracle Oracle;
  OracleVerdict V = Oracle.check(SubModule);
  EXPECT_TRUE(V.Passed) << "[" << V.ConfigName << "]: " << V.Reason;
}

TEST(DifferentialOracle, DetectsInjectedMiscompile) {
  OracleOptions Opts;
  Opts.AfterPassHook = swapSubOperands;
  DifferentialOracle Oracle(Opts);
  OracleVerdict V = Oracle.check(SubModule);
  ASSERT_FALSE(V.Passed);
  EXPECT_NE(V.Reason.find("memory mismatch"), std::string::npos) << V.Reason;
  EXPECT_FALSE(V.ConfigName.empty());
  EXPECT_FALSE(V.VectorizedIR.empty());
}

TEST(DifferentialOracle, ReportsParseErrors) {
  DifferentialOracle Oracle;
  OracleVerdict V = Oracle.check("this is not a module");
  ASSERT_FALSE(V.Passed);
  EXPECT_NE(V.Reason.find("parse error"), std::string::npos) << V.Reason;
}

TEST(DifferentialOracle, PassesUnderFaultInjection) {
  // With faults injected at budget sites, every invariant must still hold:
  // clean fallback (bit-exact scalar behavior), a budget-exhausted remark
  // whenever a fault fired, and byte-identical determinism re-runs (the
  // oracle rebuilds the injector from the same seed for the second run).
  OracleOptions Opts;
  Opts.FaultProbability = 0.2;
  Opts.FaultSeed = 17;
  DifferentialOracle Oracle(Opts);
  for (uint64_t Seed = 0; Seed != 10; ++Seed) {
    Context Ctx;
    ModuleGenerator Gen(Seed);
    std::unique_ptr<Module> M = Gen.generate(Ctx);
    OracleVerdict V = Oracle.check(moduleToString(*M));
    EXPECT_TRUE(V.Passed) << "seed " << Seed << " [" << V.ConfigName
                          << "]: " << V.Reason;
  }
}

TEST(DifferentialOracle, CertainFaultInjectionStillPasses) {
  // Probability 1: every function is abandoned in every config, so the
  // "vectorized" output is the scalar input — trivially equivalent, and
  // the remark invariant must see the budget-exhausted diagnostics.
  OracleOptions Opts;
  Opts.FaultProbability = 1.0;
  DifferentialOracle Oracle(Opts);
  OracleVerdict V = Oracle.check(SubModule);
  EXPECT_TRUE(V.Passed) << "[" << V.ConfigName << "]: " << V.Reason;
}

TEST(DifferentialOracle, DefaultSweepCoversKeyConfigs) {
  std::vector<VectorizerConfig> Cs = DifferentialOracle::defaultConfigs();
  ASSERT_GE(Cs.size(), 4u);
  bool HasNR = false, HasSLP = false, HasLSLP = false;
  for (const VectorizerConfig &C : Cs) {
    HasNR |= C.Name == "SLP-NR";
    HasSLP |= C.Name == "SLP";
    HasLSLP |= C.Name == "LSLP";
  }
  EXPECT_TRUE(HasNR && HasSLP && HasLSLP);
}

} // namespace
