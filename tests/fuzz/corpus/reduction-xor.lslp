; Minimized reproducer shape: a linear xor reduction chain over four
; contiguous loads. The reduction seeder reassociates this into a
; shuffle tree, which must stay bit-identical for xor.
module "reduction_xor"

global @A = [8 x i64]
global @O = [8 x i64]

define void @f() {
entry:
  %p0 = gep i64, ptr @A, i64 0
  %p1 = gep i64, ptr @A, i64 1
  %p2 = gep i64, ptr @A, i64 2
  %p3 = gep i64, ptr @A, i64 3
  %a0 = load i64, ptr %p0
  %a1 = load i64, ptr %p1
  %a2 = load i64, ptr %p2
  %a3 = load i64, ptr %p3
  %x0 = xor i64 %a0, %a1
  %x1 = xor i64 %x0, %a2
  %x2 = xor i64 %x1, %a3
  %po = gep i64, ptr @O, i64 0
  store i64 %x2, ptr %po
  ret void
}
