; Minimized reproducer shape: mixed-width lanes — i8 loads widened to
; i64 through a sext bundle, with a truncating store group beside it.
module "cast_chain"

global @A = [8 x i8]
global @O = [8 x i64]
global @P = [8 x i16]

define void @f() {
entry:
  %pa0 = gep i8, ptr @A, i64 0
  %pa1 = gep i8, ptr @A, i64 1
  %a0 = load i8, ptr %pa0
  %a1 = load i8, ptr %pa1
  %w0 = sext i8 %a0 to i64
  %w1 = sext i8 %a1 to i64
  %m0 = mul i64 %w0, 3
  %m1 = mul i64 %w1, 3
  %po0 = gep i64, ptr @O, i64 0
  %po1 = gep i64, ptr @O, i64 1
  store i64 %m0, ptr %po0
  store i64 %m1, ptr %po1
  %t0 = trunc i64 %m0 to i16
  %t1 = trunc i64 %m1 to i16
  %pp0 = gep i16, ptr @P, i64 0
  %pp1 = gep i16, ptr @P, i64 1
  store i16 %t0, ptr %pp0
  store i16 %t1, ptr %pp1
  ret void
}
