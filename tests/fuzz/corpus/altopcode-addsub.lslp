; Minimized reproducer shape: adjacent stores fed by an add/sub opcode
; blend — the alt-opcode bundling path. Kept as a regression input for
; the differential oracle (see TESTING.md).
module "altopcode_addsub"

global @A = [8 x i64]
global @B = [8 x i64]
global @O = [8 x i64]

define void @f() {
entry:
  %pa0 = gep i64, ptr @A, i64 0
  %pa1 = gep i64, ptr @A, i64 1
  %pb0 = gep i64, ptr @B, i64 0
  %pb1 = gep i64, ptr @B, i64 1
  %a0 = load i64, ptr %pa0
  %a1 = load i64, ptr %pa1
  %b0 = load i64, ptr %pb0
  %b1 = load i64, ptr %pb1
  %v0 = add i64 %a0, %b0
  %v1 = sub i64 %a1, %b1
  %po0 = gep i64, ptr @O, i64 0
  %po1 = gep i64, ptr @O, i64 1
  store i64 %v0, ptr %po0
  store i64 %v1, ptr %po1
  ret void
}
