; Minimized reproducer shape: two store windows on one array where the
; second window reads back what the first wrote (read-after-write) and
; overwrites part of it (write-after-write). The scheduler must not move
; the loads across the first store group.
module "overlap_raw"

global @M = [8 x i64]
global @A = [8 x i64]

define void @f() {
entry:
  %pa0 = gep i64, ptr @A, i64 0
  %pa1 = gep i64, ptr @A, i64 1
  %a0 = load i64, ptr %pa0
  %a1 = load i64, ptr %pa1
  %pm0 = gep i64, ptr @M, i64 0
  %pm1 = gep i64, ptr @M, i64 1
  store i64 %a0, ptr %pm0
  store i64 %a1, ptr %pm1
  %r0 = load i64, ptr %pm1
  %s0 = add i64 %r0, 1
  %s1 = add i64 %r0, 2
  %pm2 = gep i64, ptr @M, i64 2
  store i64 %s0, ptr %pm1
  store i64 %s1, ptr %pm2
  ret void
}
