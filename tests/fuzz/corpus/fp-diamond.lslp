; Minimized reproducer shape: a double fmul/fadd group whose values flow
; through a diamond join phi before being stored. Inputs are small
; integers, so results must stay bit-exact under reordering.
module "fp_diamond"

global @X = [8 x double]
global @Y = [8 x double]
global @O = [8 x double]
global @C = [8 x i64]

define void @f() {
entry:
  %pc = gep i64, ptr @C, i64 0
  %c = load i64, ptr %pc
  %cmp = icmp slt i64 %c, 8
  br i1 %cmp, label %then, label %else

then:
  %px0 = gep double, ptr @X, i64 0
  %x0 = load double, ptr %px0
  %tv = fmul double %x0, 2.0
  br label %join

else:
  %py0 = gep double, ptr @Y, i64 0
  %y0 = load double, ptr %py0
  %ev = fadd double %y0, 1.0
  br label %join

join:
  %phi = phi double [ %tv, %then ], [ %ev, %else ]
  %px1 = gep double, ptr @X, i64 1
  %px2 = gep double, ptr @X, i64 2
  %x1 = load double, ptr %px1
  %x2 = load double, ptr %px2
  %s1 = fadd double %x1, %phi
  %s2 = fadd double %x2, %phi
  %po1 = gep double, ptr @O, i64 1
  %po2 = gep double, ptr @O, i64 2
  store double %s1, ptr %po1
  store double %s2, ptr %po2
  ret void
}
