//===- tests/fuzz/GeneratorTest.cpp - ModuleGenerator tests --------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The generator's contract: every module verifies, the same seed always
// yields the same module, and across a modest seed range the advertised
// feature space (multi-block CFGs, mixed widths, floats, aliasing stores,
// reductions, cast chains, partial isomorphism) is actually exercised.
//
//===----------------------------------------------------------------------===//

#include "fuzz/ModuleGenerator.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace lslp;

namespace {

TEST(ModuleGenerator, EveryModuleVerifies) {
  for (uint64_t Seed = 0; Seed != 100; ++Seed) {
    Context Ctx;
    ModuleGenerator Gen(Seed);
    std::unique_ptr<Module> M = Gen.generate(Ctx);
    std::vector<std::string> Errors;
    EXPECT_TRUE(verifyModule(*M, &Errors))
        << "seed " << Seed << ": "
        << (Errors.empty() ? "<no detail>" : Errors[0]);
  }
}

TEST(ModuleGenerator, SameSeedSameModule) {
  for (uint64_t Seed : {0ull, 1ull, 7ull, 42ull, 12345ull}) {
    Context CtxA, CtxB;
    ModuleGenerator GenA(Seed), GenB(Seed);
    std::string A = moduleToString(*GenA.generate(CtxA));
    std::string B = moduleToString(*GenB.generate(CtxB));
    EXPECT_EQ(A, B) << "seed " << Seed << " is not reproducible";
  }
}

TEST(ModuleGenerator, DifferentSeedsDiffer) {
  Context CtxA, CtxB;
  ModuleGenerator GenA(1), GenB(2);
  EXPECT_NE(moduleToString(*GenA.generate(CtxA)),
            moduleToString(*GenB.generate(CtxB)));
}

TEST(ModuleGenerator, CoverageAcrossSeeds) {
  GeneratorStats Total;
  unsigned MaxBlocksInOneModule = 0;
  for (uint64_t Seed = 0; Seed != 100; ++Seed) {
    Context Ctx;
    ModuleGenerator Gen(Seed);
    Gen.generate(Ctx);
    Total.merge(Gen.stats());
    MaxBlocksInOneModule =
        std::max(MaxBlocksInOneModule, Gen.stats().NumBlocks);
  }

  // Multi-block CFGs with real control flow and join phis.
  EXPECT_GE(MaxBlocksInOneModule, 4u);
  EXPECT_GT(Total.NumCondBranches, 0u);
  EXPECT_GT(Total.NumJoinPhis, 0u);

  // At least three integer widths plus a float type (ISSUE acceptance).
  EXPECT_GE(Total.IntWidths.size(), 3u);
  EXPECT_TRUE(Total.UsedFloat);

  // Aliasing/overlapping store windows on the shared array.
  EXPECT_GT(Total.NumAliasingGroups, 0u);

  // The rest of the advertised feature space.
  EXPECT_GT(Total.NumStoreGroups, 0u);
  EXPECT_GT(Total.NumReductions, 0u);
  EXPECT_GT(Total.NumCasts, 0u);
  EXPECT_GT(Total.NumPartialIsoLanes, 0u);
  EXPECT_GT(Total.NumSwizzledLoads, 0u);
  EXPECT_GT(Total.NumDivisions, 0u);
}

TEST(ModuleGenerator, StatsMatchModuleStructure) {
  // Spot check: the block counter agrees with the materialized CFG.
  for (uint64_t Seed = 0; Seed != 20; ++Seed) {
    Context Ctx;
    ModuleGenerator Gen(Seed);
    std::unique_ptr<Module> M = Gen.generate(Ctx);
    unsigned Blocks = 0;
    for (const auto &F : M->functions())
      for (auto It = F->begin(); It != F->end(); ++It)
        ++Blocks;
    EXPECT_EQ(Blocks, Gen.stats().NumBlocks) << "seed " << Seed;
  }
}

} // namespace
