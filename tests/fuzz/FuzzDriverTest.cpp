//===- tests/fuzz/FuzzDriverTest.cpp - Parallel fuzz sweep parity -------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The sharded fuzz sweep (lslpc --fuzz=N --jobs=J) must be a pure
// wall-clock optimization: per-seed verdicts, failure details, and the
// order outcomes are delivered in are identical to the serial sweep.
//
//===----------------------------------------------------------------------===//

#include "fuzz/FuzzDriver.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace lslp;

namespace {

std::vector<SeedOutcome> sweep(unsigned Jobs, int64_t Count,
                               int64_t FirstSeed) {
  FuzzSweepOptions Opts;
  Opts.Count = Count;
  Opts.FirstSeed = FirstSeed;
  Opts.Jobs = Jobs;
  std::vector<SeedOutcome> Out;
  int64_t Failures = runFuzzSweep(
      Opts, [&](const SeedOutcome &O) { Out.push_back(O); });
  int64_t Failed = 0;
  for (const SeedOutcome &O : Out)
    Failed += !O.Passed;
  EXPECT_EQ(Failures, Failed);
  return Out;
}

TEST(FuzzDriver, ParallelVerdictsMatchSerialFor100Seeds) {
  const int64_t Count = 100, FirstSeed = 1;
  std::vector<SeedOutcome> Serial = sweep(1, Count, FirstSeed);
  std::vector<SeedOutcome> Parallel = sweep(4, Count, FirstSeed);
  ASSERT_EQ(Serial.size(), static_cast<size_t>(Count));
  ASSERT_EQ(Parallel.size(), Serial.size());
  for (size_t I = 0; I != Serial.size(); ++I) {
    EXPECT_EQ(Serial[I].Seed, Parallel[I].Seed);
    // Outcomes arrive in ascending seed order in both modes.
    EXPECT_EQ(Serial[I].Seed, static_cast<uint64_t>(FirstSeed) + I);
    EXPECT_EQ(Serial[I].Passed, Parallel[I].Passed) << Serial[I].Seed;
    EXPECT_EQ(Serial[I].VerifyFailed, Parallel[I].VerifyFailed);
    EXPECT_EQ(Serial[I].ConfigName, Parallel[I].ConfigName);
    EXPECT_EQ(Serial[I].Reason, Parallel[I].Reason);
    EXPECT_EQ(Serial[I].ReducedIR, Parallel[I].ReducedIR);
  }
}

TEST(FuzzDriver, ConsumeRunsOnCallingThread) {
  FuzzSweepOptions Opts;
  Opts.Count = 8;
  Opts.Jobs = 4;
  const std::thread::id Caller = std::this_thread::get_id();
  size_t Calls = 0;
  runFuzzSweep(Opts, [&](const SeedOutcome &) {
    EXPECT_EQ(std::this_thread::get_id(), Caller);
    ++Calls;
  });
  EXPECT_EQ(Calls, 8u);
}

TEST(FuzzDriver, FaultInjectedSweepStaysClean) {
  // The acceptance gate in miniature: seeds swept with fault injection on
  // must produce zero failures (every injected fault surfaces as a clean
  // scalar fallback plus remark, never a crash or miscompile) and stay
  // deterministic across job counts.
  FuzzSweepOptions Opts;
  Opts.Count = 12;
  Opts.FirstSeed = 5;
  Opts.FaultProbability = 0.05;
  Opts.FaultSeed = 99;
  std::vector<SeedOutcome> Serial;
  int64_t SerialFailures = runFuzzSweep(
      Opts, [&](const SeedOutcome &O) { Serial.push_back(O); });
  EXPECT_EQ(SerialFailures, 0);
  for (const SeedOutcome &O : Serial) {
    EXPECT_TRUE(O.Passed) << "seed " << O.Seed << ": " << O.Reason;
    EXPECT_FALSE(O.Crashed);
  }

  Opts.Jobs = 4;
  std::vector<SeedOutcome> Parallel;
  runFuzzSweep(Opts, [&](const SeedOutcome &O) { Parallel.push_back(O); });
  ASSERT_EQ(Parallel.size(), Serial.size());
  for (size_t I = 0; I != Serial.size(); ++I) {
    EXPECT_EQ(Serial[I].Passed, Parallel[I].Passed) << Serial[I].Seed;
    EXPECT_EQ(Serial[I].Reason, Parallel[I].Reason);
  }
}

TEST(FuzzDriver, OversubscribedJobsClampToSeedCount) {
  // More workers than seeds must not hang or drop outcomes.
  std::vector<SeedOutcome> Out = sweep(16, 3, 42);
  ASSERT_EQ(Out.size(), 3u);
  EXPECT_EQ(Out[0].Seed, 42u);
  EXPECT_EQ(Out[2].Seed, 44u);
}

} // namespace
