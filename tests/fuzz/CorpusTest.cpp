//===- tests/fuzz/CorpusTest.cpp - Reproducer corpus replay --------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Replays every minimized reproducer in tests/fuzz/corpus/ through the
// full differential oracle. A module lands in the corpus because it once
// tripped (or characterizes a shape that could trip) the vectorizer, so
// each must now pass under the complete configuration sweep.
//
//===----------------------------------------------------------------------===//

#include "fuzz/DifferentialOracle.h"

#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

using namespace lslp;

namespace {

std::vector<std::filesystem::path> corpusFiles() {
  std::vector<std::filesystem::path> Files;
  for (const auto &Entry :
       std::filesystem::directory_iterator(LSLP_FUZZ_CORPUS_DIR))
    if (Entry.path().extension() == ".lslp")
      Files.push_back(Entry.path());
  std::sort(Files.begin(), Files.end());
  return Files;
}

TEST(Corpus, HasReproducers) { EXPECT_GE(corpusFiles().size(), 4u); }

TEST(Corpus, EveryReproducerPassesTheOracle) {
  DifferentialOracle Oracle;
  for (const std::filesystem::path &Path : corpusFiles()) {
    std::ifstream In(Path);
    ASSERT_TRUE(In.good()) << Path;
    std::ostringstream SS;
    SS << In.rdbuf();
    OracleVerdict V = Oracle.check(SS.str());
    EXPECT_TRUE(V.Passed) << Path.filename() << " [" << V.ConfigName
                          << "]: " << V.Reason << "\n"
                          << V.VectorizedIR;
  }
}

TEST(Corpus, EveryReproducerPassesUnderEngineParity) {
  // Replay the corpus with the cross-engine invariant on: the bytecode
  // vm and the tree-walker must agree bit-for-bit (memory, returns, and
  // the full ExecStats) on the baseline and every vectorized variant.
  OracleOptions Opts;
  Opts.CheckEngineParity = true;
  DifferentialOracle Oracle(Opts);
  for (const std::filesystem::path &Path : corpusFiles()) {
    std::ifstream In(Path);
    ASSERT_TRUE(In.good()) << Path;
    std::ostringstream SS;
    SS << In.rdbuf();
    OracleVerdict V = Oracle.check(SS.str());
    EXPECT_TRUE(V.Passed) << Path.filename() << " [" << V.ConfigName
                          << "]: " << V.Reason << "\n"
                          << V.VectorizedIR;
  }
}

} // namespace
