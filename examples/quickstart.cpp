//===- examples/quickstart.cpp - Five-minute tour of the public API ------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Quickstart: build the IR of the paper's Listing 2 with IRBuilder, run
// the LSLP vectorizer, and execute both versions on the interpreter.
//
//   mul11 = A[0]*B[0]; mul12 = C[0]*D[0];
//   mul21 = A[1]*B[1]; mul22 = C[1]*D[1];
//   E[0] = mul11 + mul12;
//   E[1] = mul22 + mul21;   // operands commuted: SLP can fail, LSLP fixes
//
//===----------------------------------------------------------------------===//

#include "costmodel/TargetTransformInfo.h"
#include "interp/Interpreter.h"
#include "ir/Context.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "support/OStream.h"
#include "vectorizer/SLPVectorizerPass.h"

using namespace lslp;

namespace {

/// Builds the Listing 2 function: void @listing2() over global arrays.
std::unique_ptr<Module> buildListing2(Context &Ctx) {
  auto M = std::make_unique<Module>(Ctx, "listing2");
  Type *I64 = Ctx.getInt64Ty();
  GlobalArray *A = M->createGlobal("A", I64, 8);
  GlobalArray *B = M->createGlobal("B", I64, 8);
  GlobalArray *C = M->createGlobal("C", I64, 8);
  GlobalArray *D = M->createGlobal("D", I64, 8);
  GlobalArray *E = M->createGlobal("E", I64, 8);

  Function *F = Function::create(M.get(), "listing2", Ctx.getVoidTy(), {}, {});
  IRBuilder IRB(BasicBlock::create(Ctx, "entry", F));

  auto Elem = [&](GlobalArray *G, int64_t Idx, const std::string &Name) {
    return IRB.createLoad(I64, IRB.createGEP(I64, G, Idx), Name);
  };
  Value *Mul11 = IRB.createMul(Elem(A, 0, "a0"), Elem(B, 0, "b0"), "mul11");
  Value *Mul12 = IRB.createMul(Elem(C, 0, "c0"), Elem(D, 0, "d0"), "mul12");
  Value *Mul21 = IRB.createMul(Elem(A, 1, "a1"), Elem(B, 1, "b1"), "mul21");
  Value *Mul22 = IRB.createMul(Elem(C, 1, "c1"), Elem(D, 1, "d1"), "mul22");
  IRB.createStore(IRB.createAdd(Mul11, Mul12, "s0"),
                  IRB.createGEP(I64, E, int64_t(0)));
  // Note the commuted addend order in lane 1, exactly as in the paper.
  IRB.createStore(IRB.createAdd(Mul22, Mul21, "s1"),
                  IRB.createGEP(I64, E, int64_t(1)));
  IRB.createRet();
  return M;
}

uint64_t execute(Module &M, const TargetTransformInfo &TTI, uint64_t *Cost) {
  Interpreter Interp(M, &TTI);
  for (const char *Name : {"A", "B", "C", "D"})
    for (uint64_t I = 0; I < 8; ++I)
      Interp.writeGlobalInt(Name, I, (I + 2) * (Name[0] - 'A' + 3));
  auto R = Interp.run(M.getFunction("listing2"));
  if (Cost)
    *Cost = R.TotalCost;
  uint64_t E0 = Interp.readGlobalInt("E", 0);
  uint64_t E1 = Interp.readGlobalInt("E", 1);
  outs() << "  E[0] = " << E0 << ", E[1] = " << E1 << "\n";
  return E0 * 1000003 + E1;
}

} // namespace

int main() {
  Context Ctx;
  SkylakeTTI TTI;

  // 1. Build the scalar IR.
  auto M = buildListing2(Ctx);
  outs() << "--- scalar IR (paper Listing 2) ---\n" << moduleToString(*M);
  outs() << "\nscalar execution:\n";
  uint64_t ScalarCost = 0;
  uint64_t ScalarResult = execute(*M, TTI, &ScalarCost);

  // 2. Run the LSLP vectorizer (look-ahead depth 8, unlimited
  //    multi-nodes, the paper's configuration).
  SLPVectorizerPass Pass(VectorizerConfig::lslp(), TTI);
  Pass.setVerbose(true);
  ModuleReport Report = Pass.runOnModule(*M);
  if (!verifyModule(*M)) {
    errs() << "internal error: vectorized module failed verification\n";
    return 1;
  }

  outs() << "\n--- LSLP vectorization graph ---\n";
  for (const FunctionReport &F : Report.Functions)
    for (const GraphAttempt &A : F.Attempts)
      outs() << A.GraphDump << "(accepted: " << A.Accepted
             << ", cost " << A.Cost << ")\n";

  // 3. Show and execute the vectorized code.
  outs() << "\n--- vectorized IR ---\n" << moduleToString(*M);
  outs() << "\nvector execution:\n";
  uint64_t VectorCost = 0;
  uint64_t VectorResult = execute(*M, TTI, &VectorCost);

  outs() << "\nresults match: "
         << (ScalarResult == VectorResult ? "yes" : "NO (BUG)") << "\n";
  outs() << "simulated cost: scalar " << ScalarCost << " -> vector "
         << VectorCost << "\n";
  return ScalarResult == VectorResult ? 0 : 1;
}
