//===- examples/kernel_explorer.cpp - Inspect any kernel under any config ------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Command-line explorer over the kernel registry:
//
//   kernel_explorer                         # list available kernels
//   kernel_explorer 453.vsumsqr             # LSLP on a kernel
//   kernel_explorer 453.vsumsqr SLP         # pick a config
//   kernel_explorer 453.calc-z3 LSLP --la 2 --multi 1 --show-ir
//
// Prints the vectorization report, optionally the before/after IR, and
// the simulated speedup over O3.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "costmodel/TargetTransformInfo.h"
#include "interp/Interpreter.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "support/OStream.h"
#include "support/StringUtil.h"
#include "vectorizer/SLPVectorizerPass.h"

#include <cstring>

using namespace lslp;

namespace {

void listKernels() {
  outs() << "available kernels:\n";
  for (const KernelSpec &K : getAllKernels()) {
    outs() << "  ";
    outs().leftJustify(K.Name, 26);
    outs() << K.Description << "\n";
  }
  outs() << "\nusage: kernel_explorer <kernel> [SLP-NR|SLP|LSLP] "
            "[--la N] [--multi N] [--show-ir]\n";
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2) {
    listKernels();
    return 0;
  }
  const KernelSpec *Spec = findKernel(argv[1]);
  if (!Spec) {
    errs() << "unknown kernel '" << argv[1] << "'\n\n";
    listKernels();
    return 1;
  }

  VectorizerConfig Config = VectorizerConfig::lslp();
  bool ShowIR = false;
  for (int I = 2; I < argc; ++I) {
    std::string Arg = argv[I];
    int64_t Num = 0;
    if (Arg == "SLP-NR")
      Config = VectorizerConfig::slpNoReordering();
    else if (Arg == "SLP")
      Config = VectorizerConfig::slp();
    else if (Arg == "LSLP")
      Config = VectorizerConfig::lslp();
    else if (Arg == "--show-ir")
      ShowIR = true;
    else if (Arg == "--la" && I + 1 < argc && parseInt(argv[I + 1], Num))
      Config.MaxLookAheadLevel = static_cast<unsigned>(Num), ++I;
    else if (Arg == "--multi" && I + 1 < argc && parseInt(argv[I + 1], Num))
      Config.MaxMultiNodeSize = static_cast<unsigned>(Num), ++I;
    else {
      errs() << "unknown argument '" << Arg << "'\n";
      return 1;
    }
  }

  outs() << "kernel: " << Spec->Name << " (" << Spec->Origin << ", "
         << Spec->SourceLocation << ")\n";
  outs() << "motif:  " << Spec->Description << "\n";
  outs() << "config: " << Config.Name
         << " (look-ahead " << Config.MaxLookAheadLevel << ", multi-node "
         << Config.MaxMultiNodeSize << ")\n\n";

  Context Ctx;
  SkylakeTTI TTI;
  auto M = buildKernelModule(*Spec, Ctx);
  if (ShowIR)
    outs() << "--- scalar IR ---\n" << moduleToString(*M) << "\n";

  SLPVectorizerPass Pass(Config, TTI);
  Pass.setVerbose(true);
  ModuleReport Report = Pass.runOnModule(*M);
  if (!verifyModule(*M)) {
    errs() << "internal error: vectorized module failed verification\n";
    return 1;
  }

  for (const FunctionReport &F : Report.Functions) {
    for (const GraphAttempt &A : F.Attempts) {
      outs() << "seed bundle (" << A.NumLanes << " lanes) in @"
             << F.FunctionName << ":\n" << A.GraphDump;
      outs() << "=> cost " << A.Cost << ", "
             << (A.Accepted ? "VECTORIZED" : "not vectorized")
             << (A.UsedReordering ? " (operands reordered)" : "") << "\n\n";
    }
  }

  if (ShowIR)
    outs() << "--- after vectorization ---\n" << moduleToString(*M) << "\n";

  bench::Measurement O3 = bench::measureKernel(*Spec, nullptr);
  bench::Measurement Vec = bench::measureKernel(*Spec, &Config);
  outs() << "simulated cycles: O3 " << formatDouble(O3.DynamicCost, 0) << " -> "
         << Config.Name << " " << formatDouble(Vec.DynamicCost, 0) << "  (speedup "
         << formatDouble(O3.DynamicCost / Vec.DynamicCost, 2) << "x)\n";
  outs() << "output checksums "
         << (O3.Checksum == Vec.Checksum ? "match" : "DIFFER (BUG)") << "\n";
  return O3.Checksum == Vec.Checksum ? 0 : 1;
}
