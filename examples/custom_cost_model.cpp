//===- examples/custom_cost_model.cpp - Plugging in your own target ------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Shows how the cost-model interface changes vectorization decisions:
// the same kernel is vectorized under three targets —
//
//   1. SkylakeTTI        — the default AVX2-like model,
//   2. FreeGatherTTI     — a hypothetical machine with zero-cost gathers
//                          (everything becomes profitable),
//   3. NarrowScalarTTI   — a machine where vector ALUs are half rate
//                          (vectorization rarely pays off).
//
// The point: (L)SLP itself is target-neutral; TargetTransformInfo is the
// single customization point, exactly as in LLVM.
//
//===----------------------------------------------------------------------===//

#include "costmodel/TargetTransformInfo.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "kernels/Kernels.h"
#include "support/OStream.h"
#include "support/StringUtil.h"
#include "vectorizer/SLPVectorizerPass.h"

using namespace lslp;

namespace {

/// A machine whose gathers/inserts are free (e.g. perfect register-file
/// banking): even non-isomorphic code becomes profitable to vectorize.
class FreeGatherTTI : public SkylakeTTI {
public:
  int getGatherCost(Type *, const std::vector<bool> &) const override {
    return 0;
  }
  int getVectorLaneOpCost(ValueID, Type *) const override { return 0; }
};

/// A machine with half-rate vector ALUs: a vector op costs as much as two
/// scalar ops, so only wide groups with cheap operands win.
class NarrowScalarTTI : public SkylakeTTI {
public:
  int getArithmeticInstrCost(ValueID Opc, Type *Ty) const override {
    int Cost = SkylakeTTI::getArithmeticInstrCost(Opc, Ty);
    return Ty->isVectorTy() ? Cost * 2 : Cost;
  }
  int getMemoryOpCost(ValueID Opc, Type *Ty) const override {
    int Cost = SkylakeTTI::getMemoryOpCost(Opc, Ty);
    return Ty->isVectorTy() ? Cost * 2 : Cost;
  }
};

void evaluate(const char *TargetName, const TargetTransformInfo &TTI) {
  outs() << "--- target: " << TargetName << " ---\n";
  for (const KernelSpec *K : getFigureKernels()) {
    Context Ctx;
    auto M = buildKernelModule(*K, Ctx);
    SLPVectorizerPass Pass(VectorizerConfig::lslp(), TTI);
    ModuleReport R = Pass.runOnModule(*M);
    outs() << "  ";
    outs().leftJustify(K->Name, 26);
    if (R.numAccepted())
      outs() << "vectorized, cost " << R.acceptedCost() << "\n";
    else
      outs() << "not vectorized\n";
  }
  outs() << "\n";
}

} // namespace

int main() {
  SkylakeTTI Skylake;
  FreeGatherTTI FreeGather;
  NarrowScalarTTI Narrow;
  evaluate("Skylake (AVX2 default)", Skylake);
  evaluate("free-gather machine", FreeGather);
  evaluate("half-rate vector ALUs", Narrow);
  outs() << "Same pass, same kernels - only TargetTransformInfo changed.\n";
  return 0;
}
