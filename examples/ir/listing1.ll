; Paper Listing 1: operands in the wrong order; plain SLP reordering
; (opcode-based) succeeds.
;
;   store(E[0]) = sub1 + load1
;   store(E[1]) = load2 + sub2
;
; Try: lslpc examples/ir/listing1.ll -config=SLP -report

module "listing1"

global @A = [8 x i64]
global @E = [8 x i64]

define void @listing1(i64 %x, i64 %y) {
entry:
  %pa0 = gep i64, ptr @A, i64 0
  %pa1 = gep i64, ptr @A, i64 1
  %load1 = load i64, ptr %pa0
  %load2 = load i64, ptr %pa1
  %sub1 = sub i64 %x, %y
  %sub2 = sub i64 %y, %x
  %s0 = add i64 %sub1, %load1
  %s1 = add i64 %load2, %sub2
  %pe0 = gep i64, ptr @E, i64 0
  %pe1 = gep i64, ptr @E, i64 1
  store i64 %s0, ptr %pe0
  store i64 %s1, ptr %pe1
  ret void
}
