; Paper Figure 2 (Section 3.1): load address mismatch. Vanilla SLP's
; opcode-only reordering leaves the crossed B/C loads in place (total
; cost 0, not vectorized); LSLP's look-ahead reaches cost -6.
;
; Try:
;   lslpc examples/ir/figure2.ll -config=SLP  -report -graphs -no-print
;   lslpc examples/ir/figure2.ll -config=LSLP -report -graphs -no-print

module "figure2"

global @A = [8 x i64]
global @B = [8 x i64]
global @C = [8 x i64]

define void @figure2(i64 %i) {
entry:
  %i1 = add i64 %i, 1
  %pb0 = gep i64, ptr @B, i64 %i
  %pc0 = gep i64, ptr @C, i64 %i
  %pb1 = gep i64, ptr @B, i64 %i1
  %pc1 = gep i64, ptr @C, i64 %i1
  %b0 = load i64, ptr %pb0
  %c0 = load i64, ptr %pc0
  %c1 = load i64, ptr %pc1
  %b1 = load i64, ptr %pb1
  %sh0l = shl i64 %b0, 1
  %sh0r = shl i64 %c0, 2
  %sh1l = shl i64 %c1, 3
  %sh1r = shl i64 %b1, 4
  %and0 = and i64 %sh0l, %sh0r
  %and1 = and i64 %sh1l, %sh1r
  %pa0 = gep i64, ptr @A, i64 %i
  %pa1 = gep i64, ptr @A, i64 %i1
  store i64 %and0, ptr %pa0
  store i64 %and1, ptr %pa1
  ret void
}
