; Paper Figure 4 (Section 3.3): associativity mismatch. The '&' chain is
; associated differently in the two lanes; only LSLP's multi-node
; formation recovers the isomorphism (SLP: cost -2, LSLP: cost -10).
;
; Try:
;   lslpc examples/ir/figure4.ll -config=SLP  -report -graphs -no-print
;   lslpc examples/ir/figure4.ll -config=LSLP -dot -no-print | dot -Tpng

module "figure4"

global @A = [8 x i64]
global @B = [8 x i64]
global @C = [8 x i64]
global @D = [8 x i64]
global @E = [8 x i64]

define void @figure4(i64 %i) {
entry:
  %i1 = add i64 %i, 1
  %pa0 = gep i64, ptr @A, i64 %i
  %pa1 = gep i64, ptr @A, i64 %i1
  %pb0 = gep i64, ptr @B, i64 %i
  %pb1 = gep i64, ptr @B, i64 %i1
  %pc0 = gep i64, ptr @C, i64 %i
  %pc1 = gep i64, ptr @C, i64 %i1
  %pd0 = gep i64, ptr @D, i64 %i
  %pd1 = gep i64, ptr @D, i64 %i1
  %pe0 = gep i64, ptr @E, i64 %i
  %pe1 = gep i64, ptr @E, i64 %i1
  ; Lane 0: (A & (B+C)) & (D+E), left-associated.
  %a0 = load i64, ptr %pa0
  %b0 = load i64, ptr %pb0
  %c0 = load i64, ptr %pc0
  %d0 = load i64, ptr %pd0
  %e0 = load i64, ptr %pe0
  %bc0 = add i64 %b0, %c0
  %de0 = add i64 %d0, %e0
  %t0 = and i64 %a0, %bc0
  %r0 = and i64 %t0, %de0
  store i64 %r0, ptr %pa0
  ; Lane 1: ((D+E) & (B+C)) & A - same values, different shape.
  %a1 = load i64, ptr %pa1
  %b1 = load i64, ptr %pb1
  %c1 = load i64, ptr %pc1
  %d1 = load i64, ptr %pd1
  %e1 = load i64, ptr %pe1
  %de1 = add i64 %d1, %e1
  %bc1 = add i64 %b1, %c1
  %t1 = and i64 %de1, %bc1
  %r1 = and i64 %t1, %a1
  store i64 %r1, ptr %pa1
  ret void
}
