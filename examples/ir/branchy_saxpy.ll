; Branchy + loop kernel for the CFG pipeline (-if-convert -unroll):
; a diamond picks a coefficient per lane block, then a trip-8 counted
; loop accumulates OUT[i] = A[i] * coeff + B[i]. Plain SLP sees nothing
; (the branch splits the block; the loop body is one lane wide); after
; if-conversion flattens the diamond and the unroller widens the body,
; the stores pack. Exercised by the CI determinism gate and the daemon
; serving gate alongside the other examples.

global @A = [16 x i64]
global @B = [16 x i64]
global @OUT = [16 x i64]

define void @kernel() {
entry:
  %p0 = gep i64, ptr @A, i64 0
  %a0 = load i64, ptr %p0
  %c = icmp slt i64 %a0, 0
  br i1 %c, label %neg, label %pos
neg:
  %cn = mul i64 %a0, -2
  br label %head
pos:
  %cp = add i64 %a0, 3
  br label %head
head:
  %coeff = phi i64 [ %cn, %neg ], [ %cp, %pos ]
  br label %loop
loop:
  %i = phi i64 [ 0, %head ], [ %next, %loop ]
  %pa = gep i64, ptr @A, i64 %i
  %pb = gep i64, ptr @B, i64 %i
  %a = load i64, ptr %pa
  %b = load i64, ptr %pb
  %ax = mul i64 %a, %coeff
  %s = add i64 %ax, %b
  %q = gep i64, ptr @OUT, i64 %i
  store i64 %s, ptr %q
  %next = add i64 %i, 1
  %done = icmp ult i64 %next, 8
  br i1 %done, label %loop, label %exit
exit:
  ret void
}
