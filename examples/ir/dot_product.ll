; A 4-term dot product in a counted loop: one store per iteration, so
; only the horizontal-reduction seeder can vectorize it.
;
; Try: lslpc examples/ir/dot_product.ll -report -run=dot:16 -init-memory

module "dot_product"

global @X = [256 x double]
global @Y = [256 x double]
global @S = [64 x double]

define void @dot(i64 %n) {
entry:
  br label %loop

loop:
  %i = phi i64 [ 0, %entry ], [ %next, %loop ]
  %i4 = mul i64 %i, 4
  %i41 = add i64 %i4, 1
  %i42 = add i64 %i4, 2
  %i43 = add i64 %i4, 3
  %px0 = gep double, ptr @X, i64 %i4
  %px1 = gep double, ptr @X, i64 %i41
  %px2 = gep double, ptr @X, i64 %i42
  %px3 = gep double, ptr @X, i64 %i43
  %py0 = gep double, ptr @Y, i64 %i4
  %py1 = gep double, ptr @Y, i64 %i41
  %py2 = gep double, ptr @Y, i64 %i42
  %py3 = gep double, ptr @Y, i64 %i43
  %x0 = load double, ptr %px0
  %x1 = load double, ptr %px1
  %x2 = load double, ptr %px2
  %x3 = load double, ptr %px3
  %y0 = load double, ptr %py0
  %y1 = load double, ptr %py1
  %y2 = load double, ptr %py2
  %y3 = load double, ptr %py3
  %t0 = fmul double %x0, %y0
  %t1 = fmul double %x1, %y1
  %t2 = fmul double %x2, %y2
  %t3 = fmul double %x3, %y3
  %s01 = fadd double %t0, %t1
  %s23 = fadd double %t2, %t3
  %sum = fadd double %s01, %s23
  %ps = gep double, ptr @S, i64 %i
  store double %sum, ptr %ps
  %next = add i64 %i, 1
  %c = icmp slt i64 %next, %n
  br i1 %c, label %loop, label %exit

exit:
  ret void
}
