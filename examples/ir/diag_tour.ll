; A guided tour of the diagnostics subsystem: each function below trips a
; different family of optimization remarks, so one compilation emits every
; remark kind the pipeline knows (see DESIGN.md "Diagnostics").
;
;   @lookahead  seed-found, node-built, gather-fallback, lookahead-score,
;               reorder-choice, cost-node, cost-accepted  (Figure 2 shape)
;   @multinode  multinode-formed                          (Figure 4 shape)
;   @reduce     reduction-found + seed-rejected (its lone store)
;   @reject     cost-rejected (argument lanes can only gather)
;   @bailout    scheduler-bailout (store->load->store dependence chain)
;   @cse        cse-hit under -early-cse (duplicate loads)
;
; Try:
;   lslpc examples/ir/diag_tour.ll -early-cse --remarks=json -no-print
;   lslpc examples/ir/diag_tour.ll -early-cse --remarks --stats -no-print

module "diag_tour"

global @A = [8 x i64]
global @B = [8 x i64]
global @C = [8 x i64]
global @D = [8 x i64]
global @E = [8 x i64]
global @X = [8 x double]
global @S = [8 x double]

define void @lookahead(i64 %i) {
entry:
  %i1 = add i64 %i, 1
  %pb0 = gep i64, ptr @B, i64 %i
  %pc0 = gep i64, ptr @C, i64 %i
  %pb1 = gep i64, ptr @B, i64 %i1
  %pc1 = gep i64, ptr @C, i64 %i1
  %b0 = load i64, ptr %pb0
  %c0 = load i64, ptr %pc0
  %c1 = load i64, ptr %pc1
  %b1 = load i64, ptr %pb1
  %sh0l = shl i64 %b0, 1
  %sh0r = shl i64 %c0, 2
  %sh1l = shl i64 %c1, 3
  %sh1r = shl i64 %b1, 4
  %and0 = and i64 %sh0l, %sh0r
  %and1 = and i64 %sh1l, %sh1r
  %pa0 = gep i64, ptr @A, i64 %i
  %pa1 = gep i64, ptr @A, i64 %i1
  store i64 %and0, ptr %pa0
  store i64 %and1, ptr %pa1
  ret void
}

define void @multinode(i64 %i) {
entry:
  %i1 = add i64 %i, 1
  %pa0 = gep i64, ptr @A, i64 %i
  %pa1 = gep i64, ptr @A, i64 %i1
  %pb0 = gep i64, ptr @B, i64 %i
  %pb1 = gep i64, ptr @B, i64 %i1
  %pc0 = gep i64, ptr @C, i64 %i
  %pc1 = gep i64, ptr @C, i64 %i1
  %pd0 = gep i64, ptr @D, i64 %i
  %pd1 = gep i64, ptr @D, i64 %i1
  %pe0 = gep i64, ptr @E, i64 %i
  %pe1 = gep i64, ptr @E, i64 %i1
  ; Lane 0: (A & (B+C)) & (D+E), left-associated.
  %a0 = load i64, ptr %pa0
  %b0 = load i64, ptr %pb0
  %c0 = load i64, ptr %pc0
  %d0 = load i64, ptr %pd0
  %e0 = load i64, ptr %pe0
  %bc0 = add i64 %b0, %c0
  %de0 = add i64 %d0, %e0
  %t0 = and i64 %a0, %bc0
  %r0 = and i64 %t0, %de0
  store i64 %r0, ptr %pa0
  ; Lane 1: ((D+E) & (B+C)) & A - same values, different shape.
  %a1 = load i64, ptr %pa1
  %b1 = load i64, ptr %pb1
  %c1 = load i64, ptr %pc1
  %d1 = load i64, ptr %pd1
  %e1 = load i64, ptr %pe1
  %de1 = add i64 %d1, %e1
  %bc1 = add i64 %b1, %c1
  %t1 = and i64 %de1, %bc1
  %r1 = and i64 %t1, %a1
  store i64 %r1, ptr %pa1
  ret void
}

define void @reduce() {
entry:
  %px0 = gep double, ptr @X, i64 0
  %px1 = gep double, ptr @X, i64 1
  %px2 = gep double, ptr @X, i64 2
  %px3 = gep double, ptr @X, i64 3
  %x0 = load double, ptr %px0
  %x1 = load double, ptr %px1
  %x2 = load double, ptr %px2
  %x3 = load double, ptr %px3
  %s01 = fadd double %x0, %x1
  %s23 = fadd double %x2, %x3
  %sum = fadd double %s01, %s23
  %ps = gep double, ptr @S, i64 0
  store double %sum, ptr %ps
  ret void
}

define void @reject(i64 %x, i64 %y) {
entry:
  %pd0 = gep i64, ptr @D, i64 0
  %pd1 = gep i64, ptr @D, i64 1
  store i64 %x, ptr %pd0
  store i64 %y, ptr %pd1
  ret void
}

define void @bailout() {
entry:
  %pc0 = gep i64, ptr @C, i64 0
  %pe0 = gep i64, ptr @E, i64 0
  %pe1 = gep i64, ptr @E, i64 1
  %t = load i64, ptr %pc0
  store i64 %t, ptr %pe0
  %u = load i64, ptr %pe0
  store i64 %u, ptr %pe1
  ret void
}

define void @cse() {
entry:
  %pb0 = gep i64, ptr @B, i64 0
  %t1 = load i64, ptr %pb0
  %t2 = load i64, ptr %pb0
  %s = add i64 %t1, %t2
  %pa0 = gep i64, ptr @A, i64 0
  store i64 %s, ptr %pa0
  ret void
}
