//===- examples/motivation_tour.cpp - Walk through paper Figures 2-4 -----------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Reproduces the three motivating examples of the paper's Section 3 and
// prints, for each one, the SLP graph and the LSLP graph side by side with
// their per-node and total costs — the textual equivalent of Figures
// 2(c)/(d), 3(c)/(d) and 4(c)/(d).
//
//===----------------------------------------------------------------------===//

#include "costmodel/TargetTransformInfo.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "kernels/Kernels.h"
#include "support/OStream.h"
#include "vectorizer/SLPVectorizerPass.h"

using namespace lslp;

namespace {

void showGraph(const char *KernelName, const VectorizerConfig &Config) {
  const KernelSpec *Spec = findKernel(KernelName);
  Context Ctx;
  SkylakeTTI TTI;
  auto M = buildKernelModule(*Spec, Ctx);
  SLPVectorizerPass Pass(Config, TTI);
  Pass.setVerbose(true);
  ModuleReport R = Pass.runOnModule(*M);
  for (const FunctionReport &F : R.Functions) {
    for (const GraphAttempt &A : F.Attempts) {
      outs() << "[" << Config.Name << "] graph for @" << F.FunctionName
             << ":\n" << A.GraphDump;
      outs() << "=> cost " << A.Cost << ": "
             << (A.Accepted ? "VECTORIZED" : "not vectorized") << "\n\n";
    }
  }
}

void tour(const char *KernelName, const char *FigureName,
          const char *Explanation) {
  const KernelSpec *Spec = findKernel(KernelName);
  outs() << "==================================================\n"
         << FigureName << ": " << KernelName << "\n"
         << Explanation << "\n"
         << "==================================================\n\n";

  Context Ctx;
  auto M = buildKernelModule(*Spec, Ctx);
  outs() << "source IR (loop body shown in full):\n"
         << functionToString(*M->getFunction(Spec->EntryFunction)) << "\n";

  showGraph(KernelName, VectorizerConfig::slp());
  showGraph(KernelName, VectorizerConfig::lslp());
}

} // namespace

int main() {
  tour("motivation-loads", "Figure 2 (Section 3.1)",
       "Load address mismatch: both '&' operands are shifts, so vanilla\n"
       "SLP's opcode-based reordering cannot see that the loads one level\n"
       "up are crossed between lanes. Look-ahead scores fix the order.");
  tour("motivation-opcodes", "Figure 3 (Section 3.2)",
       "Opcode mismatch: the '&' groups match, but behind them lane 0 has\n"
       "shl where lane 1 has add. Only look-ahead notices before\n"
       "committing the operand order of the '+' group.");
  tour("motivation-multi", "Figure 4 (Section 3.3)",
       "Associativity mismatch: the same '&' chain is associated\n"
       "differently in each lane. No single-node reordering helps; LSLP\n"
       "forms a multi-node over the whole chain and reorders its\n"
       "frontier.");
  return 0;
}
