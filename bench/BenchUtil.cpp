//===- bench/BenchUtil.cpp - Shared benchmark harness helpers -----------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include "costmodel/TargetTransformInfo.h"
#include "diag/RemarkEngine.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "ir/Verifier.h"
#include "support/Debug.h"
#include "support/OStream.h"
#include "support/StringUtil.h"
#include "vectorizer/SLPVectorizerPass.h"

#include <chrono>
#include <cmath>
#include <cstdio>

using namespace lslp;
using namespace lslp::bench;

namespace {

using Clock = std::chrono::steady_clock;

double elapsedMs(Clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - Start)
      .count();
}

} // namespace

Measurement lslp::bench::measureKernel(const KernelSpec &Spec,
                                       const VectorizerConfig *Config,
                                       uint64_t N, EngineKind Kind) {
  Context Ctx;
  SkylakeTTI TTI;
  auto M = buildKernelModule(Spec, Ctx);
  Measurement Out;
  if (Config) {
    RemarkEngine Engine;
    VectorizerConfig Cfg = *Config;
    Cfg.Remarks = &Engine;
    SLPVectorizerPass Pass(Cfg, TTI);
    ModuleReport R = Pass.runOnModule(*M);
    Out.StaticCost = R.acceptedCost();
    Out.Accepted = R.numAccepted();
    Out.Explanation = Engine.summary();
    if (!verifyModule(*M))
      reportFatalError("vectorized module failed verification: " + Spec.Name);
  }
  auto Engine = ExecutionEngine::create(Kind, *M, &TTI);
  initKernelMemory(*Engine, *M);
  // The timed region covers execution only (for the vm that includes the
  // one-time bytecode compile, which is part of its cost).
  auto Start = Clock::now();
  auto Result =
      Engine->run(M->getFunction(Spec.EntryFunction),
                  {RuntimeValue::makeInt(Ctx.getInt64Ty(),
                                         N ? N : Spec.DefaultN)});
  Out.WallMs = elapsedMs(Start);
  Out.DynamicCost = static_cast<double>(Result.TotalCost);
  Out.Checksum = checksumGlobals(*Engine, *M, Spec.OutputArrays);
  return Out;
}

SuiteMeasurement lslp::bench::measureSuite(const SuiteSpec &Suite,
                                           const VectorizerConfig *Config,
                                           EngineKind Kind) {
  Context Ctx;
  SkylakeTTI TTI;
  auto M = buildSuiteModule(Suite, Ctx);
  SuiteMeasurement Out;
  if (Config) {
    SLPVectorizerPass Pass(*Config, TTI);
    Out.StaticCost = Pass.runOnModule(*M).acceptedCost();
    if (!verifyModule(*M))
      reportFatalError("vectorized suite failed verification: " + Suite.Name);
  }
  auto Engine = ExecutionEngine::create(Kind, *M, &TTI);
  initKernelMemory(*Engine, *M);
  for (size_t I = 0; I < Suite.Members.size(); ++I) {
    const KernelSpec *K = findKernel(Suite.Members[I]);
    auto Start = Clock::now();
    auto Result = Engine->run(
        M->getFunction(K->EntryFunction),
        {RuntimeValue::makeInt(Ctx.getInt64Ty(), K->DefaultN)});
    Out.WallMs += elapsedMs(Start);
    Out.WeightedDynamicCost +=
        Suite.Weights[I] * static_cast<double>(Result.TotalCost);
  }
  return Out;
}

bool lslp::bench::parseBenchArgs(int argc, char **argv, BenchOptions &Opts) {
  for (int I = 1; I < argc; ++I) {
    std::string_view Arg = argv[I];
    if (startsWith(Arg, "--"))
      Arg = Arg.substr(2);
    else if (startsWith(Arg, "-"))
      Arg = Arg.substr(1);
    if (startsWith(Arg, "json="))
      Opts.JsonPath = Arg.substr(5);
    else if (startsWith(Arg, "engine=")) {
      if (!parseEngineKind(Arg.substr(7), Opts.Engine)) {
        errs() << "bench: bad engine '" << std::string(Arg.substr(7))
               << "' (expected " << engineKindChoices() << ")\n";
        return false;
      }
    } else if (startsWith(Arg, "jobs=")) {
      int64_t Num = 0;
      if (!parseInt(std::string(Arg.substr(5)), Num) || Num < 0) {
        errs() << "bench: bad -jobs value '" << std::string(Arg.substr(5))
               << "'\n";
        return false;
      }
      Opts.Jobs = static_cast<unsigned>(Num);
    } else if (startsWith(Arg, "daemon="))
      Opts.DaemonSocket = Arg.substr(7);
    else if (Arg == "parity")
      Opts.Parity = true;
    else if (Arg == "engine-smoke")
      Opts.EngineSmoke = true;
    else if (startsWith(Arg, "strategy=")) {
      if (!parsePackingStrategy(Arg.substr(9), Opts.Strategy)) {
        errs() << "bench: bad strategy '" << std::string(Arg.substr(9))
               << "' (expected 'greedy' or 'global')\n";
        return false;
      }
    }
    // Anything else belongs to the binary (e.g. -explain, benchmark
    // library flags); leave it alone.
  }
  return true;
}

void JsonReport::add(const std::string &Label, const std::string &Config,
                     EngineKind Engine, double Cycles, double WallMs,
                     int StaticCost) {
  Records.push_back({Label, Config, Engine, Cycles, WallMs, StaticCost});
}

bool JsonReport::write(const std::string &Path) const {
  if (Path.empty())
    return true;
  std::FILE *File = std::fopen(Path.c_str(), "wb");
  if (!File) {
    errs() << "bench: cannot write JSON report to '" << Path << "'\n";
    return false;
  }
  std::fputs("[\n", File);
  for (size_t I = 0; I != Records.size(); ++I) {
    const Record &R = Records[I];
    std::fprintf(File,
                 "  {\"figure\": \"%s\", \"label\": \"%s\", "
                 "\"config\": \"%s\", \"engine\": \"%s\", "
                 "\"cycles\": %.0f, \"wall_ms\": %.3f, "
                 "\"static_cost\": %d}%s\n",
                 Figure.c_str(), R.Label.c_str(), R.Config.c_str(),
                 engineKindName(R.Engine), R.Cycles, R.WallMs, R.StaticCost,
                 I + 1 == Records.size() ? "" : ",");
  }
  std::fputs("]\n", File);
  std::fclose(File);
  return true;
}

std::vector<VectorizerConfig> lslp::bench::paperConfigs(
    VectorizerConfig::PackingStrategyKind Strategy) {
  std::vector<VectorizerConfig> Cs = {VectorizerConfig::slpNoReordering(),
                                      VectorizerConfig::slp(),
                                      VectorizerConfig::lslp()};
  if (Strategy != VectorizerConfig::PackingStrategyKind::Greedy)
    for (VectorizerConfig &C : Cs) {
      C.Strategy = Strategy;
      C.Name += std::string("-") + packingStrategyName(Strategy);
    }
  return Cs;
}

double lslp::bench::geomean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double V : Values)
    LogSum += std::log(V);
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

void lslp::bench::printTitle(const std::string &Title) {
  outs() << "\n== " << Title << " ==\n";
}

void lslp::bench::printRow(const std::string &Label,
                           const std::vector<std::string> &Cells,
                           unsigned LabelWidth, unsigned CellWidth) {
  outs().leftJustify(Label, LabelWidth);
  for (const std::string &Cell : Cells)
    outs().rightJustify(Cell, CellWidth);
  outs() << "\n";
}

std::string lslp::bench::fmt(double Value, unsigned Decimals) {
  return formatDouble(Value, Decimals);
}
