//===- bench/BenchUtil.cpp - Shared benchmark harness helpers -----------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include "costmodel/TargetTransformInfo.h"
#include "diag/RemarkEngine.h"
#include "interp/Interpreter.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "ir/Verifier.h"
#include "support/Debug.h"
#include "support/OStream.h"
#include "support/StringUtil.h"
#include "vectorizer/SLPVectorizerPass.h"

#include <cmath>

using namespace lslp;
using namespace lslp::bench;

Measurement lslp::bench::measureKernel(const KernelSpec &Spec,
                                       const VectorizerConfig *Config,
                                       uint64_t N) {
  Context Ctx;
  SkylakeTTI TTI;
  auto M = buildKernelModule(Spec, Ctx);
  Measurement Out;
  if (Config) {
    RemarkEngine Engine;
    VectorizerConfig Cfg = *Config;
    Cfg.Remarks = &Engine;
    SLPVectorizerPass Pass(Cfg, TTI);
    ModuleReport R = Pass.runOnModule(*M);
    Out.StaticCost = R.acceptedCost();
    Out.Accepted = R.numAccepted();
    Out.Explanation = Engine.summary();
    if (!verifyModule(*M))
      reportFatalError("vectorized module failed verification: " + Spec.Name);
  }
  Interpreter Interp(*M, &TTI);
  initKernelMemory(Interp, *M);
  auto Result =
      Interp.run(M->getFunction(Spec.EntryFunction),
                 {RuntimeValue::makeInt(Ctx.getInt64Ty(),
                                        N ? N : Spec.DefaultN)});
  Out.DynamicCost = static_cast<double>(Result.TotalCost);
  Out.Checksum = checksumGlobals(Interp, *M, Spec.OutputArrays);
  return Out;
}

SuiteMeasurement lslp::bench::measureSuite(const SuiteSpec &Suite,
                                           const VectorizerConfig *Config) {
  Context Ctx;
  SkylakeTTI TTI;
  auto M = buildSuiteModule(Suite, Ctx);
  SuiteMeasurement Out;
  if (Config) {
    SLPVectorizerPass Pass(*Config, TTI);
    Out.StaticCost = Pass.runOnModule(*M).acceptedCost();
    if (!verifyModule(*M))
      reportFatalError("vectorized suite failed verification: " + Suite.Name);
  }
  Interpreter Interp(*M, &TTI);
  initKernelMemory(Interp, *M);
  for (size_t I = 0; I < Suite.Members.size(); ++I) {
    const KernelSpec *K = findKernel(Suite.Members[I]);
    auto Result = Interp.run(
        M->getFunction(K->EntryFunction),
        {RuntimeValue::makeInt(Ctx.getInt64Ty(), K->DefaultN)});
    Out.WeightedDynamicCost +=
        Suite.Weights[I] * static_cast<double>(Result.TotalCost);
  }
  return Out;
}

std::vector<VectorizerConfig> lslp::bench::paperConfigs() {
  return {VectorizerConfig::slpNoReordering(), VectorizerConfig::slp(),
          VectorizerConfig::lslp()};
}

double lslp::bench::geomean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double V : Values)
    LogSum += std::log(V);
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

void lslp::bench::printTitle(const std::string &Title) {
  outs() << "\n== " << Title << " ==\n";
}

void lslp::bench::printRow(const std::string &Label,
                           const std::vector<std::string> &Cells,
                           unsigned LabelWidth, unsigned CellWidth) {
  outs().leftJustify(Label, LabelWidth);
  for (const std::string &Cell : Cells)
    outs().rightJustify(Cell, CellWidth);
  outs() << "\n";
}

std::string lslp::bench::fmt(double Value, unsigned Decimals) {
  return formatDouble(Value, Decimals);
}
