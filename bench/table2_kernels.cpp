//===- bench/table2_kernels.cpp - Table 2: kernel inventory --------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Table 2 of the paper: the kernels used for the evaluation,
// their benchmark of origin and source location, extended with this
// reproduction's entry point, lane structure and verification status.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include "ir/Context.h"
#include "ir/Module.h"
#include "ir/Verifier.h"
#include "support/OStream.h"

using namespace lslp;
using namespace lslp::bench;

int main() {
  printTitle("Table 2: kernels used for evaluation");
  outs().leftJustify("Kernel", 26);
  outs().leftJustify("Benchmark", 28);
  outs().leftJustify("Filename:Line", 24);
  outs().leftJustify("Entry", 22);
  outs() << "IR insts\n";
  outs() << std::string(108, '-') << "\n";

  for (const KernelSpec *K : getFigureKernels()) {
    Context Ctx;
    auto M = buildKernelModule(*K, Ctx);
    bool Ok = verifyModule(*M);
    unsigned Insts = M->getFunction(K->EntryFunction)->getInstructionCount();
    outs().leftJustify(K->Name, 26);
    outs().leftJustify(K->Origin, 28);
    outs().leftJustify(K->SourceLocation, 24);
    outs().leftJustify(K->EntryFunction, 22);
    outs() << Insts << (Ok ? "" : "  (VERIFY FAILED)") << "\n";
  }

  outs() << "\nKernel motifs (reproduction notes):\n";
  for (const KernelSpec *K : getFigureKernels())
    outs() << "  " << K->Name << ": " << K->Description << "\n";
  return 0;
}
