//===- bench/fig13_sensitivity.cpp - Figure 13: optimization sensitivity -------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 13: the contribution of LSLP's two features measured
// in isolation. LSLP-LA{0,1,2,4}: look-ahead depth swept with unlimited
// multi-nodes. LSLP-Multi{1,2,3}: multi-node size swept with look-ahead
// depth 8. SLP and full LSLP (LA=8, multi unlimited) as references.
// Also includes the DESIGN.md ablation of the look-ahead score
// aggregation (sum, the paper's choice, vs max from footnote 4).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include "support/OStream.h"

using namespace lslp;
using namespace lslp::bench;

namespace {

std::vector<std::pair<std::string, VectorizerConfig>> sweepConfigs() {
  std::vector<std::pair<std::string, VectorizerConfig>> Configs;
  Configs.push_back({"SLP", VectorizerConfig::slp()});
  for (unsigned LA : {0u, 1u, 2u, 4u}) {
    VectorizerConfig C = VectorizerConfig::lslp(LA);
    Configs.push_back({"LSLP-LA" + std::to_string(LA), C});
  }
  for (unsigned Size : {1u, 2u, 3u}) {
    VectorizerConfig C = VectorizerConfig::lslp(8);
    C.MaxMultiNodeSize = Size;
    Configs.push_back({"LSLP-Multi" + std::to_string(Size), C});
  }
  Configs.push_back({"LSLP", VectorizerConfig::lslp(8)});
  VectorizerConfig MaxAgg = VectorizerConfig::lslp(8);
  MaxAgg.ScoreAggregation = VectorizerConfig::ScoreAggregationKind::Max;
  Configs.push_back({"LSLP-maxagg", MaxAgg});
  VectorizerConfig Exhaustive = VectorizerConfig::lslp(8);
  Exhaustive.ReorderStrategy =
      VectorizerConfig::ReorderStrategyKind::ExhaustivePerLane;
  Configs.push_back({"LSLP-exh", Exhaustive});
  return Configs;
}

} // namespace

int main(int argc, char **argv) {
  BenchOptions Opts;
  if (!parseBenchArgs(argc, argv, Opts))
    return 1;
  auto Configs = sweepConfigs();

  printTitle("Figure 13: speedup over O3, feature sensitivity sweep");
  std::vector<std::string> Header;
  for (const auto &[Name, C] : Configs)
    Header.push_back(Name);
  printRow("kernel", Header, 26, 12);
  outs() << std::string(26 + 12 * Configs.size(), '-') << "\n";

  JsonReport Report("fig13");
  std::vector<std::vector<double>> Speedups(Configs.size());
  for (const KernelSpec *K : getFigureKernels()) {
    Measurement O3 = measureKernel(*K, nullptr, 0, Opts.Engine);
    Report.add(K->Name, "O3", Opts.Engine, O3.DynamicCost, O3.WallMs,
               O3.StaticCost);
    std::vector<std::string> Cells;
    for (size_t CI = 0; CI < Configs.size(); ++CI) {
      Measurement Vec = measureKernel(*K, &Configs[CI].second, 0, Opts.Engine);
      Report.add(K->Name, Configs[CI].first, Opts.Engine, Vec.DynamicCost,
                 Vec.WallMs, Vec.StaticCost);
      double Speedup = O3.DynamicCost / Vec.DynamicCost;
      Speedups[CI].push_back(Speedup);
      Cells.push_back(fmt(Speedup) + "x");
    }
    printRow(K->Name, Cells, 26, 12);
  }
  outs() << std::string(26 + 12 * Configs.size(), '-') << "\n";
  std::vector<std::string> GM;
  for (const auto &S : Speedups)
    GM.push_back(fmt(geomean(S)) + "x");
  printRow("GMean", GM, 26, 12);

  outs() << "\nExpected shape (paper 5.3): LA0 falls back to roughly SLP\n"
            "level; Multi-node size and look-ahead depth each contribute,\n"
            "with LA>=4 and Multi>=3 saturating on these kernels.\n"
            "Extra ablations: maxagg = footnote-4 max score aggregation;\n"
            "exh = footnote-3 exhaustive per-lane reordering (instead of\n"
            "the greedy single pass).\n";
  return Report.write(Opts.JsonPath) ? 0 : 1;
}
