//===- bench/fig10_static_cost.cpp - Figure 10: static cost --------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 10: the total static vectorization cost (sum of
// accepted graph costs; lower/more negative is better vectorization, the
// figure's y-axis says "the higher the better" for the absolute saving)
// seen by SLP-NR, SLP and LSLP on each kernel, with the arithmetic mean.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include "support/OStream.h"

using namespace lslp;
using namespace lslp::bench;

int main(int argc, char **argv) {
  BenchOptions Opts;
  if (!parseBenchArgs(argc, argv, Opts))
    return 1;
  printTitle("Figure 10: static vectorization cost (more negative = better)");
  JsonReport Report("fig10");
  std::vector<VectorizerConfig> Configs = paperConfigs(Opts.Strategy);
  // Header from the config names: identical to the historical fixed
  // header under the default strategy, "-global"-suffixed otherwise.
  std::vector<std::string> Header;
  for (const VectorizerConfig &C : Configs)
    Header.push_back(C.Name);
  printRow("kernel", Header);
  outs() << std::string(56, '-') << "\n";
  std::vector<double> Sums(Configs.size(), 0.0);
  unsigned Count = 0;

  for (const KernelSpec *K : getFigureKernels()) {
    std::vector<std::string> Cells;
    for (size_t CI = 0; CI < Configs.size(); ++CI) {
      Measurement Vec = measureKernel(*K, &Configs[CI], 0, Opts.Engine);
      Report.add(K->Name, Configs[CI].Name, Opts.Engine, Vec.DynamicCost,
                 Vec.WallMs, Vec.StaticCost);
      Sums[CI] += Vec.StaticCost;
      Cells.push_back(std::to_string(Vec.StaticCost));
    }
    ++Count;
    printRow(K->Name, Cells);
  }
  outs() << std::string(56, '-') << "\n";
  std::vector<std::string> MeanCells;
  for (double S : Sums)
    MeanCells.push_back(fmt(S / Count));
  printRow("Mean", MeanCells);
  return Report.write(Opts.JsonPath) ? 0 : 1;
}
