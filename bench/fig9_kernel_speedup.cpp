//===- bench/fig9_kernel_speedup.cpp - Figure 9: kernel speedups ---------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 9: execution speedup over O3 for SLP-NR, SLP and LSLP
// on the eight Table 2 kernels (left cluster, with GMean) and the three
// motivating examples (right cluster). "Execution" is the cycle-model
// interpreter (see DESIGN.md); speedup = O3 cycles / config cycles.
//
// With -explain, each kernel row is followed by one remark-derived line
// per configuration summarizing what the vectorizer actually did there
// (seeds, multi-nodes, gathers, accept/reject counts).
//
// Every (kernel, config) measurement is an independent cell (own Context,
// module, engine), so -jobs=N measures them concurrently; the table is
// printed from the ordered cell results and is byte-identical to -jobs=1.
// -parity measures the grid twice (parallel then serial) and exits 1 if
// any cycle count, static cost, or checksum differs.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include "support/Debug.h"
#include "support/OStream.h"

#include <string_view>

using namespace lslp;
using namespace lslp::bench;

int main(int argc, char **argv) {
  bool Explain = false;
  for (int I = 1; I < argc; ++I)
    if (std::string_view(argv[I]) == "-explain" ||
        std::string_view(argv[I]) == "--explain")
      Explain = true;
  BenchOptions Opts;
  if (!parseBenchArgs(argc, argv, Opts))
    return 1;

  std::vector<const KernelSpec *> Kernels = getFigureKernels();
  std::vector<VectorizerConfig> Configs = paperConfigs(Opts.Strategy);
  // Cell grid: one row per kernel, column 0 = O3 baseline, columns
  // 1..Configs.size() = the paper configurations.
  const size_t Cols = 1 + Configs.size();
  auto measureGrid = [&](unsigned Jobs) {
    return runCells(Jobs, Kernels.size() * Cols, [&](size_t I) {
      const VectorizerConfig *C = I % Cols ? &Configs[I % Cols - 1] : nullptr;
      return measureKernel(*Kernels[I / Cols], C, 0, Opts.Engine);
    });
  };
  std::vector<Measurement> Grid = measureGrid(Opts.Jobs);

  if (Opts.Parity) {
    std::vector<Measurement> Serial = measureGrid(1);
    for (size_t I = 0; I != Grid.size(); ++I)
      if (Grid[I].DynamicCost != Serial[I].DynamicCost ||
          Grid[I].StaticCost != Serial[I].StaticCost ||
          Grid[I].Checksum != Serial[I].Checksum) {
        errs() << "fig9 parity FAILED: " << Kernels[I / Cols]->Name << " ["
               << (I % Cols ? Configs[I % Cols - 1].Name : "O3")
               << "]: jobs=" << Opts.Jobs << " cycles "
               << fmt(Grid[I].DynamicCost, 0) << " cost "
               << Grid[I].StaticCost << " vs serial cycles "
               << fmt(Serial[I].DynamicCost, 0) << " cost "
               << Serial[I].StaticCost << "\n";
        return 1;
      }
    outs() << "fig9 parity OK: " << Grid.size()
           << " cells identical at jobs=" << Opts.Jobs << " and jobs=1\n";
  }

  printTitle("Figure 9: speedup over O3 (cycle model)");
  // Header from the config names: identical to the historical fixed
  // header under the default strategy, "-global"-suffixed otherwise.
  std::vector<std::string> Header;
  for (const VectorizerConfig &C : Configs)
    Header.push_back(C.Name);
  printRow("kernel", Header);
  outs() << std::string(56, '-') << "\n";

  JsonReport Report("fig9");
  std::vector<std::vector<double>> SpecSpeedups(Configs.size());

  for (size_t KI = 0; KI != Kernels.size(); ++KI) {
    const KernelSpec *K = Kernels[KI];
    const Measurement &O3 = Grid[KI * Cols];
    Report.add(K->Name, "O3", Opts.Engine, O3.DynamicCost, O3.WallMs,
               O3.StaticCost);
    std::vector<std::string> Cells;
    std::vector<std::string> Explanations;
    bool IsMotivation = K->Name.rfind("motivation", 0) == 0;
    for (size_t CI = 0; CI < Configs.size(); ++CI) {
      const Measurement &Vec = Grid[KI * Cols + 1 + CI];
      Report.add(K->Name, Configs[CI].Name, Opts.Engine, Vec.DynamicCost,
                 Vec.WallMs, Vec.StaticCost);
      if (Vec.Checksum != O3.Checksum)
        reportFatalError("checksum mismatch on " + K->Name);
      double Speedup = O3.DynamicCost / Vec.DynamicCost;
      Cells.push_back(fmt(Speedup) + "x");
      Explanations.push_back(Vec.Explanation);
      if (!IsMotivation)
        SpecSpeedups[CI].push_back(Speedup);
    }
    printRow(K->Name, Cells);
    if (Explain)
      for (size_t CI = 0; CI < Configs.size(); ++CI)
        outs() << "    " << Configs[CI].Name << ": " << Explanations[CI]
               << "\n";
    // The paper separates the SPEC kernels (with GMean) from the
    // motivating examples; print the GMean row between the clusters.
    if (K->Name == "453.quartic-cylinder") {
      std::vector<std::string> GMCells;
      for (const auto &S : SpecSpeedups)
        GMCells.push_back(fmt(geomean(S)) + "x");
      printRow("GMean (SPEC kernels)", GMCells);
      outs() << std::string(56, '-') << "\n";
    }
  }
  return Report.write(Opts.JsonPath) ? 0 : 1;
}
