//===- bench/fig9_kernel_speedup.cpp - Figure 9: kernel speedups ---------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 9: execution speedup over O3 for SLP-NR, SLP and LSLP
// on the eight Table 2 kernels (left cluster, with GMean) and the three
// motivating examples (right cluster). "Execution" is the cycle-model
// interpreter (see DESIGN.md); speedup = O3 cycles / config cycles.
//
// With -explain, each kernel row is followed by one remark-derived line
// per configuration summarizing what the vectorizer actually did there
// (seeds, multi-nodes, gathers, accept/reject counts).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include "support/Debug.h"
#include "support/OStream.h"

#include <string_view>

using namespace lslp;
using namespace lslp::bench;

int main(int argc, char **argv) {
  bool Explain = false;
  for (int I = 1; I < argc; ++I)
    if (std::string_view(argv[I]) == "-explain" ||
        std::string_view(argv[I]) == "--explain")
      Explain = true;
  BenchOptions Opts;
  if (!parseBenchArgs(argc, argv, Opts))
    return 1;

  printTitle("Figure 9: speedup over O3 (cycle model)");
  printRow("kernel", {"SLP-NR", "SLP", "LSLP"});
  outs() << std::string(56, '-') << "\n";

  JsonReport Report("fig9");
  std::vector<VectorizerConfig> Configs = paperConfigs();
  std::vector<std::vector<double>> SpecSpeedups(Configs.size());

  for (const KernelSpec *K : getFigureKernels()) {
    Measurement O3 = measureKernel(*K, nullptr, 0, Opts.Engine);
    Report.add(K->Name, "O3", Opts.Engine, O3.DynamicCost, O3.WallMs,
               O3.StaticCost);
    std::vector<std::string> Cells;
    std::vector<std::string> Explanations;
    bool IsMotivation = K->Name.rfind("motivation", 0) == 0;
    for (size_t CI = 0; CI < Configs.size(); ++CI) {
      Measurement Vec = measureKernel(*K, &Configs[CI], 0, Opts.Engine);
      Report.add(K->Name, Configs[CI].Name, Opts.Engine, Vec.DynamicCost,
                 Vec.WallMs, Vec.StaticCost);
      if (Vec.Checksum != O3.Checksum)
        reportFatalError("checksum mismatch on " + K->Name);
      double Speedup = O3.DynamicCost / Vec.DynamicCost;
      Cells.push_back(fmt(Speedup) + "x");
      Explanations.push_back(Vec.Explanation);
      if (!IsMotivation)
        SpecSpeedups[CI].push_back(Speedup);
    }
    printRow(K->Name, Cells);
    if (Explain)
      for (size_t CI = 0; CI < Configs.size(); ++CI)
        outs() << "    " << Configs[CI].Name << ": " << Explanations[CI]
               << "\n";
    // The paper separates the SPEC kernels (with GMean) from the
    // motivating examples; print the GMean row between the clusters.
    if (K->Name == "453.quartic-cylinder") {
      std::vector<std::string> GMCells;
      for (const auto &S : SpecSpeedups)
        GMCells.push_back(fmt(geomean(S)) + "x");
      printRow("GMean (SPEC kernels)", GMCells);
      outs() << std::string(56, '-') << "\n";
    }
  }
  return Report.write(Opts.JsonPath) ? 0 : 1;
}
