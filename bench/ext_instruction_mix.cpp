//===- bench/ext_instruction_mix.cpp - Dynamic instruction-mix shift -----------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Supplementary analysis: the dynamic scalar/vector instruction mix
// before and after LSLP, per kernel. This is the mechanism behind every
// speedup figure — vector ops replacing VL scalar ops — made visible.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include "costmodel/TargetTransformInfo.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "ir/Verifier.h"
#include "support/OStream.h"
#include "vectorizer/SLPVectorizerPass.h"

using namespace lslp;
using namespace lslp::bench;

namespace {

struct Mix {
  uint64_t ScalarMem = 0, ScalarALU = 0, VectorMem = 0, VectorALU = 0;
  uint64_t Shuffles = 0, LaneOps = 0, Total = 0;
};

Mix measureMix(const KernelSpec &Spec, bool Vectorize, EngineKind Kind) {
  Context Ctx;
  SkylakeTTI TTI;
  auto M = buildKernelModule(Spec, Ctx);
  if (Vectorize) {
    SLPVectorizerPass Pass(VectorizerConfig::lslp(), TTI);
    Pass.runOnModule(*M);
    verifyModule(*M);
  }
  auto Engine = ExecutionEngine::create(Kind, *M, &TTI);
  Engine->setCollectStats(true);
  initKernelMemory(*Engine, *M);
  auto R = Engine->run(M->getFunction(Spec.EntryFunction),
                       {RuntimeValue::makeInt(Ctx.getInt64Ty(), 512)});
  Mix Out;
  Out.Total = R.DynamicInsts;
  auto Tally = [](const std::map<ValueID, uint64_t> &Counts, uint64_t &Mem,
                  uint64_t &ALU, uint64_t &Shuf, uint64_t &Lane) {
    for (const auto &[Opc, N] : Counts) {
      if (Opc == ValueID::Load || Opc == ValueID::Store)
        Mem += N;
      else if (Opc >= ValueID::Add && Opc <= ValueID::FDiv)
        ALU += N;
      else if (Opc == ValueID::ShuffleVector)
        Shuf += N;
      else if (Opc == ValueID::InsertElement ||
               Opc == ValueID::ExtractElement)
        Lane += N;
    }
  };
  uint64_t IgnoredShuf = 0, IgnoredLane = 0;
  Tally(R.ScalarOpCounts, Out.ScalarMem, Out.ScalarALU, IgnoredShuf,
        IgnoredLane);
  Tally(R.VectorOpCounts, Out.VectorMem, Out.VectorALU, Out.Shuffles,
        Out.LaneOps);
  // Inserts/extracts produce scalars or vectors; count both sides.
  Out.LaneOps += IgnoredLane;
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  BenchOptions Opts;
  if (!parseBenchArgs(argc, argv, Opts))
    return 1;
  printTitle("Dynamic instruction mix, O3 vs LSLP (512 iterations)");
  printRow("kernel",
           {"sMem", "sALU", "vMem", "vALU", "shuf", "lane", "total"}, 30, 9);
  outs() << std::string(30 + 7 * 9, '-') << "\n";

  for (const KernelSpec *K : getFigureKernels()) {
    for (bool Vec : {false, true}) {
      Mix M = measureMix(*K, Vec, Opts.Engine);
      printRow(std::string(Vec ? "  +LSLP " : "") + K->Name,
               {std::to_string(M.ScalarMem), std::to_string(M.ScalarALU),
                std::to_string(M.VectorMem), std::to_string(M.VectorALU),
                std::to_string(M.Shuffles), std::to_string(M.LaneOps),
                std::to_string(M.Total)},
               30, 9);
    }
  }
  outs() << "\nsMem/sALU: scalar memory/arithmetic ops; vMem/vALU: vector\n"
            "ops; shuf/lane: shuffles and insert/extractelement overhead\n"
            "introduced by gathers, blends and extracts.\n";
  return 0;
}
