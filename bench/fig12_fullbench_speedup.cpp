//===- bench/fig12_fullbench_speedup.cpp - Figure 12: whole-benchmark speedup --===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 12: execution speedup over O3 for the full
// benchmarks. Each suite's execution is the weighted sum of its members'
// cycle-model costs; the scalar fillers dominate, so whole-benchmark
// effects sit in the few-percent range as in the paper.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include "support/OStream.h"

using namespace lslp;
using namespace lslp::bench;

namespace {

/// Cross-engine timed smoke (-engine-smoke): every (suite, config) cell
/// executes on BOTH engines. The simulated cycle counts must be
/// bit-identical (the vm is a backend of the same cycle-model machine,
/// not a different machine), and the vm must be measurably faster in
/// host wall-clock — the whole point of compiling to bytecode. Exit 1 on
/// either violation, so CI can gate on it.
int runEngineSmoke(const BenchOptions &Opts) {
  printTitle("Figure 12 engine smoke: interp vs vm on the full suites");
  printRow("benchmark", {"config", "cycles", "interp-ms", "vm-ms"}, 16, 12);
  outs() << std::string(16 + 4 * 12, '-') << "\n";

  JsonReport Report("fig12-engine-smoke");
  std::vector<VectorizerConfig> Configs = paperConfigs();
  double InterpMs = 0, VmMs = 0;
  for (const SuiteSpec &Suite : getSuites()) {
    for (int CI = -1; CI < static_cast<int>(Configs.size()); ++CI) {
      const VectorizerConfig *C = CI < 0 ? nullptr : &Configs[CI];
      std::string Name = CI < 0 ? "O3" : Configs[CI].Name;
      SuiteMeasurement A = measureSuite(Suite, C, EngineKind::TreeWalk);
      SuiteMeasurement B = measureSuite(Suite, C, EngineKind::Bytecode);
      if (A.WeightedDynamicCost != B.WeightedDynamicCost) {
        errs() << "fig12 engine smoke FAILED: cycle mismatch on "
               << Suite.Name << " [" << Name << "]: interp "
               << fmt(A.WeightedDynamicCost, 0) << " vs vm "
               << fmt(B.WeightedDynamicCost, 0) << "\n";
        return 1;
      }
      InterpMs += A.WallMs;
      VmMs += B.WallMs;
      Report.add(Suite.Name, Name, EngineKind::TreeWalk,
                 A.WeightedDynamicCost, A.WallMs, A.StaticCost);
      Report.add(Suite.Name, Name, EngineKind::Bytecode,
                 B.WeightedDynamicCost, B.WallMs, B.StaticCost);
      printRow(Suite.Name,
               {Name, fmt(A.WeightedDynamicCost, 0), fmt(A.WallMs, 2),
                fmt(B.WallMs, 2)},
               16, 12);
    }
  }
  outs() << std::string(16 + 4 * 12, '-') << "\n";
  double Speedup = VmMs > 0 ? InterpMs / VmMs : 0;
  outs() << "total: interp " << fmt(InterpMs, 1) << " ms, vm "
         << fmt(VmMs, 1) << " ms, vm speedup " << fmt(Speedup, 2) << "x\n";
  if (!Report.write(Opts.JsonPath))
    return 1;
  // Gate well below the typical margin so scheduling noise cannot flake
  // the build, while still catching a vm that regressed to tree-walker
  // speed.
  if (Speedup < 2.0) {
    errs() << "fig12 engine smoke FAILED: vm only " << fmt(Speedup, 2)
           << "x faster than the tree-walker (want >= 2x)\n";
    return 1;
  }
  outs() << "engine smoke OK: identical cycles, vm " << fmt(Speedup, 2)
         << "x faster\n";
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  BenchOptions Opts;
  if (!parseBenchArgs(argc, argv, Opts))
    return 1;
  if (Opts.EngineSmoke)
    return runEngineSmoke(Opts);

  printTitle("Figure 12: whole-benchmark speedup over O3 (cycle model)");
  printRow("benchmark", {"SLP-NR", "SLP", "LSLP"});
  outs() << std::string(56, '-') << "\n";

  JsonReport Report("fig12");
  std::vector<VectorizerConfig> Configs = paperConfigs();
  std::vector<std::vector<double>> Speedups(Configs.size());

  // Cell grid: column 0 = O3, columns 1.. = the paper configurations;
  // measured concurrently under -jobs=N, printed from the ordered results.
  const std::vector<SuiteSpec> &Suites = getSuites();
  const size_t Cols = 1 + Configs.size();
  std::vector<SuiteMeasurement> Grid =
      runCells(Opts.Jobs, Suites.size() * Cols, [&](size_t I) {
        const VectorizerConfig *C =
            I % Cols ? &Configs[I % Cols - 1] : nullptr;
        return measureSuite(Suites[I / Cols], C, Opts.Engine);
      });

  for (size_t SI = 0; SI != Suites.size(); ++SI) {
    const SuiteSpec &Suite = Suites[SI];
    const SuiteMeasurement &O3 = Grid[SI * Cols];
    Report.add(Suite.Name, "O3", Opts.Engine, O3.WeightedDynamicCost,
               O3.WallMs, O3.StaticCost);
    std::vector<std::string> Cells;
    for (size_t CI = 0; CI < Configs.size(); ++CI) {
      const SuiteMeasurement &Vec = Grid[SI * Cols + 1 + CI];
      Report.add(Suite.Name, Configs[CI].Name, Opts.Engine,
                 Vec.WeightedDynamicCost, Vec.WallMs, Vec.StaticCost);
      double Speedup = O3.WeightedDynamicCost / Vec.WeightedDynamicCost;
      Speedups[CI].push_back(Speedup);
      Cells.push_back(fmt(Speedup, 3) + "x");
    }
    printRow(Suite.Name, Cells);
  }
  outs() << std::string(56, '-') << "\n";
  std::vector<std::string> GM;
  for (const auto &S : Speedups)
    GM.push_back(fmt(geomean(S), 3) + "x");
  printRow("GMean", GM);
  return Report.write(Opts.JsonPath) ? 0 : 1;
}
