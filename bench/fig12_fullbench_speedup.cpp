//===- bench/fig12_fullbench_speedup.cpp - Figure 12: whole-benchmark speedup --===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 12: execution speedup over O3 for the full
// benchmarks. Each suite's execution is the weighted sum of its members'
// cycle-model costs; the scalar fillers dominate, so whole-benchmark
// effects sit in the few-percent range as in the paper.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include "support/OStream.h"

using namespace lslp;
using namespace lslp::bench;

int main() {
  printTitle("Figure 12: whole-benchmark speedup over O3 (cycle model)");
  printRow("benchmark", {"SLP-NR", "SLP", "LSLP"});
  outs() << std::string(56, '-') << "\n";

  std::vector<VectorizerConfig> Configs = paperConfigs();
  std::vector<std::vector<double>> Speedups(Configs.size());

  for (const SuiteSpec &Suite : getSuites()) {
    SuiteMeasurement O3 = measureSuite(Suite, nullptr);
    std::vector<std::string> Cells;
    for (size_t CI = 0; CI < Configs.size(); ++CI) {
      SuiteMeasurement Vec = measureSuite(Suite, &Configs[CI]);
      double Speedup = O3.WeightedDynamicCost / Vec.WeightedDynamicCost;
      Speedups[CI].push_back(Speedup);
      Cells.push_back(fmt(Speedup, 3) + "x");
    }
    printRow(Suite.Name, Cells);
  }
  outs() << std::string(56, '-') << "\n";
  std::vector<std::string> GM;
  for (const auto &S : Speedups)
    GM.push_back(fmt(geomean(S), 3) + "x");
  printRow("GMean", GM);
  return 0;
}
