//===- bench/fig12_fullbench_speedup.cpp - Figure 12: whole-benchmark speedup --===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 12: execution speedup over O3 for the full
// benchmarks. Each suite's execution is the weighted sum of its members'
// cycle-model costs; the scalar fillers dominate, so whole-benchmark
// effects sit in the few-percent range as in the paper.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include "jit/JITEngine.h"
#include "support/OStream.h"

#include <algorithm>

using namespace lslp;
using namespace lslp::bench;

namespace {

/// Cross-engine timed smoke (-engine-smoke): every (suite, config) cell
/// executes on every engine. The simulated cycle counts must be
/// bit-identical (the vm and jit are backends of the same cycle-model
/// machine, not different machines), and each tier must be measurably
/// faster in host wall-clock than the one below it — the whole point of
/// compiling to bytecode and then to machine code. Exit 1 on any
/// violation, so CI can gate on it. On hosts that cannot execute
/// generated x86-64 code the jit column is skipped with a note (its
/// engine would silently be the vm again, making the speed gate
/// meaningless).
int runEngineSmoke(const BenchOptions &Opts) {
  const bool HasJit = jit::available();
  printTitle("Figure 12 engine smoke: interp vs vm vs jit on the full "
             "suites");
  printRow("benchmark",
           {"config", "cycles", "interp-ms", "vm-ms", "jit-ms"}, 16, 12);
  outs() << std::string(16 + 5 * 12, '-') << "\n";

  JsonReport Report("fig12-engine-smoke");
  std::vector<VectorizerConfig> Configs = paperConfigs();
  double InterpMs = 0, VmMs = 0, JitMs = 0;
  for (const SuiteSpec &Suite : getSuites()) {
    for (int CI = -1; CI < static_cast<int>(Configs.size()); ++CI) {
      const VectorizerConfig *C = CI < 0 ? nullptr : &Configs[CI];
      std::string Name = CI < 0 ? "O3" : Configs[CI].Name;
      // Best-of-two wall clocks: the speed gates below compare engines on
      // wall time, and one scheduler preemption inside a 0.5 ms cell is
      // enough to flip them. The cycle counts are deterministic, so the
      // re-run only tightens the timing.
      auto Measure = [&](EngineKind Kind) {
        SuiteMeasurement First = measureSuite(Suite, C, Kind);
        SuiteMeasurement Second = measureSuite(Suite, C, Kind);
        First.WallMs = std::min(First.WallMs, Second.WallMs);
        return First;
      };
      SuiteMeasurement A = Measure(EngineKind::TreeWalk);
      SuiteMeasurement B = Measure(EngineKind::Bytecode);
      if (A.WeightedDynamicCost != B.WeightedDynamicCost) {
        errs() << "fig12 engine smoke FAILED: cycle mismatch on "
               << Suite.Name << " [" << Name << "]: interp "
               << fmt(A.WeightedDynamicCost, 0) << " vs vm "
               << fmt(B.WeightedDynamicCost, 0) << "\n";
        return 1;
      }
      SuiteMeasurement J;
      if (HasJit) {
        J = Measure(EngineKind::NativeJit);
        if (A.WeightedDynamicCost != J.WeightedDynamicCost) {
          errs() << "fig12 engine smoke FAILED: cycle mismatch on "
                 << Suite.Name << " [" << Name << "]: interp "
                 << fmt(A.WeightedDynamicCost, 0) << " vs jit "
                 << fmt(J.WeightedDynamicCost, 0) << "\n";
          return 1;
        }
      }
      InterpMs += A.WallMs;
      VmMs += B.WallMs;
      JitMs += J.WallMs;
      Report.add(Suite.Name, Name, EngineKind::TreeWalk,
                 A.WeightedDynamicCost, A.WallMs, A.StaticCost);
      Report.add(Suite.Name, Name, EngineKind::Bytecode,
                 B.WeightedDynamicCost, B.WallMs, B.StaticCost);
      if (HasJit)
        Report.add(Suite.Name, Name, EngineKind::NativeJit,
                   J.WeightedDynamicCost, J.WallMs, J.StaticCost);
      printRow(Suite.Name,
               {Name, fmt(A.WeightedDynamicCost, 0), fmt(A.WallMs, 2),
                fmt(B.WallMs, 2), HasJit ? fmt(J.WallMs, 2) : "skip"},
               16, 12);
    }
  }
  outs() << std::string(16 + 5 * 12, '-') << "\n";
  double VmSpeedup = VmMs > 0 ? InterpMs / VmMs : 0;
  double JitSpeedup = JitMs > 0 ? VmMs / JitMs : 0;
  outs() << "total: interp " << fmt(InterpMs, 1) << " ms, vm "
         << fmt(VmMs, 1) << " ms (" << fmt(VmSpeedup, 2)
         << "x over interp)";
  if (HasJit)
    outs() << ", jit " << fmt(JitMs, 1) << " ms (" << fmt(JitSpeedup, 2)
           << "x over vm)";
  outs() << "\n";
  if (!Report.write(Opts.JsonPath))
    return 1;
  // Gates well below the typical margins so scheduling noise cannot flake
  // the build, while still catching a vm that regressed to tree-walker
  // speed or a jit that regressed to dispatch-loop speed.
  if (VmSpeedup < 2.0) {
    errs() << "fig12 engine smoke FAILED: vm only " << fmt(VmSpeedup, 2)
           << "x faster than the tree-walker (want >= 2x)\n";
    return 1;
  }
  if (HasJit && JitSpeedup < 2.0) {
    errs() << "fig12 engine smoke FAILED: jit only " << fmt(JitSpeedup, 2)
           << "x faster than the vm (want >= 2x)\n";
    return 1;
  }
  if (!HasJit)
    outs() << "note: jit column skipped (this host cannot execute "
              "generated x86-64 code)\n";
  outs() << "engine smoke OK: identical cycles, vm " << fmt(VmSpeedup, 2)
         << "x over interp"
         << (HasJit ? ", jit " + fmt(JitSpeedup, 2) + "x over vm" : "")
         << "\n";
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  BenchOptions Opts;
  if (!parseBenchArgs(argc, argv, Opts))
    return 1;
  if (Opts.EngineSmoke)
    return runEngineSmoke(Opts);

  printTitle("Figure 12: whole-benchmark speedup over O3 (cycle model)");
  printRow("benchmark", {"SLP-NR", "SLP", "LSLP"});
  outs() << std::string(56, '-') << "\n";

  JsonReport Report("fig12");
  std::vector<VectorizerConfig> Configs = paperConfigs();
  std::vector<std::vector<double>> Speedups(Configs.size());

  // Cell grid: column 0 = O3, columns 1.. = the paper configurations;
  // measured concurrently under -jobs=N, printed from the ordered results.
  const std::vector<SuiteSpec> &Suites = getSuites();
  const size_t Cols = 1 + Configs.size();
  std::vector<SuiteMeasurement> Grid =
      runCells(Opts.Jobs, Suites.size() * Cols, [&](size_t I) {
        const VectorizerConfig *C =
            I % Cols ? &Configs[I % Cols - 1] : nullptr;
        return measureSuite(Suites[I / Cols], C, Opts.Engine);
      });

  for (size_t SI = 0; SI != Suites.size(); ++SI) {
    const SuiteSpec &Suite = Suites[SI];
    const SuiteMeasurement &O3 = Grid[SI * Cols];
    Report.add(Suite.Name, "O3", Opts.Engine, O3.WeightedDynamicCost,
               O3.WallMs, O3.StaticCost);
    std::vector<std::string> Cells;
    for (size_t CI = 0; CI < Configs.size(); ++CI) {
      const SuiteMeasurement &Vec = Grid[SI * Cols + 1 + CI];
      Report.add(Suite.Name, Configs[CI].Name, Opts.Engine,
                 Vec.WeightedDynamicCost, Vec.WallMs, Vec.StaticCost);
      double Speedup = O3.WeightedDynamicCost / Vec.WeightedDynamicCost;
      Speedups[CI].push_back(Speedup);
      Cells.push_back(fmt(Speedup, 3) + "x");
    }
    printRow(Suite.Name, Cells);
  }
  outs() << std::string(56, '-') << "\n";
  std::vector<std::string> GM;
  for (const auto &S : Speedups)
    GM.push_back(fmt(geomean(S), 3) + "x");
  printRow("GMean", GM);
  return Report.write(Opts.JsonPath) ? 0 : 1;
}
