//===- bench/fig_motivation_costs.cpp - Figures 2-4: motivation graphs ---------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Regenerates the static SLP-graph costs of the three motivating examples
// (Figures 2(c)/(d), 3(c)/(d) and 4(c)/(d)) and compares them to the
// values printed in the paper's figures.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include "costmodel/TargetTransformInfo.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "support/OStream.h"
#include "vectorizer/SLPVectorizerPass.h"

using namespace lslp;
using namespace lslp::bench;

namespace {

/// Cost of the (single) graph attempt for a motivation kernel under a
/// config, regardless of acceptance.
int graphCost(const char *Kernel, const VectorizerConfig &Config) {
  const KernelSpec *Spec = findKernel(Kernel);
  Context Ctx;
  SkylakeTTI TTI;
  auto M = buildKernelModule(*Spec, Ctx);
  SLPVectorizerPass Pass(Config, TTI);
  ModuleReport R = Pass.runOnModule(*M);
  int Cost = 0;
  for (const FunctionReport &F : R.Functions)
    for (const GraphAttempt &A : F.Attempts)
      Cost += A.Cost;
  return Cost;
}

struct PaperRow {
  const char *Kernel;
  int PaperSLP;
  int PaperLSLP;
};

} // namespace

int main(int argc, char **argv) {
  BenchOptions Opts;
  if (!parseBenchArgs(argc, argv, Opts))
    return 1;
  printTitle("Figures 2-4: motivating-example SLP graph costs "
             "(vectorized iff cost < 0)");
  printRow("kernel", {"SLP", "LSLP", "paper-SLP", "paper-LSLP"});
  outs() << std::string(66, '-') << "\n";

  JsonReport Report("fig-motivation");
  const PaperRow Rows[] = {
      {"motivation-loads", 0, -6},
      {"motivation-opcodes", 4, -2},
      {"motivation-multi", -2, -10},
  };
  for (const PaperRow &Row : Rows) {
    int SLP = graphCost(Row.Kernel, VectorizerConfig::slp());
    int LSLP = graphCost(Row.Kernel, VectorizerConfig::lslp());
    // A static figure: the graph cost rides in static_cost, cycles and
    // wall_ms record as 0.
    Report.add(Row.Kernel, "SLP", Opts.Engine, 0, 0, SLP);
    Report.add(Row.Kernel, "LSLP", Opts.Engine, 0, 0, LSLP);
    printRow(Row.Kernel,
             {std::to_string(SLP), std::to_string(LSLP),
              std::to_string(Row.PaperSLP), std::to_string(Row.PaperLSLP)});
  }
  outs() << "\nNote: for motivation-opcodes the paper charges failed mixed\n"
            "const/instruction slots as two +2 gathers; this reproduction\n"
            "pairs the leftover constants into a free constant vector, so\n"
            "the (also unprofitable) graph costs 0 instead of +4. The\n"
            "vectorize/don't-vectorize decision matches the paper on all\n"
            "three examples.\n";
  return Report.write(Opts.JsonPath) ? 0 : 1;
}
