//===- bench/micro_vectorizer.cpp - Micro-benchmarks of the pass pieces --------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// google-benchmark micro-benchmarks supporting the Figure 13/14 analysis:
// where LSLP's compile time goes (look-ahead scoring as a function of
// depth, multi-node graph construction, bundle scheduling) and the
// interpreter's execution throughput.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include "costmodel/TargetTransformInfo.h"
#include "ir/BasicBlock.h"
#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/Module.h"
#include "vectorizer/GraphBuilder.h"
#include "vectorizer/LookAhead.h"
#include "vectorizer/SLPVectorizerPass.h"
#include "vectorizer/SeedCollector.h"

#include <benchmark/benchmark.h>

using namespace lslp;
using namespace lslp::bench;

namespace {

/// Look-ahead score computation as a function of the depth limit, on the
/// calc-z3 kernel's fadd roots (deep product trees).
void BM_LookAheadScore(benchmark::State &State) {
  const unsigned Depth = static_cast<unsigned>(State.range(0));
  Context Ctx;
  const KernelSpec *Spec = findKernel("453.calc-z3");
  auto M = buildKernelModule(*Spec, Ctx);
  // Find two isomorphic fadd roots (the stored values of lanes 0 and 1).
  std::vector<Value *> Roots;
  for (const auto &BB : *M->getFunction(Spec->EntryFunction))
    for (const auto &I : *BB)
      if (auto *St = dyn_cast<StoreInst>(I.get()))
        Roots.push_back(St->getValueOperand());
  for (auto _ : State) {
    int Score = getLookAheadScore(Roots[0], Roots[1], Depth);
    benchmark::DoNotOptimize(Score);
  }
}
BENCHMARK(BM_LookAheadScore)->DenseRange(0, 8, 1);

/// Whole graph construction (no codegen) for SLP vs LSLP on the
/// associativity-mismatch kernel.
void buildGraphOnly(benchmark::State &State, VectorizerConfig Config) {
  Context Ctx;
  SkylakeTTI TTI;
  const KernelSpec *Spec = findKernel("motivation-multi");
  auto M = buildKernelModule(*Spec, Ctx);
  BasicBlock *Body =
      M->getFunction(Spec->EntryFunction)->getBlockByName("loop");
  auto Seeds = collectStoreSeeds(*Body, TTI);
  for (auto _ : State) {
    SLPGraphBuilder Builder(Config, *Body);
    auto G = Builder.build(Seeds[0]);
    benchmark::DoNotOptimize(G.has_value());
  }
}
void BM_BuildGraph_SLP(benchmark::State &State) {
  buildGraphOnly(State, VectorizerConfig::slp());
}
void BM_BuildGraph_LSLP(benchmark::State &State) {
  buildGraphOnly(State, VectorizerConfig::lslp());
}
BENCHMARK(BM_BuildGraph_SLP);
BENCHMARK(BM_BuildGraph_LSLP);

/// Full pass over each kernel module (build + cost + codegen).
void BM_FullPass(benchmark::State &State) {
  const KernelSpec *Spec =
      getFigureKernels()[static_cast<size_t>(State.range(0))];
  State.SetLabel(Spec->Name);
  SkylakeTTI TTI;
  for (auto _ : State) {
    Context Ctx;
    auto M = buildKernelModule(*Spec, Ctx);
    SLPVectorizerPass Pass(VectorizerConfig::lslp(), TTI);
    ModuleReport R = Pass.runOnModule(*M);
    benchmark::DoNotOptimize(&R);
  }
}
BENCHMARK(BM_FullPass)->DenseRange(0, 10, 1);

/// Execution-engine throughput (instructions per second) on the scalar
/// motivation-loads kernel, for the tree-walker (range 0) and the
/// bytecode vm (range 1).
void BM_EngineThroughput(benchmark::State &State) {
  EngineKind Kind =
      State.range(0) ? EngineKind::Bytecode : EngineKind::TreeWalk;
  State.SetLabel(engineKindName(Kind));
  Context Ctx;
  SkylakeTTI TTI;
  const KernelSpec *Spec = findKernel("motivation-loads");
  auto M = buildKernelModule(*Spec, Ctx);
  auto Engine = ExecutionEngine::create(Kind, *M, &TTI);
  initKernelMemory(*Engine, *M);
  Function *F = M->getFunction(Spec->EntryFunction);
  uint64_t Insts = 0;
  for (auto _ : State) {
    auto R = Engine->run(
        F, {RuntimeValue::makeInt(Ctx.getInt64Ty(), Spec->DefaultN)});
    Insts += R.DynamicInsts;
    benchmark::DoNotOptimize(R.TotalCost);
  }
  State.SetItemsProcessed(static_cast<int64_t>(Insts));
}
BENCHMARK(BM_EngineThroughput)->DenseRange(0, 1, 1);

} // namespace

BENCHMARK_MAIN();
