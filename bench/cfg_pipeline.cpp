//===- bench/cfg_pipeline.cpp - CFG pipeline benchmarks ------------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// google-benchmark coverage for the pre-vectorization CFG pipeline: pass
// runtime for if-conversion and loop unrolling, and the simulated-cycle
// effect of the full flatten+unroll+vectorize pipeline on a branchy kernel
// and a counted loop — the two shapes the plain vectorizer cannot touch
// (the branch splits the block; the loop body holds one lane).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include "costmodel/TargetTransformInfo.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "parser/Parser.h"
#include "transforms/IfConversion.h"
#include "transforms/LoopUnroll.h"
#include "vectorizer/SLPVectorizerPass.h"

#include <benchmark/benchmark.h>

using namespace lslp;

namespace {

/// Four independent diamonds feeding four adjacent stores: dead to the
/// seed collector until if-conversion flattens the function.
const char *BranchyQuadSrc = R"(
global @A = [16 x i64]
global @O = [16 x i64]
define void @f() {
entry:
  %p0 = gep i64, ptr @A, i64 0
  %a0 = load i64, ptr %p0
  %p1 = gep i64, ptr @A, i64 1
  %a1 = load i64, ptr %p1
  %p2 = gep i64, ptr @A, i64 2
  %a2 = load i64, ptr %p2
  %p3 = gep i64, ptr @A, i64 3
  %a3 = load i64, ptr %p3
  %c = icmp slt i64 %a0, 100
  br i1 %c, label %then, label %else
then:
  %t0 = add i64 %a0, 7
  %t1 = add i64 %a1, 7
  %t2 = add i64 %a2, 7
  %t3 = add i64 %a3, 7
  br label %join
else:
  %e0 = mul i64 %a0, 3
  %e1 = mul i64 %a1, 3
  %e2 = mul i64 %a2, 3
  %e3 = mul i64 %a3, 3
  br label %join
join:
  %m0 = phi i64 [ %t0, %then ], [ %e0, %else ]
  %m1 = phi i64 [ %t1, %then ], [ %e1, %else ]
  %m2 = phi i64 [ %t2, %then ], [ %e2, %else ]
  %m3 = phi i64 [ %t3, %then ], [ %e3, %else ]
  %q0 = gep i64, ptr @O, i64 0
  store i64 %m0, ptr %q0
  %q1 = gep i64, ptr @O, i64 1
  store i64 %m1, ptr %q1
  %q2 = gep i64, ptr @O, i64 2
  store i64 %m2, ptr %q2
  %q3 = gep i64, ptr @O, i64 3
  store i64 %m3, ptr %q3
  ret void
}
)";

/// OUT[i] = IN0[i] + IN1[i], one lane per iteration over a trip-64 loop:
/// nothing to pack until the unroller widens the body.
const char *CountedLoopSrc = R"(
global @IN0 = [64 x i64]
global @IN1 = [64 x i64]
global @OUT = [64 x i64]
define void @f() {
entry:
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %next, %loop ]
  %p0 = gep i64, ptr @IN0, i64 %i
  %p1 = gep i64, ptr @IN1, i64 %i
  %a = load i64, ptr %p0
  %b = load i64, ptr %p1
  %s = add i64 %a, %b
  %q = gep i64, ptr @OUT, i64 %i
  store i64 %s, ptr %q
  %next = add i64 %i, 1
  %c = icmp ult i64 %next, 64
  br i1 %c, label %loop, label %exit
exit:
  ret void
}
)";

/// Pass runtime: parse + if-convert per iteration (the pass mutates the
/// module, so every iteration needs a fresh parse; the parse is the same
/// work in both counters and cancels out of comparisons).
void BM_IfConversionPass(benchmark::State &State) {
  for (auto _ : State) {
    Context Ctx;
    auto M = parseModuleOrDie(BranchyQuadSrc, Ctx);
    unsigned Converted = runIfConversion(*M);
    benchmark::DoNotOptimize(Converted);
  }
}
BENCHMARK(BM_IfConversionPass);

/// Pass runtime: parse + unroll by the factor in range(0).
void BM_LoopUnrollPass(benchmark::State &State) {
  const unsigned Factor = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    Context Ctx;
    auto M = parseModuleOrDie(CountedLoopSrc, Ctx);
    unsigned Unrolled = runLoopUnroll(*M, Factor);
    benchmark::DoNotOptimize(Unrolled);
  }
}
BENCHMARK(BM_LoopUnrollPass)->DenseRange(2, 8, 2);

/// Simulated cycles with the pipeline off (range 0) and on (range 1), on
/// the branchy (range(0)) or loop (range(1)) kernel. The counters carry
/// the cycle count and the number of accepted vector bundles: with the
/// pipeline off both kernels vectorize nothing, with it on they pack and
/// the cycle count drops.
void BM_PipelineCycles(benchmark::State &State) {
  const bool Loop = State.range(0) != 0;
  const bool Pipeline = State.range(1) != 0;
  const char *Src = Loop ? CountedLoopSrc : BranchyQuadSrc;
  State.SetLabel(std::string(Loop ? "loop" : "branchy") +
                 (Pipeline ? "/pipeline" : "/scalar"));
  SkylakeTTI TTI;
  double Cycles = 0;
  unsigned Accepted = 0;
  for (auto _ : State) {
    Context Ctx;
    auto M = parseModuleOrDie(Src, Ctx);
    if (Pipeline) {
      runIfConversion(*M);
      runLoopUnroll(*M, 4);
    }
    SLPVectorizerPass Pass(VectorizerConfig::lslp(), TTI);
    Accepted = Pass.runOnModule(*M).numAccepted();
    auto Engine = ExecutionEngine::create(EngineKind::TreeWalk, *M, &TTI);
    initKernelMemory(*Engine, *M);
    auto R = Engine->run(M->getFunction("f"), {});
    Cycles = static_cast<double>(R.TotalCost);
    benchmark::DoNotOptimize(R.DynamicInsts);
  }
  State.counters["sim_cycles"] = Cycles;
  State.counters["accepted"] = Accepted;
}
BENCHMARK(BM_PipelineCycles)->ArgsProduct({{0, 1}, {0, 1}});

} // namespace

BENCHMARK_MAIN();
