//===- bench/BenchUtil.h - Shared benchmark harness helpers -----*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the per-figure benchmark binaries: running a kernel
/// under a configuration on the cycle-model interpreter, collecting static
/// costs, weighted suite measurements, geometric means, and aligned table
/// printing.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_BENCH_BENCHUTIL_H
#define LSLP_BENCH_BENCHUTIL_H

#include "kernels/Kernels.h"
#include "support/ThreadPool.h"
#include "vectorizer/Config.h"
#include "vm/ExecutionEngine.h"

#include <string>
#include <vector>

namespace lslp {
namespace bench {

/// Result of one (kernel, config) measurement.
struct Measurement {
  double DynamicCost = 0;  ///< Simulated cycles (TTI cost sum).
  int StaticCost = 0;      ///< Sum of accepted graph costs.
  unsigned Accepted = 0;   ///< Number of vectorized seed bundles.
  uint64_t Checksum = 0;   ///< Output checksum (sanity cross-check).
  double WallMs = 0;       ///< Host wall-clock of the execution phase.
  /// One-line remark-derived summary of what the vectorizer did (empty
  /// for the O3 baseline): RemarkEngine::summary() of the pass's stream.
  std::string Explanation;
};

/// Runs \p Spec with \p Config (null = O3, vectorizer disabled) on fresh
/// memory and returns the measurement. \p N overrides the kernel's default
/// trip count when non-zero. \p Engine selects the execution backend; the
/// simulated cycles are engine-invariant, only WallMs changes.
Measurement measureKernel(const KernelSpec &Spec,
                          const VectorizerConfig *Config, uint64_t N = 0,
                          EngineKind Engine = EngineKind::TreeWalk);

/// Weighted whole-suite dynamic cost (Figure 11/12 substrate): sum over
/// members of weight * dynamic cost; also accumulates the suite's total
/// static cost.
struct SuiteMeasurement {
  double WeightedDynamicCost = 0;
  int StaticCost = 0;
  double WallMs = 0; ///< Unweighted host wall-clock of all member runs.
};
SuiteMeasurement measureSuite(const SuiteSpec &Suite,
                              const VectorizerConfig *Config,
                              EngineKind Engine = EngineKind::TreeWalk);

/// \name Shared bench CLI + machine-readable output.
/// @{

/// Flags every bench binary understands, on top of its own:
///   -json=FILE     write one JSON record per measurement to FILE
///   -engine=NAME   execution backend: interp (default), vm, or jit
///   -engine-smoke  cross-engine timed smoke mode (fig12 only)
///   -jobs=N        run independent measurement cells on N workers
///                  (0 = one per hardware thread); cycle counts, static
///                  costs and checksums are identical to -jobs=1 — only
///                  host wall-clock changes
///   -parity        measure twice, parallel and serial, and require
///                  identical cycles/costs/checksums (fig9; exit 1 on
///                  mismatch — the CI determinism gate)
///   -strategy=NAME statement packing strategy for every vectorizing
///                  config: greedy (default) or global; unknown names are
///                  rejected. fig9/fig10 suffix column headers, config
///                  names, and JSON records with "-global"
///   -daemon=SOCK   route compiles through the lslpd daemon at SOCK
///                  (fig14 only: adds the cold-vs-warm cache columns)
struct BenchOptions {
  std::string JsonPath;
  EngineKind Engine = EngineKind::TreeWalk;
  bool EngineSmoke = false;
  unsigned Jobs = 1;
  bool Parity = false;
  VectorizerConfig::PackingStrategyKind Strategy =
      VectorizerConfig::PackingStrategyKind::Greedy;
  std::string DaemonSocket;
};

/// Consumes the shared flags from argv, leaving binary-specific arguments
/// alone. Returns false (after printing a message) on a malformed value.
bool parseBenchArgs(int argc, char **argv, BenchOptions &Opts);

/// Runs \p N independent measurement cells on \p Jobs workers and returns
/// the results in index order (deterministic collect; see DESIGN.md
/// "Concurrency model"). Each cell must be self-contained — measureKernel
/// and measureSuite are: they build their own Context, module, and
/// engine. Serial when Jobs <= 1.
template <typename Fn>
auto runCells(unsigned Jobs, size_t N, Fn F)
    -> std::vector<std::invoke_result_t<Fn, size_t>> {
  using R = std::invoke_result_t<Fn, size_t>;
  if (Jobs <= 1 || N < 2) {
    std::vector<R> Out;
    Out.reserve(N);
    for (size_t I = 0; I != N; ++I)
      Out.push_back(F(I));
    return Out;
  }
  ThreadPool Pool(
      std::min(static_cast<size_t>(ThreadPool::resolveJobs(Jobs)), N));
  return parallelMapOrdered(Pool, N, F);
}

/// Accumulates measurement records and writes them as a JSON array:
///   {"figure": ..., "label": ..., "config": ..., "engine": ...,
///    "cycles": ..., "wall_ms": ..., "static_cost": ...}
/// Figures without a natural value for a field record it as 0.
class JsonReport {
public:
  explicit JsonReport(std::string Figure) : Figure(std::move(Figure)) {}

  void add(const std::string &Label, const std::string &Config,
           EngineKind Engine, double Cycles, double WallMs,
           int StaticCost = 0);

  /// Writes the records to \p Path; no-op when \p Path is empty. Returns
  /// false (after printing a message) when the file cannot be written.
  bool write(const std::string &Path) const;

private:
  struct Record {
    std::string Label;
    std::string Config;
    EngineKind Engine;
    double Cycles;
    double WallMs;
    int StaticCost;
  };
  std::string Figure;
  std::vector<Record> Records;
};

/// @}

/// The three vectorizing configurations in paper order. A non-default
/// \p Strategy is applied to every config and reflected in its Name
/// ("LSLP" -> "LSLP-global"), so table headers and JSON records keep the
/// strategy axis visible.
std::vector<VectorizerConfig>
paperConfigs(VectorizerConfig::PackingStrategyKind Strategy =
                 VectorizerConfig::PackingStrategyKind::Greedy);

/// Geometric mean (values must be positive).
double geomean(const std::vector<double> &Values);

/// \name Table printing (to stdout).
/// @{
void printTitle(const std::string &Title);
void printRow(const std::string &Label,
              const std::vector<std::string> &Cells,
              unsigned LabelWidth = 26, unsigned CellWidth = 10);
std::string fmt(double Value, unsigned Decimals = 2);
/// @}

} // namespace bench
} // namespace lslp

#endif // LSLP_BENCH_BENCHUTIL_H
