//===- bench/BenchUtil.h - Shared benchmark harness helpers -----*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the per-figure benchmark binaries: running a kernel
/// under a configuration on the cycle-model interpreter, collecting static
/// costs, weighted suite measurements, geometric means, and aligned table
/// printing.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_BENCH_BENCHUTIL_H
#define LSLP_BENCH_BENCHUTIL_H

#include "kernels/Kernels.h"
#include "vectorizer/Config.h"

#include <string>
#include <vector>

namespace lslp {
namespace bench {

/// Result of one (kernel, config) measurement.
struct Measurement {
  double DynamicCost = 0;  ///< Simulated cycles (TTI cost sum).
  int StaticCost = 0;      ///< Sum of accepted graph costs.
  unsigned Accepted = 0;   ///< Number of vectorized seed bundles.
  uint64_t Checksum = 0;   ///< Output checksum (sanity cross-check).
  /// One-line remark-derived summary of what the vectorizer did (empty
  /// for the O3 baseline): RemarkEngine::summary() of the pass's stream.
  std::string Explanation;
};

/// Runs \p Spec with \p Config (null = O3, vectorizer disabled) on fresh
/// memory and returns the measurement. \p N overrides the kernel's default
/// trip count when non-zero.
Measurement measureKernel(const KernelSpec &Spec,
                          const VectorizerConfig *Config, uint64_t N = 0);

/// Weighted whole-suite dynamic cost (Figure 11/12 substrate): sum over
/// members of weight * dynamic cost; also accumulates the suite's total
/// static cost.
struct SuiteMeasurement {
  double WeightedDynamicCost = 0;
  int StaticCost = 0;
};
SuiteMeasurement measureSuite(const SuiteSpec &Suite,
                              const VectorizerConfig *Config);

/// The three vectorizing configurations in paper order.
std::vector<VectorizerConfig> paperConfigs();

/// Geometric mean (values must be positive).
double geomean(const std::vector<double> &Values);

/// \name Table printing (to stdout).
/// @{
void printTitle(const std::string &Title);
void printRow(const std::string &Label,
              const std::vector<std::string> &Cells,
              unsigned LabelWidth = 26, unsigned CellWidth = 10);
std::string fmt(double Value, unsigned Decimals = 2);
/// @}

} // namespace bench
} // namespace lslp

#endif // LSLP_BENCH_BENCHUTIL_H
