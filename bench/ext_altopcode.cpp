//===- bench/ext_altopcode.cpp - Ablation: alternate-opcode extension ----------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Ablation for the alternate-opcode extension (DESIGN.md, "Design choices
// called out for ablation"): the complex SU(2) kernel — the authentic
// form of the paper's 433.mult-su2, whose real/imaginary lanes mix
// fadd/fsub — vectorized with and without alt-opcode bundles, plus the
// effect of the extension on every registered kernel.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include "costmodel/TargetTransformInfo.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "support/OStream.h"
#include "vectorizer/SLPVectorizerPass.h"

using namespace lslp;
using namespace lslp::bench;

namespace {

Measurement measureWith(const KernelSpec &K, bool AltOpcodes) {
  VectorizerConfig C = VectorizerConfig::lslp();
  C.EnableAltOpcodes = AltOpcodes;
  return measureKernel(K, &C);
}

} // namespace

int main() {
  printTitle("Extension ablation: alternate-opcode (vaddsubpd) bundles");
  printRow("kernel", {"off:cost", "on:cost", "off:spdup", "on:spdup"}, 26,
           11);
  outs() << std::string(26 + 4 * 11, '-') << "\n";

  std::vector<const KernelSpec *> Kernels = getFigureKernels();
  Kernels.push_back(findKernel("mult-su2-complex"));

  for (const KernelSpec *K : Kernels) {
    Measurement O3 = measureKernel(*K, nullptr);
    Measurement Off = measureWith(*K, false);
    Measurement On = measureWith(*K, true);
    printRow(K->Name,
             {std::to_string(Off.StaticCost), std::to_string(On.StaticCost),
              fmt(O3.DynamicCost / Off.DynamicCost) + "x",
              fmt(O3.DynamicCost / On.DynamicCost) + "x"},
             26, 11);
  }
  outs() << "\nOnly kernels whose lanes mix fadd/fsub (the complex\n"
            "arithmetic of mult-su2-complex) are affected; the paper's\n"
            "eleven kernels are alt-free, so the extension is behaviour-\n"
            "preserving on every reproduced figure.\n";
  return 0;
}
