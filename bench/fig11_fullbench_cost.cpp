//===- bench/fig11_fullbench_cost.cpp - Figure 11: whole-benchmark cost --------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 11: total static vectorization cost of the full
// benchmarks, normalized to SLP (percent; below 100% = better than SLP,
// i.e. a larger total saving). Only benchmarks that trigger (L)SLP are
// shown, as in the paper.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include "support/OStream.h"

using namespace lslp;
using namespace lslp::bench;

int main(int argc, char **argv) {
  BenchOptions Opts;
  if (!parseBenchArgs(argc, argv, Opts))
    return 1;
  printTitle("Figure 11: whole-benchmark static cost, normalized to SLP (%)");
  printRow("benchmark", {"SLP-NR", "SLP", "LSLP"});
  outs() << std::string(56, '-') << "\n";

  JsonReport Report("fig11");
  std::vector<VectorizerConfig> Configs = paperConfigs();
  std::vector<std::vector<double>> Normalized(Configs.size());

  // Measure every (suite, config) cell up front — concurrently under
  // -jobs=N — then print from the ordered results.
  const std::vector<SuiteSpec> &Suites = getSuites();
  std::vector<SuiteMeasurement> Grid =
      runCells(Opts.Jobs, Suites.size() * Configs.size(), [&](size_t I) {
        return measureSuite(Suites[I / Configs.size()],
                            &Configs[I % Configs.size()], Opts.Engine);
      });

  for (size_t SI = 0; SI != Suites.size(); ++SI) {
    const SuiteSpec &Suite = Suites[SI];
    std::vector<int> Costs;
    for (size_t CI = 0; CI < Configs.size(); ++CI) {
      const SuiteMeasurement &SM = Grid[SI * Configs.size() + CI];
      Report.add(Suite.Name, Configs[CI].Name, Opts.Engine,
                 SM.WeightedDynamicCost, SM.WallMs, SM.StaticCost);
      Costs.push_back(SM.StaticCost);
    }
    int SLPCost = Costs[1];
    std::vector<std::string> Cells;
    for (size_t CI = 0; CI < Configs.size(); ++CI) {
      // Costs are negative savings: percent of the SLP saving achieved.
      // A config that saves nothing sits at 0% (never negative zero).
      double Pct;
      if (Costs[CI] == 0)
        Pct = SLPCost == 0 ? 100.0 : 0.0;
      else if (SLPCost == 0)
        Pct = 999.9; // Saves where SLP saved nothing at all.
      else
        Pct = 100.0 * Costs[CI] / SLPCost;
      Normalized[CI].push_back(Pct > 0 ? Pct : 1.0);
      Cells.push_back(fmt(Pct, 1));
    }
    printRow(Suite.Name, Cells);
  }
  outs() << std::string(56, '-') << "\n";
  std::vector<std::string> GM;
  for (const auto &N : Normalized)
    GM.push_back(fmt(geomean(N), 1));
  printRow("GMean", GM);
  outs() << "\nReading: >100% means a larger total static saving than SLP\n"
            "(the paper plots the same quantity; LSLP >= 100 everywhere).\n";
  return Report.write(Opts.JsonPath) ? 0 : 1;
}
