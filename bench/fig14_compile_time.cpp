//===- bench/fig14_compile_time.cpp - Figure 14: compilation time --------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 14: compilation time normalized to O3 (LA=8). "O3" is
// building the kernel module without running the vectorizer; each
// configuration adds its (L)SLP pass. google-benchmark measures the
// per-(kernel, config) wall times; a normalized summary table in the
// paper's format is printed afterwards.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include "costmodel/TargetTransformInfo.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "server/Client.h"
#include "support/OStream.h"
#include "vectorizer/SLPVectorizerPass.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <optional>

using namespace lslp;
using namespace lslp::bench;

namespace {

void compileOnce(const KernelSpec &K,
                 const std::optional<VectorizerConfig> &Config) {
  Context Ctx;
  auto M = buildKernelModule(K, Ctx);
  if (Config) {
    SkylakeTTI TTI;
    SLPVectorizerPass Pass(*Config, TTI);
    ModuleReport R = Pass.runOnModule(*M);
    benchmark::DoNotOptimize(&R);
  }
  benchmark::DoNotOptimize(M.get());
}

void registerBenchmarks() {
  struct NamedConfig {
    const char *Name;
    std::optional<VectorizerConfig> Config;
  };
  static const NamedConfig Configs[] = {
      {"O3", std::nullopt},
      {"SLP-NR", VectorizerConfig::slpNoReordering()},
      {"SLP", VectorizerConfig::slp()},
      {"LSLP", VectorizerConfig::lslp(8)},
  };
  for (const KernelSpec *K : getFigureKernels()) {
    for (const NamedConfig &NC : Configs) {
      std::string Name = "compile/" + K->Name + "/" + NC.Name;
      benchmark::RegisterBenchmark(
          Name.c_str(), [K, &NC](benchmark::State &State) {
            for (auto _ : State)
              compileOnce(*K, NC.Config);
          });
    }
  }
}

/// Median wall time of \p Runs compilations, in nanoseconds.
double medianCompileNanos(const KernelSpec &K,
                          const std::optional<VectorizerConfig> &Config,
                          unsigned Runs = 30) {
  std::vector<double> Times;
  Times.reserve(Runs);
  for (unsigned I = 0; I < Runs; ++I) {
    auto Start = std::chrono::steady_clock::now();
    compileOnce(K, Config);
    auto End = std::chrono::steady_clock::now();
    Times.push_back(
        std::chrono::duration<double, std::nano>(End - Start).count());
  }
  std::sort(Times.begin(), Times.end());
  return Times[Times.size() / 2];
}

void printNormalizedSummary(JsonReport &Report) {
  printTitle("Figure 14: compilation time, normalized (LA=8)");
  printRow("kernel", {"SLP-NR/O3", "SLP/O3", "LSLP/O3", "LSLP/SLP"});
  outs() << std::string(66, '-') << "\n";
  std::vector<std::vector<double>> Ratios(4);
  for (const KernelSpec *K : getFigureKernels()) {
    double O3 = medianCompileNanos(*K, std::nullopt);
    Report.add(K->Name, "O3", EngineKind::TreeWalk, 0, O3 / 1e6);
    std::optional<VectorizerConfig> Configs[] = {
        VectorizerConfig::slpNoReordering(), VectorizerConfig::slp(),
        VectorizerConfig::lslp(8)};
    static const char *const ConfigNames[] = {"SLP-NR", "SLP", "LSLP"};
    std::vector<std::string> Cells;
    double Times[3];
    for (unsigned CI = 0; CI < 3; ++CI) {
      Times[CI] = medianCompileNanos(*K, Configs[CI]);
      // fig14's metric is compile wall time; there is no execution, so
      // cycles records as 0 and wall_ms carries the median compile time.
      Report.add(K->Name, ConfigNames[CI], EngineKind::TreeWalk, 0,
                 Times[CI] / 1e6);
      double Ratio = Times[CI] / O3;
      Ratios[CI].push_back(Ratio);
      Cells.push_back(fmt(Ratio, 2));
    }
    double VsSLP = Times[2] / Times[1];
    Ratios[3].push_back(VsSLP);
    Cells.push_back(fmt(VsSLP, 3));
    printRow(K->Name, Cells);
  }
  outs() << std::string(66, '-') << "\n";
  std::vector<std::string> GM;
  for (const auto &R : Ratios)
    GM.push_back(fmt(geomean(R), 3));
  printRow("GMean", GM);
  outs() << "\nNote: the paper normalizes to a full clang -O3 compile, where\n"
            "the SLP pass is a tiny fraction, so all bars sit near 1.0x.\n"
            "Here 'O3' is only IR construction (there is no surrounding\n"
            "compiler pipeline), which inflates the */O3 columns. The\n"
            "LSLP/SLP column isolates the paper's actual claim: the extra\n"
            "cost of look-ahead + multi-nodes over the vanilla SLP pass.\n";
}

/// -daemon=SOCK mode: per-kernel compile wall time through the lslpd
/// daemon, cold (every request forced to miss the content cache) vs warm
/// (byte-identical replay from the cache). The cold/warm medians land in
/// the -json= report as configs "daemon-cold"/"daemon-warm"; the daemon's
/// own hit/miss/eviction counters are printed from a stats request.
bool runDaemonMode(const BenchOptions &Opts, JsonReport &Report) {
  server::DaemonClient Client;
  if (Error E = Client.connect(Opts.DaemonSocket)) {
    errs() << "fig14: " << E.message() << "\n";
    return false;
  }

  printTitle("Figure 14 (daemon): compile time, cold vs warm cache");
  printRow("kernel", {"cold ms", "warm ms", "speedup"});
  outs() << std::string(66, '-') << "\n";

  const unsigned Runs = 30;
  bool OK = true;
  for (const KernelSpec *K : getFigureKernels()) {
    // One canonical request per kernel: module text + LSLP(8) config.
    server::CompileRequest Req;
    Req.InputName = K->Name;
    {
      Context Ctx;
      auto M = buildKernelModule(*K, Ctx);
      StringOStream OS(Req.ModuleText);
      printModule(OS, *M);
    }
    Req.ConfigJSON = VectorizerConfig::lslp(8).toJSON();
    Req.Report = true;

    auto TimedCompile = [&](uint64_t FaultSeed) {
      Req.FaultSeed = FaultSeed;
      server::CompileResponse Resp;
      auto Start = std::chrono::steady_clock::now();
      if (Error E = Client.compile(Req, Resp)) {
        errs() << "fig14: " << E.message() << "\n";
        OK = false;
      }
      auto End = std::chrono::steady_clock::now();
      return std::chrono::duration<double, std::milli>(End - Start).count();
    };
    auto Median = [](std::vector<double> &Times) {
      std::sort(Times.begin(), Times.end());
      return Times[Times.size() / 2];
    };

    // Cold: a fresh fault seed per request changes the cache key but not
    // the compile (the fault probability stays 0), so every run misses.
    std::vector<double> ColdTimes, WarmTimes;
    for (unsigned I = 0; I < Runs && OK; ++I)
      ColdTimes.push_back(TimedCompile(/*FaultSeed=*/1 + I));
    // Warm: one key, so after the priming run every request replays the
    // cached response byte-for-byte.
    if (OK)
      TimedCompile(/*FaultSeed=*/0);
    for (unsigned I = 0; I < Runs && OK; ++I)
      WarmTimes.push_back(TimedCompile(/*FaultSeed=*/0));
    if (!OK)
      return false;

    double Cold = Median(ColdTimes), Warm = Median(WarmTimes);
    Report.add(K->Name, "daemon-cold", EngineKind::TreeWalk, 0, Cold);
    Report.add(K->Name, "daemon-warm", EngineKind::TreeWalk, 0, Warm);
    printRow(K->Name, {fmt(Cold, 3), fmt(Warm, 3),
                       fmt(Warm > 0 ? Cold / Warm : 0, 1) + "x"});
  }

  std::string StatsJSON;
  if (Error E = Client.stats(StatsJSON)) {
    errs() << "fig14: " << E.message() << "\n";
    return false;
  }
  outs() << "\ndaemon stats: " << StatsJSON << "\n";
  return true;
}

} // namespace

int main(int argc, char **argv) {
  BenchOptions Opts;
  if (!parseBenchArgs(argc, argv, Opts))
    return 1;
  if (!Opts.DaemonSocket.empty()) {
    // Daemon mode replaces the in-process benchmark sweep: the subject
    // under measurement is the serving path itself.
    JsonReport Report("fig14");
    if (!runDaemonMode(Opts, Report))
      return 1;
    return Report.write(Opts.JsonPath) ? 0 : 1;
  }
  registerBenchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  JsonReport Report("fig14");
  printNormalizedSummary(Report);
  return Report.write(Opts.JsonPath) ? 0 : 1;
}
