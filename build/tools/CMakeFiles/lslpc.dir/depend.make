# Empty dependencies file for lslpc.
# This may be replaced when dependencies are built.
