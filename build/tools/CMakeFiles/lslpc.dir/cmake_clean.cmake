file(REMOVE_RECURSE
  "CMakeFiles/lslpc.dir/lslpc.cpp.o"
  "CMakeFiles/lslpc.dir/lslpc.cpp.o.d"
  "lslpc"
  "lslpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lslpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
