# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(lslpc_usage "/root/repo/build/tools/lslpc")
set_tests_properties(lslpc_usage PROPERTIES  LABELS "integration" TIMEOUT "60" WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(lslpc_figure2_slp "/root/repo/build/tools/lslpc" "/root/repo/examples/ir/figure2.ll" "-config=SLP" "-report" "-no-print")
set_tests_properties(lslpc_figure2_slp PROPERTIES  LABELS "integration" PASS_REGULAR_EXPRESSION "0 bundle\\(s\\) vectorized" TIMEOUT "60" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(lslpc_figure2_lslp "/root/repo/build/tools/lslpc" "/root/repo/examples/ir/figure2.ll" "-config=LSLP" "-report" "-no-print")
set_tests_properties(lslpc_figure2_lslp PROPERTIES  LABELS "integration" PASS_REGULAR_EXPRESSION "1 bundle\\(s\\) vectorized, total cost -6" TIMEOUT "60" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(lslpc_listing1 "/root/repo/build/tools/lslpc" "/root/repo/examples/ir/listing1.ll" "-config=SLP" "-report" "-no-print")
set_tests_properties(lslpc_listing1 PROPERTIES  LABELS "integration" PASS_REGULAR_EXPRESSION "vectorized" TIMEOUT "60" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(lslpc_dot_reduction "/root/repo/build/tools/lslpc" "/root/repo/examples/ir/dot_product.ll" "-report" "-no-print" "-run=dot:16" "-init-memory")
set_tests_properties(lslpc_dot_reduction PROPERTIES  LABELS "integration" PASS_REGULAR_EXPRESSION "reduction x4.*vectorized" TIMEOUT "60" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;24;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(lslpc_figure4_multinode "/root/repo/build/tools/lslpc" "/root/repo/examples/ir/figure4.ll" "-config=LSLP" "-report" "-graphs" "-no-print")
set_tests_properties(lslpc_figure4_multinode PROPERTIES  LABELS "integration" PASS_REGULAR_EXPRESSION "multinode<and x2>.*total cost = -10" TIMEOUT "60" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;29;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(lslpc_dot_output "/root/repo/build/tools/lslpc" "/root/repo/examples/ir/figure4.ll" "-config=LSLP" "-dot" "-no-print")
set_tests_properties(lslpc_dot_output PROPERTIES  LABELS "integration" PASS_REGULAR_EXPRESSION "digraph .*fillcolor=lightpink" TIMEOUT "60" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;34;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(lslpc_fuzz_corpus "/root/repo/build/tools/lslpc" "--fuzz=200" "--seed=1")
set_tests_properties(lslpc_fuzz_corpus PROPERTIES  LABELS "fuzz" PASS_REGULAR_EXPRESSION "200 seed\\(s\\) starting at 1, 0 failures" TIMEOUT "60" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;54;add_test;/root/repo/tools/CMakeLists.txt;0;")
