# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(lslpc_usage "/root/repo/build/tools/lslpc")
set_tests_properties(lslpc_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(lslpc_figure2_slp "/root/repo/build/tools/lslpc" "/root/repo/examples/ir/figure2.ll" "-config=SLP" "-report" "-no-print")
set_tests_properties(lslpc_figure2_slp PROPERTIES  PASS_REGULAR_EXPRESSION "0 bundle\\(s\\) vectorized" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(lslpc_figure2_lslp "/root/repo/build/tools/lslpc" "/root/repo/examples/ir/figure2.ll" "-config=LSLP" "-report" "-no-print")
set_tests_properties(lslpc_figure2_lslp PROPERTIES  PASS_REGULAR_EXPRESSION "1 bundle\\(s\\) vectorized, total cost -6" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(lslpc_listing1 "/root/repo/build/tools/lslpc" "/root/repo/examples/ir/listing1.ll" "-config=SLP" "-report" "-no-print")
set_tests_properties(lslpc_listing1 PROPERTIES  PASS_REGULAR_EXPRESSION "vectorized" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(lslpc_dot_reduction "/root/repo/build/tools/lslpc" "/root/repo/examples/ir/dot_product.ll" "-report" "-no-print" "-run=dot:16" "-init-memory")
set_tests_properties(lslpc_dot_reduction PROPERTIES  PASS_REGULAR_EXPRESSION "reduction x4.*vectorized" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;24;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(lslpc_figure4_multinode "/root/repo/build/tools/lslpc" "/root/repo/examples/ir/figure4.ll" "-config=LSLP" "-report" "-graphs" "-no-print")
set_tests_properties(lslpc_figure4_multinode PROPERTIES  PASS_REGULAR_EXPRESSION "multinode<and x2>.*total cost = -10" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;29;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(lslpc_dot_output "/root/repo/build/tools/lslpc" "/root/repo/examples/ir/figure4.ll" "-config=LSLP" "-dot" "-no-print")
set_tests_properties(lslpc_dot_output PROPERTIES  PASS_REGULAR_EXPRESSION "digraph .*fillcolor=lightpink" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;34;add_test;/root/repo/tools/CMakeLists.txt;0;")
