
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/interp/InterpreterTest.cpp" "tests/interp/CMakeFiles/interp_test.dir/InterpreterTest.cpp.o" "gcc" "tests/interp/CMakeFiles/interp_test.dir/InterpreterTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fuzz/CMakeFiles/lslp_fuzz.dir/DependInfo.cmake"
  "/root/repo/build/src/vectorizer/CMakeFiles/lslp_vectorizer.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/lslp_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/lslp_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/lslp_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/costmodel/CMakeFiles/lslp_costmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/lslp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/lslp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lslp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
