# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("smoke")
subdirs("support")
subdirs("ir")
subdirs("parser")
subdirs("analysis")
subdirs("costmodel")
subdirs("interp")
subdirs("vectorizer")
subdirs("kernels")
subdirs("integration")
subdirs("transforms")
subdirs("fuzz")
