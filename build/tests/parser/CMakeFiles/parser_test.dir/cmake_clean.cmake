file(REMOVE_RECURSE
  "CMakeFiles/parser_test.dir/LexerTest.cpp.o"
  "CMakeFiles/parser_test.dir/LexerTest.cpp.o.d"
  "CMakeFiles/parser_test.dir/ParserFuzzTest.cpp.o"
  "CMakeFiles/parser_test.dir/ParserFuzzTest.cpp.o.d"
  "CMakeFiles/parser_test.dir/ParserTest.cpp.o"
  "CMakeFiles/parser_test.dir/ParserTest.cpp.o.d"
  "CMakeFiles/parser_test.dir/RoundTripTest.cpp.o"
  "CMakeFiles/parser_test.dir/RoundTripTest.cpp.o.d"
  "parser_test"
  "parser_test.pdb"
  "parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
