file(REMOVE_RECURSE
  "CMakeFiles/ir_test.dir/CastTest.cpp.o"
  "CMakeFiles/ir_test.dir/CastTest.cpp.o.d"
  "CMakeFiles/ir_test.dir/DominatorsTest.cpp.o"
  "CMakeFiles/ir_test.dir/DominatorsTest.cpp.o.d"
  "CMakeFiles/ir_test.dir/FunctionModuleTest.cpp.o"
  "CMakeFiles/ir_test.dir/FunctionModuleTest.cpp.o.d"
  "CMakeFiles/ir_test.dir/InstructionTest.cpp.o"
  "CMakeFiles/ir_test.dir/InstructionTest.cpp.o.d"
  "CMakeFiles/ir_test.dir/LocalTest.cpp.o"
  "CMakeFiles/ir_test.dir/LocalTest.cpp.o.d"
  "CMakeFiles/ir_test.dir/PrinterTest.cpp.o"
  "CMakeFiles/ir_test.dir/PrinterTest.cpp.o.d"
  "CMakeFiles/ir_test.dir/TypeTest.cpp.o"
  "CMakeFiles/ir_test.dir/TypeTest.cpp.o.d"
  "CMakeFiles/ir_test.dir/ValueTest.cpp.o"
  "CMakeFiles/ir_test.dir/ValueTest.cpp.o.d"
  "CMakeFiles/ir_test.dir/VerifierTest.cpp.o"
  "CMakeFiles/ir_test.dir/VerifierTest.cpp.o.d"
  "ir_test"
  "ir_test.pdb"
  "ir_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
