# CMake generated Testfile for 
# Source directory: /root/repo/tests/fuzz
# Build directory: /root/repo/build/tests/fuzz
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/fuzz/fuzz_test[1]_include.cmake")
