file(REMOVE_RECURSE
  "CMakeFiles/fuzz_test.dir/CorpusTest.cpp.o"
  "CMakeFiles/fuzz_test.dir/CorpusTest.cpp.o.d"
  "CMakeFiles/fuzz_test.dir/GeneratorTest.cpp.o"
  "CMakeFiles/fuzz_test.dir/GeneratorTest.cpp.o.d"
  "CMakeFiles/fuzz_test.dir/OracleTest.cpp.o"
  "CMakeFiles/fuzz_test.dir/OracleTest.cpp.o.d"
  "CMakeFiles/fuzz_test.dir/ReducerTest.cpp.o"
  "CMakeFiles/fuzz_test.dir/ReducerTest.cpp.o.d"
  "fuzz_test"
  "fuzz_test.pdb"
  "fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
