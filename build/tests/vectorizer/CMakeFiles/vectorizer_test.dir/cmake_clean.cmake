file(REMOVE_RECURSE
  "CMakeFiles/vectorizer_test.dir/AlternateOpcodeTest.cpp.o"
  "CMakeFiles/vectorizer_test.dir/AlternateOpcodeTest.cpp.o.d"
  "CMakeFiles/vectorizer_test.dir/CostAndCodeGenTest.cpp.o"
  "CMakeFiles/vectorizer_test.dir/CostAndCodeGenTest.cpp.o.d"
  "CMakeFiles/vectorizer_test.dir/GraphBuilderTest.cpp.o"
  "CMakeFiles/vectorizer_test.dir/GraphBuilderTest.cpp.o.d"
  "CMakeFiles/vectorizer_test.dir/LookAheadTest.cpp.o"
  "CMakeFiles/vectorizer_test.dir/LookAheadTest.cpp.o.d"
  "CMakeFiles/vectorizer_test.dir/ReductionTest.cpp.o"
  "CMakeFiles/vectorizer_test.dir/ReductionTest.cpp.o.d"
  "CMakeFiles/vectorizer_test.dir/ReorderingTest.cpp.o"
  "CMakeFiles/vectorizer_test.dir/ReorderingTest.cpp.o.d"
  "CMakeFiles/vectorizer_test.dir/SLPGraphTest.cpp.o"
  "CMakeFiles/vectorizer_test.dir/SLPGraphTest.cpp.o.d"
  "CMakeFiles/vectorizer_test.dir/SchedulerTest.cpp.o"
  "CMakeFiles/vectorizer_test.dir/SchedulerTest.cpp.o.d"
  "vectorizer_test"
  "vectorizer_test.pdb"
  "vectorizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vectorizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
