file(REMOVE_RECURSE
  "CMakeFiles/ext_instruction_mix.dir/ext_instruction_mix.cpp.o"
  "CMakeFiles/ext_instruction_mix.dir/ext_instruction_mix.cpp.o.d"
  "ext_instruction_mix"
  "ext_instruction_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_instruction_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
