# Empty compiler generated dependencies file for fig11_fullbench_cost.
# This may be replaced when dependencies are built.
