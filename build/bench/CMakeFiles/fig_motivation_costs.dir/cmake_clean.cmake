file(REMOVE_RECURSE
  "CMakeFiles/fig_motivation_costs.dir/fig_motivation_costs.cpp.o"
  "CMakeFiles/fig_motivation_costs.dir/fig_motivation_costs.cpp.o.d"
  "fig_motivation_costs"
  "fig_motivation_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_motivation_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
