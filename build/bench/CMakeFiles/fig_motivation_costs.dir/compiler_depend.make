# Empty compiler generated dependencies file for fig_motivation_costs.
# This may be replaced when dependencies are built.
