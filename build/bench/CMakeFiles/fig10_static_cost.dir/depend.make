# Empty dependencies file for fig10_static_cost.
# This may be replaced when dependencies are built.
