file(REMOVE_RECURSE
  "liblslp_benchutil.a"
)
