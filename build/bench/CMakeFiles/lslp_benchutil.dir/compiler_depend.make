# Empty compiler generated dependencies file for lslp_benchutil.
# This may be replaced when dependencies are built.
