file(REMOVE_RECURSE
  "CMakeFiles/lslp_benchutil.dir/BenchUtil.cpp.o"
  "CMakeFiles/lslp_benchutil.dir/BenchUtil.cpp.o.d"
  "liblslp_benchutil.a"
  "liblslp_benchutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lslp_benchutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
