file(REMOVE_RECURSE
  "CMakeFiles/ext_altopcode.dir/ext_altopcode.cpp.o"
  "CMakeFiles/ext_altopcode.dir/ext_altopcode.cpp.o.d"
  "ext_altopcode"
  "ext_altopcode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_altopcode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
