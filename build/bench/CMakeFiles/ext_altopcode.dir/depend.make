# Empty dependencies file for ext_altopcode.
# This may be replaced when dependencies are built.
