# Empty compiler generated dependencies file for micro_vectorizer.
# This may be replaced when dependencies are built.
