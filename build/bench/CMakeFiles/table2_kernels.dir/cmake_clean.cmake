file(REMOVE_RECURSE
  "CMakeFiles/table2_kernels.dir/table2_kernels.cpp.o"
  "CMakeFiles/table2_kernels.dir/table2_kernels.cpp.o.d"
  "table2_kernels"
  "table2_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
