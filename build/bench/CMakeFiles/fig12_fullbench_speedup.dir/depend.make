# Empty dependencies file for fig12_fullbench_speedup.
# This may be replaced when dependencies are built.
