file(REMOVE_RECURSE
  "CMakeFiles/fig12_fullbench_speedup.dir/fig12_fullbench_speedup.cpp.o"
  "CMakeFiles/fig12_fullbench_speedup.dir/fig12_fullbench_speedup.cpp.o.d"
  "fig12_fullbench_speedup"
  "fig12_fullbench_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_fullbench_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
