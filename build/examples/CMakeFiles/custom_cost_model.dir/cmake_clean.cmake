file(REMOVE_RECURSE
  "CMakeFiles/custom_cost_model.dir/custom_cost_model.cpp.o"
  "CMakeFiles/custom_cost_model.dir/custom_cost_model.cpp.o.d"
  "custom_cost_model"
  "custom_cost_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_cost_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
