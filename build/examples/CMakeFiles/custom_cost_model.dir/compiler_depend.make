# Empty compiler generated dependencies file for custom_cost_model.
# This may be replaced when dependencies are built.
