file(REMOVE_RECURSE
  "CMakeFiles/motivation_tour.dir/motivation_tour.cpp.o"
  "CMakeFiles/motivation_tour.dir/motivation_tour.cpp.o.d"
  "motivation_tour"
  "motivation_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motivation_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
