# Empty dependencies file for motivation_tour.
# This may be replaced when dependencies are built.
