file(REMOVE_RECURSE
  "CMakeFiles/lslp_transforms.dir/EarlyCSE.cpp.o"
  "CMakeFiles/lslp_transforms.dir/EarlyCSE.cpp.o.d"
  "liblslp_transforms.a"
  "liblslp_transforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lslp_transforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
