# Empty compiler generated dependencies file for lslp_transforms.
# This may be replaced when dependencies are built.
