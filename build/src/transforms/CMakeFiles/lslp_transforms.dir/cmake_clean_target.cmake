file(REMOVE_RECURSE
  "liblslp_transforms.a"
)
