file(REMOVE_RECURSE
  "liblslp_costmodel.a"
)
