# Empty dependencies file for lslp_costmodel.
# This may be replaced when dependencies are built.
