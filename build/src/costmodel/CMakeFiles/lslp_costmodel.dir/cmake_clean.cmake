file(REMOVE_RECURSE
  "CMakeFiles/lslp_costmodel.dir/TargetTransformInfo.cpp.o"
  "CMakeFiles/lslp_costmodel.dir/TargetTransformInfo.cpp.o.d"
  "liblslp_costmodel.a"
  "liblslp_costmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lslp_costmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
