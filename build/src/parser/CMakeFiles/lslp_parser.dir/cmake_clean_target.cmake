file(REMOVE_RECURSE
  "liblslp_parser.a"
)
