# Empty dependencies file for lslp_parser.
# This may be replaced when dependencies are built.
