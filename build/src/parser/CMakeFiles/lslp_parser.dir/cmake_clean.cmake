file(REMOVE_RECURSE
  "CMakeFiles/lslp_parser.dir/Lexer.cpp.o"
  "CMakeFiles/lslp_parser.dir/Lexer.cpp.o.d"
  "CMakeFiles/lslp_parser.dir/Parser.cpp.o"
  "CMakeFiles/lslp_parser.dir/Parser.cpp.o.d"
  "liblslp_parser.a"
  "liblslp_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lslp_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
