# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("ir")
subdirs("parser")
subdirs("analysis")
subdirs("costmodel")
subdirs("interp")
subdirs("vectorizer")
subdirs("kernels")
subdirs("transforms")
subdirs("fuzz")
