file(REMOVE_RECURSE
  "liblslp_interp.a"
)
