file(REMOVE_RECURSE
  "CMakeFiles/lslp_interp.dir/Interpreter.cpp.o"
  "CMakeFiles/lslp_interp.dir/Interpreter.cpp.o.d"
  "liblslp_interp.a"
  "liblslp_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lslp_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
