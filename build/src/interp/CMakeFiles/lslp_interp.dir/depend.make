# Empty dependencies file for lslp_interp.
# This may be replaced when dependencies are built.
