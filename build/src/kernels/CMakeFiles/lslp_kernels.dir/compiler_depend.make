# Empty compiler generated dependencies file for lslp_kernels.
# This may be replaced when dependencies are built.
