file(REMOVE_RECURSE
  "CMakeFiles/lslp_kernels.dir/KernelBuilder.cpp.o"
  "CMakeFiles/lslp_kernels.dir/KernelBuilder.cpp.o.d"
  "CMakeFiles/lslp_kernels.dir/KernelRegistry.cpp.o"
  "CMakeFiles/lslp_kernels.dir/KernelRegistry.cpp.o.d"
  "CMakeFiles/lslp_kernels.dir/MotivationKernels.cpp.o"
  "CMakeFiles/lslp_kernels.dir/MotivationKernels.cpp.o.d"
  "CMakeFiles/lslp_kernels.dir/SpecKernels.cpp.o"
  "CMakeFiles/lslp_kernels.dir/SpecKernels.cpp.o.d"
  "CMakeFiles/lslp_kernels.dir/SuiteKernels.cpp.o"
  "CMakeFiles/lslp_kernels.dir/SuiteKernels.cpp.o.d"
  "liblslp_kernels.a"
  "liblslp_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lslp_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
