
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/KernelBuilder.cpp" "src/kernels/CMakeFiles/lslp_kernels.dir/KernelBuilder.cpp.o" "gcc" "src/kernels/CMakeFiles/lslp_kernels.dir/KernelBuilder.cpp.o.d"
  "/root/repo/src/kernels/KernelRegistry.cpp" "src/kernels/CMakeFiles/lslp_kernels.dir/KernelRegistry.cpp.o" "gcc" "src/kernels/CMakeFiles/lslp_kernels.dir/KernelRegistry.cpp.o.d"
  "/root/repo/src/kernels/MotivationKernels.cpp" "src/kernels/CMakeFiles/lslp_kernels.dir/MotivationKernels.cpp.o" "gcc" "src/kernels/CMakeFiles/lslp_kernels.dir/MotivationKernels.cpp.o.d"
  "/root/repo/src/kernels/SpecKernels.cpp" "src/kernels/CMakeFiles/lslp_kernels.dir/SpecKernels.cpp.o" "gcc" "src/kernels/CMakeFiles/lslp_kernels.dir/SpecKernels.cpp.o.d"
  "/root/repo/src/kernels/SuiteKernels.cpp" "src/kernels/CMakeFiles/lslp_kernels.dir/SuiteKernels.cpp.o" "gcc" "src/kernels/CMakeFiles/lslp_kernels.dir/SuiteKernels.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/lslp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/lslp_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/costmodel/CMakeFiles/lslp_costmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lslp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
