file(REMOVE_RECURSE
  "liblslp_kernels.a"
)
