file(REMOVE_RECURSE
  "liblslp_vectorizer.a"
)
