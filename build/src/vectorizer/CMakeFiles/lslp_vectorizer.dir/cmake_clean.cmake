file(REMOVE_RECURSE
  "CMakeFiles/lslp_vectorizer.dir/CodeGen.cpp.o"
  "CMakeFiles/lslp_vectorizer.dir/CodeGen.cpp.o.d"
  "CMakeFiles/lslp_vectorizer.dir/CostEvaluator.cpp.o"
  "CMakeFiles/lslp_vectorizer.dir/CostEvaluator.cpp.o.d"
  "CMakeFiles/lslp_vectorizer.dir/GraphBuilder.cpp.o"
  "CMakeFiles/lslp_vectorizer.dir/GraphBuilder.cpp.o.d"
  "CMakeFiles/lslp_vectorizer.dir/LookAhead.cpp.o"
  "CMakeFiles/lslp_vectorizer.dir/LookAhead.cpp.o.d"
  "CMakeFiles/lslp_vectorizer.dir/OperandReordering.cpp.o"
  "CMakeFiles/lslp_vectorizer.dir/OperandReordering.cpp.o.d"
  "CMakeFiles/lslp_vectorizer.dir/ReductionVectorizer.cpp.o"
  "CMakeFiles/lslp_vectorizer.dir/ReductionVectorizer.cpp.o.d"
  "CMakeFiles/lslp_vectorizer.dir/SLPGraph.cpp.o"
  "CMakeFiles/lslp_vectorizer.dir/SLPGraph.cpp.o.d"
  "CMakeFiles/lslp_vectorizer.dir/SLPVectorizerPass.cpp.o"
  "CMakeFiles/lslp_vectorizer.dir/SLPVectorizerPass.cpp.o.d"
  "CMakeFiles/lslp_vectorizer.dir/Scheduler.cpp.o"
  "CMakeFiles/lslp_vectorizer.dir/Scheduler.cpp.o.d"
  "CMakeFiles/lslp_vectorizer.dir/SeedCollector.cpp.o"
  "CMakeFiles/lslp_vectorizer.dir/SeedCollector.cpp.o.d"
  "liblslp_vectorizer.a"
  "liblslp_vectorizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lslp_vectorizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
