
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vectorizer/CodeGen.cpp" "src/vectorizer/CMakeFiles/lslp_vectorizer.dir/CodeGen.cpp.o" "gcc" "src/vectorizer/CMakeFiles/lslp_vectorizer.dir/CodeGen.cpp.o.d"
  "/root/repo/src/vectorizer/CostEvaluator.cpp" "src/vectorizer/CMakeFiles/lslp_vectorizer.dir/CostEvaluator.cpp.o" "gcc" "src/vectorizer/CMakeFiles/lslp_vectorizer.dir/CostEvaluator.cpp.o.d"
  "/root/repo/src/vectorizer/GraphBuilder.cpp" "src/vectorizer/CMakeFiles/lslp_vectorizer.dir/GraphBuilder.cpp.o" "gcc" "src/vectorizer/CMakeFiles/lslp_vectorizer.dir/GraphBuilder.cpp.o.d"
  "/root/repo/src/vectorizer/LookAhead.cpp" "src/vectorizer/CMakeFiles/lslp_vectorizer.dir/LookAhead.cpp.o" "gcc" "src/vectorizer/CMakeFiles/lslp_vectorizer.dir/LookAhead.cpp.o.d"
  "/root/repo/src/vectorizer/OperandReordering.cpp" "src/vectorizer/CMakeFiles/lslp_vectorizer.dir/OperandReordering.cpp.o" "gcc" "src/vectorizer/CMakeFiles/lslp_vectorizer.dir/OperandReordering.cpp.o.d"
  "/root/repo/src/vectorizer/ReductionVectorizer.cpp" "src/vectorizer/CMakeFiles/lslp_vectorizer.dir/ReductionVectorizer.cpp.o" "gcc" "src/vectorizer/CMakeFiles/lslp_vectorizer.dir/ReductionVectorizer.cpp.o.d"
  "/root/repo/src/vectorizer/SLPGraph.cpp" "src/vectorizer/CMakeFiles/lslp_vectorizer.dir/SLPGraph.cpp.o" "gcc" "src/vectorizer/CMakeFiles/lslp_vectorizer.dir/SLPGraph.cpp.o.d"
  "/root/repo/src/vectorizer/SLPVectorizerPass.cpp" "src/vectorizer/CMakeFiles/lslp_vectorizer.dir/SLPVectorizerPass.cpp.o" "gcc" "src/vectorizer/CMakeFiles/lslp_vectorizer.dir/SLPVectorizerPass.cpp.o.d"
  "/root/repo/src/vectorizer/Scheduler.cpp" "src/vectorizer/CMakeFiles/lslp_vectorizer.dir/Scheduler.cpp.o" "gcc" "src/vectorizer/CMakeFiles/lslp_vectorizer.dir/Scheduler.cpp.o.d"
  "/root/repo/src/vectorizer/SeedCollector.cpp" "src/vectorizer/CMakeFiles/lslp_vectorizer.dir/SeedCollector.cpp.o" "gcc" "src/vectorizer/CMakeFiles/lslp_vectorizer.dir/SeedCollector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/lslp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/lslp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/costmodel/CMakeFiles/lslp_costmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lslp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
