# Empty compiler generated dependencies file for lslp_vectorizer.
# This may be replaced when dependencies are built.
