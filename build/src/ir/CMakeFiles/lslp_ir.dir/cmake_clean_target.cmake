file(REMOVE_RECURSE
  "liblslp_ir.a"
)
