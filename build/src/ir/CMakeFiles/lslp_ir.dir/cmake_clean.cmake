file(REMOVE_RECURSE
  "CMakeFiles/lslp_ir.dir/BasicBlock.cpp.o"
  "CMakeFiles/lslp_ir.dir/BasicBlock.cpp.o.d"
  "CMakeFiles/lslp_ir.dir/Context.cpp.o"
  "CMakeFiles/lslp_ir.dir/Context.cpp.o.d"
  "CMakeFiles/lslp_ir.dir/Dominators.cpp.o"
  "CMakeFiles/lslp_ir.dir/Dominators.cpp.o.d"
  "CMakeFiles/lslp_ir.dir/Function.cpp.o"
  "CMakeFiles/lslp_ir.dir/Function.cpp.o.d"
  "CMakeFiles/lslp_ir.dir/Instruction.cpp.o"
  "CMakeFiles/lslp_ir.dir/Instruction.cpp.o.d"
  "CMakeFiles/lslp_ir.dir/Local.cpp.o"
  "CMakeFiles/lslp_ir.dir/Local.cpp.o.d"
  "CMakeFiles/lslp_ir.dir/Module.cpp.o"
  "CMakeFiles/lslp_ir.dir/Module.cpp.o.d"
  "CMakeFiles/lslp_ir.dir/Printer.cpp.o"
  "CMakeFiles/lslp_ir.dir/Printer.cpp.o.d"
  "CMakeFiles/lslp_ir.dir/Type.cpp.o"
  "CMakeFiles/lslp_ir.dir/Type.cpp.o.d"
  "CMakeFiles/lslp_ir.dir/Value.cpp.o"
  "CMakeFiles/lslp_ir.dir/Value.cpp.o.d"
  "CMakeFiles/lslp_ir.dir/Verifier.cpp.o"
  "CMakeFiles/lslp_ir.dir/Verifier.cpp.o.d"
  "liblslp_ir.a"
  "liblslp_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lslp_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
