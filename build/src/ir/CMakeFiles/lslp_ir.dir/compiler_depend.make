# Empty compiler generated dependencies file for lslp_ir.
# This may be replaced when dependencies are built.
