
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fuzz/DifferentialOracle.cpp" "src/fuzz/CMakeFiles/lslp_fuzz.dir/DifferentialOracle.cpp.o" "gcc" "src/fuzz/CMakeFiles/lslp_fuzz.dir/DifferentialOracle.cpp.o.d"
  "/root/repo/src/fuzz/ModuleGenerator.cpp" "src/fuzz/CMakeFiles/lslp_fuzz.dir/ModuleGenerator.cpp.o" "gcc" "src/fuzz/CMakeFiles/lslp_fuzz.dir/ModuleGenerator.cpp.o.d"
  "/root/repo/src/fuzz/Reducer.cpp" "src/fuzz/CMakeFiles/lslp_fuzz.dir/Reducer.cpp.o" "gcc" "src/fuzz/CMakeFiles/lslp_fuzz.dir/Reducer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vectorizer/CMakeFiles/lslp_vectorizer.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/lslp_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/lslp_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/costmodel/CMakeFiles/lslp_costmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/lslp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lslp_support.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/lslp_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
