file(REMOVE_RECURSE
  "CMakeFiles/lslp_fuzz.dir/DifferentialOracle.cpp.o"
  "CMakeFiles/lslp_fuzz.dir/DifferentialOracle.cpp.o.d"
  "CMakeFiles/lslp_fuzz.dir/ModuleGenerator.cpp.o"
  "CMakeFiles/lslp_fuzz.dir/ModuleGenerator.cpp.o.d"
  "CMakeFiles/lslp_fuzz.dir/Reducer.cpp.o"
  "CMakeFiles/lslp_fuzz.dir/Reducer.cpp.o.d"
  "liblslp_fuzz.a"
  "liblslp_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lslp_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
