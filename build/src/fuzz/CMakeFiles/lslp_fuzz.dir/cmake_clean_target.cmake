file(REMOVE_RECURSE
  "liblslp_fuzz.a"
)
