# Empty dependencies file for lslp_fuzz.
# This may be replaced when dependencies are built.
