file(REMOVE_RECURSE
  "CMakeFiles/lslp_analysis.dir/AddressAnalysis.cpp.o"
  "CMakeFiles/lslp_analysis.dir/AddressAnalysis.cpp.o.d"
  "CMakeFiles/lslp_analysis.dir/AliasAnalysis.cpp.o"
  "CMakeFiles/lslp_analysis.dir/AliasAnalysis.cpp.o.d"
  "CMakeFiles/lslp_analysis.dir/DependenceGraph.cpp.o"
  "CMakeFiles/lslp_analysis.dir/DependenceGraph.cpp.o.d"
  "liblslp_analysis.a"
  "liblslp_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lslp_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
