file(REMOVE_RECURSE
  "liblslp_analysis.a"
)
