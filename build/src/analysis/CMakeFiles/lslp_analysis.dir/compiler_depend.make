# Empty compiler generated dependencies file for lslp_analysis.
# This may be replaced when dependencies are built.
