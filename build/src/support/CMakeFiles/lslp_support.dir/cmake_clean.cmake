file(REMOVE_RECURSE
  "CMakeFiles/lslp_support.dir/Debug.cpp.o"
  "CMakeFiles/lslp_support.dir/Debug.cpp.o.d"
  "CMakeFiles/lslp_support.dir/OStream.cpp.o"
  "CMakeFiles/lslp_support.dir/OStream.cpp.o.d"
  "CMakeFiles/lslp_support.dir/StringUtil.cpp.o"
  "CMakeFiles/lslp_support.dir/StringUtil.cpp.o.d"
  "liblslp_support.a"
  "liblslp_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lslp_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
