file(REMOVE_RECURSE
  "liblslp_support.a"
)
