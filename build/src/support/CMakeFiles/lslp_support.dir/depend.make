# Empty dependencies file for lslp_support.
# This may be replaced when dependencies are built.
